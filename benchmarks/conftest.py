"""Shared infrastructure for the per-figure/table benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation, prints the same rows/series the paper reports, and writes
them to ``benchmarks/results/<experiment>.txt`` so the output survives
pytest's capture. Set ``REPRO_BENCH_SCALE`` (default 1.0) to lengthen
or shorten all simulations; publication-grade runs would use 5-10x.
"""

import os
import pathlib

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def sim_cycles(warmup, measure, drain=0):
    """Scaled phase lengths for one simulation."""
    return dict(
        warmup=max(50, int(warmup * SCALE)),
        measure=max(100, int(measure * SCALE)),
        drain=int(drain * SCALE),
    )


class Report:
    """Collects the lines of one experiment's output table."""

    def __init__(self, experiment, title):
        self.experiment = experiment
        self.lines = [title, "=" * len(title)]

    def line(self, text=""):
        self.lines.append(text)

    def row(self, *cells, widths=None):
        widths = widths or [16] * len(cells)
        self.lines.append(
            " ".join(
                f"{cell:>{w}}" if not isinstance(cell, str) else f"{cell:<{w}}"
                for cell, w in zip(cells, widths)
            )
        )

    def save(self):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(str(l) for l in self.lines) + "\n"
        (RESULTS_DIR / f"{self.experiment}.txt").write_text(text)
        print("\n" + text)
        return text


@pytest.fixture
def report(request):
    """Create a Report named after the requesting test."""

    def make(title):
        name = request.node.name.replace("test_", "")
        return Report(name, title)

    return make


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
