"""Observability overhead guarantees.

The trace bus promises zero overhead when disabled: every emission
site guards on ``bus.active``, which is False both for the shared
NULL_TRACE and for an enabled bus with no sinks attached. This bench
measures the same simulation three ways — no bus, enabled bus with no
sinks, and a bus with an in-memory sink actually collecting — and
asserts the no-sink configuration stays within 5% of the baseline
(DESIGN.md's disabled-by-default guarantee).

The network-state sampler makes the analogous promise: an unattached
network pays one ``is None`` check per cycle (inside the baseline), and
an attached sampler at the default 100-cycle period stays within 5% of
the unsampled baseline while never perturbing simulation results.
"""

import time

from conftest import once, sim_cycles

from repro.network.config import mesh_config
from repro.obs import MemorySink, NetworkSampler, RunTelemetry, TraceBus
from repro.sim.runner import run_simulation

CYCLES = sim_cycles(warmup=100, measure=600)
REPEATS = 5


def timed_run(trace, sampler=None, telemetry=None):
    cfg = mesh_config(mesh_k=4, chaining="any_input", seed=11)
    start = time.perf_counter()
    result = run_simulation(
        cfg, rate=0.6, warmup=CYCLES["warmup"], measure=CYCLES["measure"],
        drain=0, trace=trace, sampler=sampler, telemetry=telemetry,
    )
    return time.perf_counter() - start, result


def best_of(make_trace, make_sampler=lambda: None,
            make_telemetry=lambda: None):
    """Minimum wall time over REPEATS runs (noise-robust estimator)."""
    times = []
    result = None
    for _ in range(REPEATS):
        elapsed, result = timed_run(
            make_trace(), sampler=make_sampler(),
            telemetry=make_telemetry(),
        )
        times.append(elapsed)
    return min(times), result


def run_experiment():
    base_time, base = best_of(lambda: None)
    nosink_time, nosink = best_of(lambda: TraceBus())

    def traced_bus():
        bus = TraceBus()
        bus.attach(MemorySink())
        return bus

    sink_time, _ = best_of(traced_bus)
    # Identical simulation outcomes: tracing must never perturb results.
    assert nosink.avg_throughput == base.avg_throughput
    assert nosink.chain_stats.total_chains == base.chain_stats.total_chains
    return base_time, nosink_time, sink_time


def test_obs_overhead(benchmark, report):
    base_time, nosink_time, sink_time = once(benchmark, run_experiment)
    overhead = 100 * (nosink_time / base_time - 1)
    full = 100 * (sink_time / base_time - 1)

    rep = report("Trace-bus overhead: disabled guard vs. active sink")
    rep.row("configuration", "seconds", "overhead", widths=[24, 10, 10])
    rep.row("no trace bus", f"{base_time:.3f}", "-", widths=[24, 10, 10])
    rep.row("bus, no sinks", f"{nosink_time:.3f}", f"{overhead:+.1f}%",
            widths=[24, 10, 10])
    rep.row("bus + memory sink", f"{sink_time:.3f}", f"{full:+.1f}%",
            widths=[24, 10, 10])
    rep.line()
    rep.line("guarantee: an attached-but-sinkless bus stays within 5% of "
             "the untraced baseline (bus.active short-circuits emission)")
    rep.save()

    assert nosink_time <= base_time * 1.05, (
        f"sinkless trace bus added {overhead:.1f}% overhead (budget: 5%)"
    )


def run_sampler_experiment():
    base_time, base = best_of(lambda: None)
    sampled_time, sampled = best_of(
        lambda: None, make_sampler=lambda: NetworkSampler(period=100)
    )
    # Sampling is read-only: simulation outcomes must be identical.
    assert sampled.avg_throughput == base.avg_throughput
    assert sampled.chain_stats.total_chains == base.chain_stats.total_chains
    return base_time, sampled_time


def test_sampler_overhead(benchmark, report):
    base_time, sampled_time = once(benchmark, run_sampler_experiment)
    overhead = 100 * (sampled_time / base_time - 1)

    rep = report("Network-state sampler overhead at the default period")
    rep.row("configuration", "seconds", "overhead", widths=[24, 10, 10])
    rep.row("no sampler", f"{base_time:.3f}", "-", widths=[24, 10, 10])
    rep.row("sampler, period=100", f"{sampled_time:.3f}",
            f"{overhead:+.1f}%", widths=[24, 10, 10])
    rep.line()
    rep.line("guarantee: a 100-cycle sampler stays within 5% of the "
             "unsampled baseline and never perturbs results")
    rep.save()

    assert sampled_time <= base_time * 1.05, (
        f"sampler at period=100 added {overhead:.1f}% overhead (budget: 5%)"
    )


def run_telemetry_experiment(tmp_path):
    base_time, base = best_of(lambda: None)
    hb = tmp_path / "bench.hb.jsonl"

    def make_telemetry():
        hb.unlink(missing_ok=True)
        return RunTelemetry(path=str(hb), every=1000)

    tele_time, with_tele = best_of(
        lambda: None, make_telemetry=make_telemetry
    )
    # Heartbeats are host-side only: results must be identical.
    assert with_tele.avg_throughput == base.avg_throughput
    assert with_tele.chain_stats.total_chains == base.chain_stats.total_chains
    return base_time, tele_time


def test_telemetry_overhead(benchmark, report, tmp_path):
    base_time, tele_time = once(
        benchmark, lambda: run_telemetry_experiment(tmp_path)
    )
    overhead = 100 * (tele_time / base_time - 1)

    rep = report("Run-telemetry overhead at the default heartbeat period")
    rep.row("configuration", "seconds", "overhead", widths=[24, 10, 10])
    rep.row("no telemetry", f"{base_time:.3f}", "-", widths=[24, 10, 10])
    rep.row("heartbeats, every=1000", f"{tele_time:.3f}",
            f"{overhead:+.1f}%", widths=[24, 10, 10])
    rep.line()
    rep.line("guarantee: fsynced heartbeats at the default 1000-cycle "
             "period stay within 5% of the untelemetered baseline "
             "(on_cycle is one compare between heartbeats)")
    rep.save()

    assert tele_time <= base_time * 1.05, (
        f"telemetry at every=1000 added {overhead:.1f}% overhead (budget: 5%)"
    )
