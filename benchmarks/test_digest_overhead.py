"""State-digest overhead guarantees.

The lockstep microscope's DigestRecorder (``--digest`` /
``digest_every=``) hashes the whole network's canonical ``state_dict``
state every N cycles. Two guarantees back its "leave it on in CI"
positioning:

- off by default is free: an unattached recorder costs one ``is None``
  check per cycle (inside the baseline measured here), and attaching
  one never perturbs simulation results — digesting is read-only;
- at the default 64-cycle stride the whole-run wall-clock overhead
  stays under 5% of the digest-free baseline.

The 64-stride overhead (~4%) is smaller than shared-runner timing
noise (±10% between back-to-back identical runs), so measuring it
directly would gate on luck. Instead the bench *amplifies* the signal:
it measures at ``digest_every=4`` — 16x the digests, an overhead far
above the noise floor — and scales by 16 to get the per-64-cycle
figure (digest cost per run is inversely proportional to the stride;
per-digest cost is stride-independent since periodic records hash only
simulation state, whose size does not grow with run length).

The ``mesh4-islip1-digest64`` case in the ``repro bench`` quick suite
tracks the unamplified cost as a trend line across commits; this bench
is the hard gate.
"""

import time

from conftest import once, sim_cycles

import repro.network.flit as flitmod
from repro.network.config import mesh_config
from repro.sim.runner import run_simulation

CYCLES = sim_cycles(warmup=100, measure=600)
REPEATS = 5

#: Measurement stride and the factor scaling its overhead to the
#: default 64-cycle stride (64 / MEASURE_EVERY).
MEASURE_EVERY = 4
AMPLIFICATION = 64 // MEASURE_EVERY


def timed_run(digest_every):
    # Fresh pid stream per run so digested state (which includes packet
    # ids) is reproducible and the on/off results comparable.
    flitmod.set_next_packet_id(0)
    cfg = mesh_config(mesh_k=4, chaining="any_input", seed=11)
    start = time.perf_counter()
    result = run_simulation(
        cfg, rate=0.6, warmup=CYCLES["warmup"], measure=CYCLES["measure"],
        drain=0, digest_every=digest_every,
    )
    return time.perf_counter() - start, result


def run_experiment():
    # Repeats interleave the two configurations so slow host drift
    # (shared runners, background load) hits both sides of each repeat
    # pair about equally; min-of-N is the noise-robust estimator.
    base_times, digest_times = [], []
    base = digested = None
    for _ in range(REPEATS):
        elapsed, base = timed_run(None)
        base_times.append(elapsed)
        elapsed, digested = timed_run(MEASURE_EVERY)
        digest_times.append(elapsed)
    base_time, digest_time = min(base_times), min(digest_times)
    # Digesting is read-only: simulation outcomes must be identical.
    assert digested.avg_throughput == base.avg_throughput
    assert digested.chain_stats.total_chains == base.chain_stats.total_chains
    assert digested.packet_latency == base.packet_latency
    return base_time, digest_time


def test_digest_overhead(benchmark, report):
    base_time, digest_time = once(benchmark, run_experiment)
    amplified = 100 * (digest_time / base_time - 1)
    derived = amplified / AMPLIFICATION

    rep = report("State-digest overhead at the default 64-cycle stride")
    rep.row("configuration", "seconds", "overhead", widths=[24, 10, 10])
    rep.row("no digests", f"{base_time:.3f}", "-", widths=[24, 10, 10])
    rep.row(f"digest_every={MEASURE_EVERY}", f"{digest_time:.3f}",
            f"{amplified:+.1f}%", widths=[24, 10, 10])
    rep.row("digest_every=64", "(derived)", f"{derived:+.1f}%",
            widths=[24, 10, 10])
    rep.line()
    rep.line(f"guarantee: hierarchical SHA-256 digests every 64 cycles "
             f"stay within 5% of the digest-free baseline and never "
             f"perturb simulation results (measured at "
             f"digest_every={MEASURE_EVERY} to lift the signal above "
             f"host timing noise, scaled by {AMPLIFICATION}x)")
    rep.save()

    assert derived <= 5.0, (
        f"digests at every=64 cost {derived:.1f}% "
        f"({amplified:.1f}% at every={MEASURE_EVERY}; budget: 5%)"
    )
