"""Ablation: what allocator should the PC stage itself use?

The paper fixes the PC allocator to iSLIP-1 "because a more complex PC
allocator would lengthen the allocation timing path" (Section 3). This
ablation quantifies what a costlier PC allocator would buy: we swap the
PC allocator among iSLIP-1, wavefront (maximal) and randomized PIM
while keeping the iSLIP-1 switch allocator, mesh, single-flit uniform
traffic at max injection.
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)

PC_KINDS = ["islip1", "pim1", "wavefront", "augmenting"]


def run_experiment():
    out = {
        "no chaining": run_simulation(
            mesh_config(), pattern="uniform", rate=1.0, packet_length=1,
            **CYCLES,
        ).avg_throughput
    }
    for kind in PC_KINDS:
        result = run_simulation(
            mesh_config(chaining="any_input", pc_allocator=kind),
            pattern="uniform", rate=1.0, packet_length=1, **CYCLES,
        )
        out[f"pc={kind}"] = result.avg_throughput
    return out


def test_ablation_pc_allocator(benchmark, report):
    tps = once(benchmark, run_experiment)
    rep = report("Ablation: PC-stage allocator choice "
                 "(mesh, 1-flit, uniform, max injection, any-input chaining)")
    base = tps["no chaining"]
    for name, tp in tps.items():
        rep.row(name, f"{tp:.3f}", f"{100 * (tp / base - 1):+.1f}%",
                widths=[16, 8, 8])
    rep.line()
    rep.line("paper's design point: iSLIP-1 PC allocator — a costlier PC"
             " allocator must pay for itself here to justify its delay")
    rep.save()

    # The design-point claim: iSLIP-1 captures (nearly) all of the gain.
    best = max(tp for name, tp in tps.items() if name != "no chaining")
    assert tps["pc=islip1"] >= 0.97 * best
