"""Figure 10: packet length sweep against the complex allocators.

Paper: "For eight-flit packets, packet chaining is comparable
(outperforms by 2%) to wavefront and iSLIP-2, as well as augmenting
paths (outperforms by 1.5%) by average across traffic patterns. For
uniform random traffic, packet chaining is comparable to augmenting
paths, wavefront (outperforms by 2.5%) and iSLIP-2 (outperforms by 1%)."
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)
LENGTHS = [1, 8]

CONFIGS = [
    ("islip1", dict(allocator="islip1")),
    ("islip2", dict(allocator="islip2")),
    ("wavefront", dict(allocator="wavefront")),
    ("augmenting", dict(allocator="augmenting")),
    ("pc-same-input", dict(chaining="same_input")),
]


def run_experiment():
    table = {}
    for name, overrides in CONFIGS:
        table[name] = {
            length: run_simulation(
                mesh_config(**overrides), pattern="uniform", rate=1.0,
                packet_length=length, **CYCLES,
            ).avg_throughput
            for length in LENGTHS
        }
    return table


def test_fig10_length_allocators(benchmark, report):
    table = once(benchmark, run_experiment)
    rep = report("Figure 10: throughput by packet length across allocators "
                 "(mesh, uniform, max injection)")
    rep.row("allocator", *(f"{l} flit" for l in LENGTHS),
            widths=[14] + [10] * len(LENGTHS))
    for name, row in table.items():
        rep.row(name, *(f"{row[l]:.3f}" for l in LENGTHS),
                widths=[14] + [10] * len(LENGTHS))
    pc8 = table["pc-same-input"][8]
    rep.line()
    for name in ("islip2", "wavefront", "augmenting"):
        rep.line(f"8-flit: PC vs {name}: {100 * (pc8 / table[name][8] - 1):+.1f}%")
    rep.line("paper: PC comparable or slightly ahead of all three at 8 flits")
    rep.save()

    # Comparable at long packets: within a few percent of every
    # expensive allocator, at a fraction of the delay/cost.
    for name in ("islip2", "wavefront", "augmenting"):
        assert pc8 >= 0.93 * table[name][8]
