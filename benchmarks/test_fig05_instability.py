"""Figure 5: throughput under heavy load (network stability).

Paper: "packet chaining increases throughput at maximum injection rate
by 15% [over iSLIP-1] when considering VCs of the same input.
Throughput peaks at saturation ... and then decreases ... With packet
chaining, throughput drops only marginally (2.5%) past saturation."

This bench sweeps injection rate from below saturation to the maximum
and reports the accepted-throughput series for iSLIP-1 with and without
packet chaining (single-flit packets, uniform random, 8x8 mesh).
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

RATES = [0.2, 0.3, 0.38, 0.45, 0.55, 0.7, 0.85, 1.0]
CYCLES = sim_cycles(warmup=300, measure=700)

CONFIGS = [
    ("islip1", dict()),
    ("pc-same-input", dict(chaining="same_input")),
]


def run_experiment():
    series = {}
    for name, overrides in CONFIGS:
        series[name] = [
            run_simulation(
                mesh_config(**overrides), pattern="uniform", rate=rate,
                packet_length=1, **CYCLES,
            ).avg_throughput
            for rate in RATES
        ]
    return series


def test_fig05_instability(benchmark, report):
    series = once(benchmark, run_experiment)
    rep = report("Figure 5: injection rate vs accepted throughput "
                 "(mesh, 1-flit, uniform random)")
    rep.row("rate", *(f"{r:.2f}" for r in RATES), widths=[14] + [7] * len(RATES))
    for name, tps in series.items():
        rep.row(name, *(f"{t:.3f}" for t in tps), widths=[14] + [7] * len(RATES))

    base, chained = series["islip1"], series["pc-same-input"]
    gain_at_max = 100 * (chained[-1] / base[-1] - 1)
    peak = max(chained)
    drop_past_sat = 100 * (1 - chained[-1] / peak)
    base_drop = 100 * (1 - base[-1] / max(base))
    rep.line()
    rep.line(f"throughput gain at max injection: {gain_at_max:+.1f}%  (paper: +15%)")
    rep.line(f"chaining drop past saturation:    {drop_past_sat:.1f}%  (paper: 2.5%)")
    rep.line(f"iSLIP-1 drop past saturation:     {base_drop:.1f}%")
    rep.save()

    # Shape assertions: chaining wins at max injection and is more stable.
    assert chained[-1] > base[-1]
    assert drop_past_sat < base_drop + 1.0
