"""Extension studies: packet chaining beyond the paper's topologies.

1. Torus: wraparound doubles bisection; dateline VC classes halve the
   free-VC pool per class, which stresses chaining's output-VC
   eligibility rule.
2. Concentrated mesh: 8-port routers with 4 injection ports per router
   produce a denser allocation problem than the paper's mesh.
3. Bursty (Markov on/off) injection on the paper's mesh: the traffic
   character of the application phases that drive Table 1.
"""

import random

from conftest import once, sim_cycles

from repro import run_simulation
from repro.network.config import cmesh_config, mesh_config, torus_config
from repro.network.network import Network
from repro.sim.runner import SimulationRun
from repro.traffic import FixedLength, MarkovBurstInjector, UniformRandom

CYCLES = sim_cycles(warmup=300, measure=700)


def run_topologies():
    out = {}
    for topo, factory in [("torus", torus_config), ("cmesh", cmesh_config)]:
        for scheme in ["disabled", "any_input"]:
            out[(topo, scheme)] = run_simulation(
                factory(chaining=scheme), pattern="uniform", rate=1.0,
                packet_length=1, **CYCLES,
            ).avg_throughput
    return out


def run_bursty():
    out = {}
    for scheme in ["disabled", "same_input", "any_input"]:
        config = mesh_config(chaining=scheme)
        net = Network(config)
        rng = random.Random(99)
        injector = MarkovBurstInjector(
            net.num_terminals, UniformRandom(net.num_terminals),
            rate=0.5, lengths=FixedLength(1), rng=rng, burst_length=64,
        )
        result = SimulationRun(
            net, injector, CYCLES["warmup"], CYCLES["measure"], 0
        ).execute()
        out[scheme] = (result.avg_throughput, result.packet_latency.p99)
    return out


def test_ext_other_topologies(benchmark, report):
    tps = once(benchmark, run_topologies)
    rep = report("Extension: chaining on torus and concentrated mesh "
                 "(1-flit, uniform, max injection)")
    rep.row("topology", "no chaining", "any-input", "gain", widths=[10, 12, 10, 8])
    for topo in ("torus", "cmesh"):
        base = tps[(topo, "disabled")]
        chained = tps[(topo, "any_input")]
        rep.row(topo, f"{base:.3f}", f"{chained:.3f}",
                f"{100 * (chained / base - 1):+.1f}%",
                widths=[10, 12, 10, 8])
    rep.save()

    assert tps[("torus", "any_input")] > 0.95 * tps[("torus", "disabled")]
    assert tps[("cmesh", "any_input")] > 0.95 * tps[("cmesh", "disabled")]


def test_ext_bursty_injection(benchmark, report):
    data = once(benchmark, run_bursty)
    rep = report("Extension: Markov on/off bursty injection "
                 "(mesh, 1-flit, mean rate 0.5, burst length 64)")
    rep.row("scheme", "accepted", "p99 latency", widths=[12, 9, 12])
    for scheme, (tp, p99) in data.items():
        rep.row(scheme, f"{tp:.3f}", f"{p99:.0f}", widths=[12, 9, 12])
    rep.line()
    rep.line("bursts drive the network past saturation in waves: the"
             " regime where chaining's matching efficiency pays")
    rep.save()

    assert data["same_input"][0] > 0.97 * data["disabled"][0]
