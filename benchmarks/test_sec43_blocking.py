"""Section 4.3: blocking latency and latency reduction.

Paper: "we extract the number of cycles that eligible head flits wait
for the connection to their desired output to be released and for a
switch allocator grant ... measured in the mesh at the saturation
injection rate ... connections are released after eight cycles ... By
average, packet chaining reduces this blocking latency by 13% for
single-flit packets, 21.5% for two-flit packets and 7.5% for four- or
eight-flit packets." Packet chaining also lowers average latency
(22.5% vs iSLIP-1 across the load range; 4.5-16% below saturation).
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)
#: Rates at the saturation knee per packet length (the paper measures
#: blocking "at the saturation injection rate for each case"; below the
#: knee queues are empty and there is nothing to unblock).
SAT_RATES = {1: 0.48, 2: 0.46, 4: 0.45, 8: 0.45}


def run_experiment():
    rows = {}
    for length, rate in SAT_RATES.items():
        base = run_simulation(
            mesh_config(), pattern="uniform", rate=rate,
            packet_length=length, **CYCLES,
        )
        chained = run_simulation(
            mesh_config(chaining="same_input", starvation_threshold=8),
            pattern="uniform", rate=rate, packet_length=length, **CYCLES,
        )
        rows[length] = (base, chained)
    return rows


def test_sec43_blocking(benchmark, report):
    rows = once(benchmark, run_experiment)
    rep = report("Section 4.3: blocking latency at saturation "
                 "(mean blocked cycles per packet)")
    rep.row("flits", "islip1", "chaining", "reduction", "lat reduction",
            widths=[7, 9, 9, 10, 14])
    reductions = {}
    for length, (base, chained) in rows.items():
        b, c = base.blocking.mean, chained.blocking.mean
        red = 100 * (1 - c / b) if b else 0.0
        lat_red = 100 * (1 - chained.packet_latency.mean / base.packet_latency.mean)
        reductions[length] = red
        rep.row(str(length), f"{b:.2f}", f"{c:.2f}", f"{red:+.1f}%",
                f"{lat_red:+.1f}%", widths=[7, 9, 9, 10, 14])
    rep.line()
    rep.line("paper: blocking -13% (1 flit), -21.5% (2 flits), "
             "-7.5% (4/8 flits); latency -4.5% to -22.5%")
    rep.save()

    # Chaining reduces blocking for short packets at saturation.
    assert reductions[1] > 0
    assert reductions[2] > 0
