"""Figure 9: throughput by packet length.

Paper: "packet chaining always provides performance benefits, but the
benefits decrease when increasing packet length because incremental
allocation creates connections ... throughput is comparable (2% gain
for packet chaining) for eight-flit or longer packets. ... The only
exception [to the throughput drop with length] is increasing to
two-flit packets with iSLIP-1, which clearly illustrates the gains when
incremental allocation is able to form connections."
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)
LENGTHS = [1, 2, 4, 8, 16]

CONFIGS = [
    ("islip1", dict()),
    ("pc-same-input", dict(chaining="same_input")),
]


def run_experiment():
    table = {}
    for name, overrides in CONFIGS:
        table[name] = [
            run_simulation(
                mesh_config(**overrides), pattern="uniform", rate=1.0,
                packet_length=length, **CYCLES,
            ).avg_throughput
            for length in LENGTHS
        ]
    return table


def test_fig09_length(benchmark, report):
    table = once(benchmark, run_experiment)
    rep = report("Figure 9: throughput by packet length at max injection "
                 "(mesh, uniform)")
    rep.row("flits/packet", *LENGTHS, widths=[14] + [8] * len(LENGTHS))
    for name, tps in table.items():
        rep.row(name, *(f"{t:.3f}" for t in tps),
                widths=[14] + [8] * len(LENGTHS))
    base, pc = table["islip1"], table["pc-same-input"]
    rep.line()
    gains = [100 * (p / b - 1) for p, b in zip(pc, base)]
    rep.row("PC gain %", *(f"{g:+.1f}" for g in gains),
            widths=[14] + [8] * len(LENGTHS))
    rep.line("paper: gains shrink with length; ~+2% at >= 8 flits; "
             "iSLIP-1 jumps from 1 to 2 flits")
    rep.save()

    # Gains shrink with packet length but chaining never clearly loses.
    assert gains[0] > gains[3]
    assert all(g > -3.0 for g in gains)
    # Incremental allocation kicks in for iSLIP-1 at two flits.
    assert base[1] > base[0]
