"""Section 4.7: starvation thresholds and PC request priorities.

Paper:
- "a starvation threshold of eight cycles provides a marginal (1.5%)
  throughput increase [for single-flit packets] ... for eight-flit
  packets it has no effect."
- "using a starvation threshold of four cycles with eight-flit packets
  drops maximum throughput by an average of 3%" (we measure the
  analogous single-flit-chain effect; with the length-aware eligibility
  check the chained packets themselves are never cut — see
  repro.core.starvation).
- "Disabling priority-handling in the PC allocator reduces throughput
  by 6.5% for uniform random traffic ... with single-flit packets."
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)


def run_experiment():
    def tp(**overrides):
        packet_length = overrides.pop("packet_length", 1)
        return run_simulation(
            mesh_config(**overrides), pattern="uniform", rate=1.0,
            packet_length=packet_length, **CYCLES,
        ).avg_throughput

    return {
        "1f no starvation": tp(chaining="same_input"),
        "1f threshold 8": tp(chaining="same_input", starvation_threshold=8),
        "8f no starvation": tp(chaining="same_input", packet_length=8),
        "8f threshold 8": tp(
            chaining="same_input", starvation_threshold=8, packet_length=8
        ),
        "8f threshold 4": tp(
            chaining="same_input", starvation_threshold=4, packet_length=8
        ),
        "1f no PC priorities": tp(chaining="same_input", pc_priorities=False),
        "1f islip1": tp(),
    }


def test_sec47_starvation(benchmark, report):
    tps = once(benchmark, run_experiment)
    rep = report("Section 4.7: starvation thresholds and PC priorities "
                 "(mesh, uniform, max injection)")
    for name, tp in tps.items():
        rep.row(name, f"{tp:.3f}", widths=[22, 8])
    rep.line()
    d8 = 100 * (tps["8f threshold 8"] / tps["8f no starvation"] - 1)
    d1 = 100 * (tps["1f threshold 8"] / tps["1f no starvation"] - 1)
    dp = 100 * (tps["1f no PC priorities"] / tps["1f no starvation"] - 1)
    rep.line(f"threshold-8 effect, 1-flit: {d1:+.1f}%   (paper: +1.5%)")
    rep.line(f"threshold-8 effect, 8-flit: {d8:+.1f}%   (paper: ~0%)")
    rep.line(f"disabling PC priorities:    {dp:+.1f}%   (paper: -6.5%)")
    rep.save()

    # Threshold 8 is benign for both lengths.
    assert abs(d8) < 5.0
    assert tps["1f threshold 8"] > tps["1f islip1"]
    # Speculative two-class priorities earn their keep.
    assert tps["1f no PC priorities"] <= tps["1f no starvation"] + 0.01


def test_sec47_starvation_worst_case(benchmark, report):
    """Worst-case (min-source) throughput with and without the threshold.

    Paper: "worst-case throughput is also similar for networks with and
    without starvation control" on uniform traffic — connections release
    naturally before starvation arises.
    """

    def run():
        out = {}
        for name, overrides in [
            ("no starvation", dict(chaining="same_input")),
            ("threshold 8", dict(chaining="same_input", starvation_threshold=8)),
        ]:
            r = run_simulation(
                mesh_config(**overrides), pattern="uniform", rate=1.0,
                packet_length=1, **CYCLES,
            )
            out[name] = (r.avg_throughput, r.min_throughput)
        return out

    data = once(benchmark, run)
    rep = report("Section 4.7: worst-case throughput, uniform random")
    rep.row("config", "avg", "min-source", widths=[16, 8, 10])
    for name, (avg, mn) in data.items():
        rep.row(name, f"{avg:.3f}", f"{mn:.3f}", widths=[16, 8, 10])
    rep.save()

    mins = [mn for _, mn in data.values()]
    assert max(mins) - min(mins) < 0.15 * max(mins)
