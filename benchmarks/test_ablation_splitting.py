"""Ablation: splitting long packets (Section 4.4's enabling claim).

Paper: "Throughput drops for all test cases with the increase of packet
length due to the constant buffer size. Packet chaining enables long
packets to be divided into shorter ones to avoid this reduction in
performance, without loss of allocation efficiency."

We compare, at equal offered flit rate: 16-flit packets vs the same
payload split into 4-flit packets, with and without chaining. Without
chaining the split costs allocation efficiency (4x more head flits to
allocate); with chaining the splits chain back together at each switch.
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)

CASES = [
    ("islip1, 16-flit", dict(), 16),
    ("islip1, 4-flit", dict(), 4),
    ("chained, 16-flit", dict(chaining="same_input"), 16),
    ("chained, 4-flit", dict(chaining="same_input"), 4),
]


def run_experiment():
    return {
        name: run_simulation(
            mesh_config(**overrides), pattern="uniform", rate=1.0,
            packet_length=length, **CYCLES,
        ).avg_throughput
        for name, overrides, length in CASES
    }


def test_ablation_splitting(benchmark, report):
    tps = once(benchmark, run_experiment)
    rep = report("Ablation: long packets vs split packets "
                 "(mesh, uniform, max injection)")
    for name, tp in tps.items():
        rep.row(name, f"{tp:.3f}", widths=[18, 8])
    rep.line()
    buffer_relief = 100 * (tps["chained, 4-flit"] / tps["chained, 16-flit"] - 1)
    rep.line(f"chained split vs chained long: {buffer_relief:+.1f}% "
             "(constant-buffer relief)")
    rep.line("paper: splitting avoids the long-packet buffer penalty "
             "without losing allocation efficiency")
    rep.save()

    # Splitting with chaining recovers the buffer-size penalty...
    assert tps["chained, 4-flit"] >= tps["chained, 16-flit"]
    # ...and chained splits beat unchained splits (the head-flit storm
    # costs iSLIP-1 efficiency that chaining restores).
    assert tps["chained, 4-flit"] >= tps["islip1, 4-flit"]
