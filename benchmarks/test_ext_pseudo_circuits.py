"""Extension: packet chaining vs pseudo-circuits (the paper's §5).

"Pseudo-circuits operate on the same principle as packet chaining but
only consider consecutive packets in the same input VC. ...
Pseudo-circuits are released when another input VC requests the
connected output in order to prioritize latency, whereas packet
chaining maintains the connection in order to improve allocation
efficiency under load."

This bench puts the two policies (and plain iSLIP-1) side by side at a
moderate load (latency view) and at maximum injection (throughput
view) to reproduce that trade-off.
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)

CONFIGS = [
    ("islip1", dict()),
    ("pseudo-circuits", dict(chaining="same_vc", pseudo_circuit_release=True)),
    ("pc-same-vc", dict(chaining="same_vc")),
    ("pc-same-input", dict(chaining="same_input")),
]


def run_experiment():
    out = {}
    for name, overrides in CONFIGS:
        moderate = run_simulation(
            mesh_config(**overrides), pattern="uniform", rate=0.35,
            packet_length=1, drain=500, **{k: v for k, v in CYCLES.items()
                                           if k != "drain"},
        )
        heavy = run_simulation(
            mesh_config(**overrides), pattern="uniform", rate=1.0,
            packet_length=1, **CYCLES,
        )
        out[name] = (moderate, heavy)
    return out


def test_ext_pseudo_circuits(benchmark, report):
    data = once(benchmark, run_experiment)
    rep = report("Extension: pseudo-circuits vs packet chaining "
                 "(mesh, 1-flit, uniform)")
    rep.row("policy", "lat@0.35", "tput@max", "chains@max",
            widths=[16, 9, 9, 11])
    for name, (moderate, heavy) in data.items():
        rep.row(name, f"{moderate.packet_latency.mean:.1f}",
                f"{heavy.avg_throughput:.3f}",
                str(heavy.chain_stats.total_chains),
                widths=[16, 9, 9, 11])
    rep.line()
    rep.line("paper §5: pseudo-circuits prioritize latency; chaining"
             " holds connections to win throughput under load")
    rep.save()

    pseudo = data["pseudo-circuits"][1].avg_throughput
    chained = data["pc-same-vc"][1].avg_throughput
    base = data["islip1"][1].avg_throughput
    assert base * 0.98 <= pseudo <= chained * 1.02
    assert chained > base