"""Figure 11: where chained packets come from, by injection rate.

Paper (mesh, all inputs and VCs): "At saturation, 9% of requests chain
to another VC of the same input, 5% chain to the same input and VC, and
8% chain to another input." FBFly: "14.5% ... another input, 2% ...
same input and VC, and 2% ... same input but another VC." Clashes with
the switch allocator first rise with load and then fall.

We report chain grants per router-cycle by category across injection
rates (an upper-bound proxy for the paper's per-request percentages).
"""

from conftest import once, sim_cycles

from repro import fbfly_config, mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)
RATES = [0.1, 0.25, 0.4, 0.6, 0.8, 1.0]


def sweep(config_factory, num_routers):
    rows = []
    for rate in RATES:
        result = run_simulation(
            config_factory(chaining="any_input"), pattern="uniform",
            rate=rate, packet_length=1, **CYCLES,
        )
        cs = result.chain_stats
        # Chain grants per router per cycle, by category. (cs.cycles is
        # the per-router cycle count; grant counters are network-wide.)
        denom = max(1, cs.cycles) * num_routers
        rows.append(
            (
                rate,
                cs.same_input_same_vc / denom,
                cs.same_input_other_vc / denom,
                cs.other_input / denom,
                cs.conflicts / denom,
            )
        )
    return rows


HEADER = ("rate", "sameVC", "sameIn-otherVC", "otherIn", "conflicts")
WIDTHS = [8, 10, 15, 10, 10]


def _render(rep, rows):
    rep.row(*HEADER, widths=WIDTHS)
    for row in rows:
        rep.row(f"{row[0]:.2f}", *(f"{v:.3f}" for v in row[1:]), widths=WIDTHS)


def test_fig11_mesh(benchmark, report):
    rows = once(benchmark, lambda: sweep(mesh_config, 64))
    rep = report("Figure 11(a): PC grants per router-cycle by origin (mesh)")
    _render(rep, rows)
    rep.line()
    rep.line("paper at saturation: same-VC 5%, same-input-other-VC 9%, "
             "other-input 8% of requests")
    rep.save()

    sat = rows[-1]
    assert sat[1] + sat[2] + sat[3] > 0  # chains happen at saturation
    # Chains increase with load up to saturation.
    assert sat[1] + sat[2] + sat[3] > rows[0][1] + rows[0][2] + rows[0][3]


def test_fig11_fbfly(benchmark, report):
    rows = once(benchmark, lambda: sweep(fbfly_config, 16))
    rep = report("Figure 11(b): PC grants per router-cycle by origin (FBFly)")
    _render(rep, rows)
    rep.line()
    rep.line("paper at saturation: other-input 14.5%, same-VC 2%, "
             "same-input-other-VC 2% of packets")
    rep.save()

    sat = rows[-1]
    # The FBFly signature: with UGAL, chaining to ANOTHER input dominates
    # (routing is less predictable, Section 4.6).
    assert sat[3] > sat[1]
    assert sat[3] > sat[2]
