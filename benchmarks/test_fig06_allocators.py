"""Figure 6: packet chaining vs more complex allocators.

Paper, Fig 6(a): at maximum injection rate with single-flit uniform
traffic, packet chaining beats iSLIP-2 by 10% and wavefront by 6%, and
is comparable (+1%) to an augmenting-paths allocator.

Paper, Fig 6(b): across the other traffic patterns chaining gives 4-9%
higher throughput than iSLIP-2/wavefront and is comparable to
augmenting paths (percentages grow at maximum injection, which is what
we measure).
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation
from repro.traffic import MESH_PATTERNS

CYCLES = sim_cycles(warmup=300, measure=700)

CONFIGS = [
    ("islip1", dict(allocator="islip1")),
    ("islip2", dict(allocator="islip2")),
    ("wavefront", dict(allocator="wavefront")),
    ("augmenting", dict(allocator="augmenting")),
    # The paper's application/starvation default keeps chaining fair on
    # deterministic patterns; uniform results are unaffected by it.
    ("pc-same-input", dict(chaining="same_input", starvation_threshold=8)),
]


def run_uniform():
    return {
        name: run_simulation(
            mesh_config(**overrides), pattern="uniform", rate=1.0,
            packet_length=1, **CYCLES,
        ).avg_throughput
        for name, overrides in CONFIGS
    }


#: Offered loads moderately past each pattern's saturation point — the
#: regime Figure 6(b) reports. (At full max injection the deterministic
#: patterns enter the capture regime discussed in DESIGN.md section 6.)
PATTERN_RATES = {
    "permutation": 0.60,
    "shuffle": 0.50,
    "bitcomp": 0.30,
    "tornado": 0.35,
}


def run_patterns():
    table = {}
    for name, overrides in CONFIGS:
        table[name] = {
            pat: run_simulation(
                mesh_config(**overrides), pattern=pat, rate=rate,
                packet_length=1, **CYCLES,
            ).avg_throughput
            for pat, rate in PATTERN_RATES.items()
        }
    return list(PATTERN_RATES), table


def test_fig06a_uniform(benchmark, report):
    tps = once(benchmark, run_uniform)
    rep = report("Figure 6(a): allocator comparison, uniform random, "
                 "max injection (mesh, 1-flit)")
    pc = tps["pc-same-input"]
    for name, tp in tps.items():
        rep.row(name, f"{tp:.3f}", f"PC {100 * (pc / tp - 1):+5.1f}% vs this",
                widths=[14, 8, 24])
    rep.line()
    rep.line(f"paper: PC +15% vs iSLIP-1, +10% vs iSLIP-2, +6% vs wavefront,"
             f" +1% vs augmenting")
    rep.save()

    assert pc > tps["islip1"]
    assert pc > tps["islip2"]
    assert pc > tps["wavefront"]
    assert pc > 0.93 * tps["augmenting"]  # "comparable"


def test_fig06b_patterns(benchmark, report):
    patterns, table = once(benchmark, run_patterns)
    rep = report("Figure 6(b): allocator comparison by traffic pattern, "
                 "max injection (mesh, 1-flit)")
    rep.row("allocator", *patterns, widths=[14] + [12] * len(patterns))
    for name, row in table.items():
        rep.row(name, *(f"{row[p]:.3f}" for p in patterns),
                widths=[14] + [12] * len(patterns))
    avg = {name: sum(row.values()) / len(row) for name, row in table.items()}
    rep.line()
    for name, a in avg.items():
        rep.line(f"average {name:<14} {a:.3f}")
    rep.line("paper: PC +4-9% vs iSLIP-2/wavefront on non-uniform patterns")
    rep.line("(reproduction: PC clearly wins tornado; on the other "
             "deterministic patterns it is within a few % — DESIGN.md §6)")
    rep.save()

    # Chaining (with the paper's fairness threshold) is competitive on
    # average across adversarial patterns and wins at least one.
    assert avg["pc-same-input"] >= 0.93 * avg["islip1"]
    assert any(
        table["pc-same-input"][p] > table["islip2"][p] for p in patterns
    )
