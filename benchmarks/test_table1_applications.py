"""Table 1: packet chaining vs iSLIP-1 on application benchmarks.

Paper (64-core CMP, chaining among all VCs of the same input,
connections released after 8 cycles, 64-bit datapath):

    Blackscholes +46%   Canneal       +1%
    Dedup         +6%   FFT           +9%
    Fluidanimate  +3%   Swaptions    +29%
    Average      +16%

Our workloads are synthetic substitutes (DESIGN.md section 3.4), so the
reproduction target is the *ordering and sign*: heavy/bursty apps
(blackscholes, swaptions) gain the most, canneal gains the least, and
the average gain is positive. Absolute percentages are compressed
because the substitute cores spend less of their time in the deeply
saturated phases that produced the paper's +46%.
"""

import statistics

from conftest import once, sim_cycles

from repro.cmp import WORKLOADS, run_application
from repro.network.config import mesh_config

CYCLES = sim_cycles(warmup=400, measure=1600)
SEEDS = [1, 2, 3]
PAPER = {
    "blackscholes": 46, "canneal": 1, "dedup": 6,
    "fft": 9, "fluidanimate": 3, "swaptions": 29,
}


def measure(workload, overrides, seed):
    system = run_application(
        workload, mesh_config(**overrides),
        warmup=CYCLES["warmup"], measure=CYCLES["measure"], seed=seed,
    )
    return system.aggregate_ipc()


def run_experiment():
    gains = {}
    for workload in sorted(WORKLOADS):
        deltas = []
        for seed in SEEDS:
            base = measure(workload, {}, seed)
            chained = measure(
                workload,
                dict(chaining="same_input", starvation_threshold=8),
                seed,
            )
            deltas.append(100 * (chained / base - 1))
        gains[workload] = statistics.mean(deltas)
    return gains


def test_table1_applications(benchmark, report):
    gains = once(benchmark, run_experiment)
    rep = report("Table 1: IPC increase of packet chaining vs iSLIP-1 "
                 "(64-core CMP)")
    rep.row("benchmark", "measured", "paper", widths=[16, 10, 8])
    for workload in sorted(gains):
        rep.row(workload, f"{gains[workload]:+.1f}%", f"+{PAPER[workload]}%",
                widths=[16, 10, 8])
    avg = statistics.mean(gains.values())
    rep.row("average", f"{avg:+.1f}%", "+16%", widths=[16, 10, 8])
    rep.line()
    rep.line("targets: positive average; heavy/bursty apps gain more than"
             " canneal (see module docstring)")
    rep.save()

    assert avg > 0
    heavy = statistics.mean([gains["blackscholes"], gains["swaptions"]])
    assert heavy > gains["canneal"] - 1.0
