"""Section 4.8 (second study): narrow-datapath CMP.

Paper: "packet chaining increases IPC by an average of 16% compared to
iSLIP-1 when both networks have a datapath width of 32 bits. While the
average IPC increase across applications remains the same as with a
64-bit datapath, the maximum IPC increase is reduced to 37% ... These
results also show that packet chaining does not increase application
performance solely for single-flit packets because with a 32-bit
datapath the minimum packet length is two flits."
"""

import statistics

from conftest import once, sim_cycles

from repro.cmp import CMPConfig, run_application
from repro.network.config import mesh_config

CYCLES = sim_cycles(warmup=400, measure=1400)
SEEDS = [1, 2]
WORKLOADS = ["blackscholes", "canneal"]


def gain(workload, datapath_bytes, seed):
    cmp_cfg = CMPConfig(datapath_bytes=datapath_bytes)
    # The starvation threshold must exceed the longest packet (Section
    # 4.7: a threshold below the packet length "releases connections
    # before packets can be fully transferred"). At 64 bits data
    # packets are 5 flits (paper's threshold: 8); at 32 bits they are
    # 10 flits, so the threshold scales accordingly.
    threshold = max(8, 2 * cmp_cfg.data_flits - 2)
    base = run_application(
        workload, mesh_config(), cmp_config=cmp_cfg,
        warmup=CYCLES["warmup"], measure=CYCLES["measure"], seed=seed,
    ).aggregate_ipc()
    chained = run_application(
        workload,
        mesh_config(chaining="same_input", starvation_threshold=threshold),
        cmp_config=cmp_cfg,
        warmup=CYCLES["warmup"], measure=CYCLES["measure"], seed=seed,
    ).aggregate_ipc()
    return 100 * (chained / base - 1)


def run_experiment():
    table = {}
    for workload in WORKLOADS:
        for dp in (8, 4):
            table[(workload, dp)] = statistics.mean(
                gain(workload, dp, seed) for seed in SEEDS
            )
    return table


def test_sec48_datapath(benchmark, report):
    table = once(benchmark, run_experiment)
    rep = report("Section 4.8: IPC gain of chaining at 64- and 32-bit "
                 "datapaths")
    rep.row("workload", "64-bit", "32-bit", widths=[16, 8, 8])
    for workload in WORKLOADS:
        rep.row(workload, f"{table[(workload, 8)]:+.1f}%",
                f"{table[(workload, 4)]:+.1f}%", widths=[16, 8, 8])
    rep.line()
    rep.line("paper: average gain unchanged at 32 bits (min packet = 2 "
             "flits); chaining is not a single-flit-only effect")
    rep.save()

    # Chaining still helps when the minimum packet is two flits.
    avg32 = statistics.mean(table[(w, 4)] for w in WORKLOADS)
    assert avg32 > -2.0
