"""Figure 7: injection rate vs throughput for the chaining schemes.

Paper, Fig 7(a) (mesh): considering all VCs of the same input or all
inputs and VCs gives a 5% higher saturation throughput than iSLIP-1 on
uniform random traffic.

Paper, Fig 7(b) (FBFly): selecting among all inputs and VCs increases
throughput by 9% for uniform random traffic vs disabling chaining.
"""

from conftest import once, sim_cycles

from repro import fbfly_config, mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)
MESH_RATES = [0.25, 0.38, 0.45, 0.7, 1.0]
FBFLY_RATES = [0.35, 0.5, 0.62, 0.8, 1.0]
SCHEMES = ["disabled", "same_vc", "same_input", "any_input"]


def sweep(config_factory, rates):
    series = {}
    for scheme in SCHEMES:
        series[scheme] = [
            run_simulation(
                config_factory(chaining=scheme), pattern="uniform",
                rate=rate, packet_length=1, **CYCLES,
            ).avg_throughput
            for rate in rates
        ]
    return series


def _render(rep, rates, series):
    rep.row("scheme", *(f"{r:.2f}" for r in rates),
            widths=[12] + [8] * len(rates))
    for scheme, tps in series.items():
        rep.row(scheme, *(f"{t:.3f}" for t in tps),
                widths=[12] + [8] * len(rates))


def test_fig07a_mesh(benchmark, report):
    series = once(benchmark, lambda: sweep(mesh_config, MESH_RATES))
    rep = report("Figure 7(a): rate vs throughput by chaining scheme "
                 "(mesh, 1-flit, uniform)")
    _render(rep, MESH_RATES, series)
    base = series["disabled"][-1]
    rep.line()
    for scheme in SCHEMES[1:]:
        gain = 100 * (series[scheme][-1] / base - 1)
        rep.line(f"{scheme} at max injection: {gain:+.1f}%")
    rep.line("paper: same-input / any-input +5% at saturation, "
             "same-input best for the mesh")
    rep.save()

    assert series["same_input"][-1] > base
    assert series["any_input"][-1] > base
    # Section 4.5: same-input is the best scheme for DOR on a mesh.
    assert series["same_input"][-1] >= series["any_input"][-1] - 0.02


def test_fig07b_fbfly(benchmark, report):
    series = once(benchmark, lambda: sweep(fbfly_config, FBFLY_RATES))
    rep = report("Figure 7(b): rate vs throughput by chaining scheme "
                 "(FBFly, 1-flit, uniform)")
    _render(rep, FBFLY_RATES, series)
    base = series["disabled"][-1]
    rep.line()
    for scheme in SCHEMES[1:]:
        gain = 100 * (series[scheme][-1] / base - 1)
        rep.line(f"{scheme} at max injection: {gain:+.1f}%")
    rep.line("paper: any-input +9% on uniform random")
    rep.save()

    assert series["any_input"][-1] > base
    gain = series["any_input"][-1] / base - 1
    assert 0.03 < gain < 0.20  # paper: ~9%
