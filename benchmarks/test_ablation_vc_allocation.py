"""Ablation: combined vs split VC allocation under packet chaining.

Paper (Section 2.2): "We implement packet chaining on top of a combined
switch-VC allocator that reserves output VCs only for packets which win
switch allocation. This leaves more output VCs free compared to
performing VC allocation in advance, therefore giving more flexibility
to packet chaining to find free output VCs."

This bench quantifies that design decision: the relative chaining gain
must be larger with the combined allocator than with a split VA router
that holds output VCs a pipeline stage earlier.
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation

CYCLES = sim_cycles(warmup=300, measure=700)


def run_experiment():
    out = {}
    for va in ("combined", "split", "speculative"):
        for scheme in ("disabled", "same_input"):
            result = run_simulation(
                mesh_config(vc_allocation=va, chaining=scheme),
                pattern="uniform", rate=1.0, packet_length=1, **CYCLES,
            )
            out[(va, scheme)] = result
    return out


def test_ablation_vc_allocation(benchmark, report):
    data = once(benchmark, run_experiment)
    rep = report("Ablation: combined vs split VC allocation "
                 "(mesh, 1-flit, uniform, max injection)")
    rep.row("VA mode", "no chaining", "chained", "gain", "chains",
            widths=[10, 12, 9, 8, 9])
    gains = {}
    for va in ("combined", "split", "speculative"):
        base = data[(va, "disabled")].avg_throughput
        chained = data[(va, "same_input")].avg_throughput
        gains[va] = 100 * (chained / base - 1)
        rep.row(va, f"{base:.3f}", f"{chained:.3f}", f"{gains[va]:+.1f}%",
                str(data[(va, "same_input")].chain_stats.total_chains),
                widths=[10, 12, 9, 8, 9])
    rep.line()
    rep.line("paper's rationale: combined allocation leaves more output"
             " VCs free for chaining")
    rep.save()

    assert gains["combined"] > gains["split"]