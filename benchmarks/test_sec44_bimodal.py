"""Section 4.4: bimodal traffic (request-reply mixes).

Paper: "when assuming a request-reply protocol with single-flit short
and five-flit long packets, packet chaining provides a marginal (1%)
throughput increase by average across traffic patterns and a 4%
increase for uniform random traffic, when considering all inputs and
VCs."
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation
from repro.traffic import BimodalLength

CYCLES = sim_cycles(warmup=300, measure=700)

CONFIGS = [
    ("islip1", dict()),
    ("pc-any-input", dict(chaining="any_input", starvation_threshold=8)),
    ("pc-same-input", dict(chaining="same_input", starvation_threshold=8)),
]


def run_experiment():
    return {
        name: run_simulation(
            mesh_config(**overrides), pattern="uniform", rate=1.0,
            lengths=BimodalLength(short=1, long=5), **CYCLES,
        ).avg_throughput
        for name, overrides in CONFIGS
    }


def test_sec44_bimodal(benchmark, report):
    tps = once(benchmark, run_experiment)
    rep = report("Section 4.4: bimodal 1-/5-flit request-reply traffic "
                 "(mesh, uniform, max injection)")
    base = tps["islip1"]
    for name, tp in tps.items():
        rep.row(name, f"{tp:.3f}", f"{100 * (tp / base - 1):+.1f}%",
                widths=[16, 8, 8])
    rep.line()
    rep.line("paper: any-input +4% on uniform random")
    rep.save()

    assert tps["pc-any-input"] > base
