"""Experiment-service dispatch overhead guarantee.

``repro serve`` buys crash tolerance — a fsynced job journal, one
supervised process per attempt, heartbeat leases, and atomic
content-addressed cache publication — and all of that costs wall time
that a bare :func:`repro.sim.parallel.parallel_sweep` does not pay.
The guarantee gated here: for a realistic fleet the whole tax stays
under 5% of the bare sweep's wall time, so there is no performance
excuse to run long sweeps outside the service.

Both sides run the identical fleet (same rates, phases, seed, worker
count) and the repeats interleave bare/serve so slow host drift hits
both about equally; min-of-N is the noise-robust estimator. Every
serve repeat gets a fresh root, so nothing is ever served from cache —
the comparison is simulate-vs-simulate, with the service's journal,
fork, supervision, and artifact costs riding on top of one side.

The ``serve-dispatch`` case in the ``repro bench`` quick suite tracks
the same path as a trend line across commits; this bench is the hard
gate.
"""

import shutil
import tempfile
import time

from conftest import once, sim_cycles

from repro.network.config import mesh_config
from repro.serve import ExperimentService
from repro.serve.spec import spec_for
from repro.sim.parallel import parallel_sweep

CYCLES = sim_cycles(warmup=600, measure=1200)
RATES = [0.05, 0.15, 0.25, 0.30, 0.35, 0.40]
WORKERS = 2
REPEATS = 3
CONFIG = mesh_config(mesh_k=4)


def timed_bare():
    start = time.perf_counter()
    results = parallel_sweep(CONFIG, RATES, workers=WORKERS, **CYCLES)
    elapsed = time.perf_counter() - start
    assert not results.errors, results.errors
    return elapsed


def timed_serve():
    root = tempfile.mkdtemp(prefix="repro-bench-serve-")
    try:
        start = time.perf_counter()
        with ExperimentService(root, workers=WORKERS) as svc:
            for rate in RATES:
                svc.submit(spec_for(CONFIG, rate=rate, label=f"r{rate:g}",
                                    **CYCLES))
            svc.run(once=True, max_seconds=600, install_signals=False)
            records = svc.jobs
        elapsed = time.perf_counter() - start
        done = [r for r in records.values() if r.state == "done"]
        assert len(done) == len(RATES), \
            [(r.state, r.error) for r in records.values()]
        assert all(not r.cached for r in done)  # fresh root: no hits
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return elapsed


def run_experiment():
    bare_times, serve_times = [], []
    for _ in range(REPEATS):
        bare_times.append(timed_bare())
        serve_times.append(timed_serve())
    return min(bare_times), min(serve_times)


def test_serve_overhead(benchmark, report):
    bare_time, serve_time = once(benchmark, run_experiment)
    overhead = 100 * (serve_time / bare_time - 1)

    rep = report("Experiment-service dispatch overhead vs bare sweep")
    rep.row("configuration", "seconds", "overhead", widths=[24, 10, 10])
    rep.row("parallel_sweep", f"{bare_time:.3f}", "-", widths=[24, 10, 10])
    rep.row("repro serve", f"{serve_time:.3f}", f"{overhead:+.1f}%",
            widths=[24, 10, 10])
    rep.line()
    rep.line(f"fleet: {len(RATES)} jobs x "
             f"{CYCLES['warmup'] + CYCLES['measure']} cycles on mesh-4, "
             f"{WORKERS} workers; serve side pays journal fsyncs, "
             f"per-attempt forks, heartbeat leases, and atomic cache "
             f"publication")
    rep.line("guarantee: the crash-tolerance tax stays under 5% of the "
             "bare sweep's wall time")
    rep.save()

    assert overhead <= 5.0, (
        f"service dispatch costs {overhead:.1f}% over bare "
        f"parallel_sweep (budget: 5%)"
    )
