"""Figure 8: comparison by traffic pattern.

Paper: "the advantages of packet chaining remain largely the same
across traffic patterns except for bitcomp without starvation control
because bitcomp creates continuous flows of traffic which starve other
packets. By releasing connections after four cycles with bitcomp,
packet chaining is comparable (offers 2% higher throughput) to iSLIP-1."

Reproduction note (DESIGN.md section 6): in our simulator *all*
deterministic single-destination patterns exhibit the continuous-flow
capture pathology at maximum injection under the same-input schemes
(the paper observed it only for bitcomp); the paper's own mitigations —
the any-input scheme (whose PC allocator round-robins across inputs,
Section 4.7) or threshold starvation control — restore the gains, which
is what this bench demonstrates.
"""

from conftest import once, sim_cycles

from repro import mesh_config, run_simulation
from repro.traffic import MESH_PATTERNS

CYCLES = sim_cycles(warmup=300, measure=700)

CONFIGS = [
    ("islip1", dict()),
    ("pc-no-starv", dict(chaining="same_input")),
    ("pc-starv4", dict(chaining="same_input", starvation_threshold=4)),
    ("pc-any-input", dict(chaining="any_input")),
]


def run_experiment():
    table = {}
    for name, overrides in CONFIGS:
        table[name] = {
            pat: run_simulation(
                mesh_config(**overrides), pattern=pat, rate=1.0,
                packet_length=1, **CYCLES,
            ).avg_throughput
            for pat in MESH_PATTERNS
        }
    return table


def test_fig08_patterns(benchmark, report):
    table = once(benchmark, run_experiment)
    rep = report("Figure 8: throughput by traffic pattern at max injection "
                 "(mesh, 1-flit)")
    rep.row("config", *MESH_PATTERNS, widths=[14] + [12] * len(MESH_PATTERNS))
    for name, row in table.items():
        rep.row(name, *(f"{row[p]:.3f}" for p in MESH_PATTERNS),
                widths=[14] + [12] * len(MESH_PATTERNS))
    rep.line()
    bc = {name: row["bitcomp"] for name, row in table.items()}
    rep.line(f"bitcomp: chaining w/o starvation {bc['pc-no-starv']:.3f} vs "
             f"iSLIP-1 {bc['islip1']:.3f} (collapse, as in the paper)")
    rep.line(f"bitcomp: threshold-4 restores to {bc['pc-starv4']:.3f} "
             f"({100 * (bc['pc-starv4'] / bc['islip1'] - 1):+.1f}% vs iSLIP-1;"
             f" paper: +2%)")
    rep.save()

    # The paper's bitcomp story: collapse without starvation control,
    # recovery with a 4-cycle threshold.
    assert bc["pc-no-starv"] < bc["islip1"]
    assert bc["pc-starv4"] >= 0.95 * bc["islip1"]
    # Uniform gains survive regardless of starvation control.
    assert table["pc-no-starv"]["uniform"] > table["islip1"]["uniform"]
