"""Section 4.9: packet chaining cost vs other allocators.

Paper: "compared to packet chaining, wavefront requires 1.5x more
power, 1.25x more area and 20% more delay in the mesh, as well as 3x
more power, 1.35x more area and 36% more delay in the FBFly." A
two-iteration separable allocator has the same area but twice the delay
and worst-case power; SAME_INPUT chaining needs only per-input arbiters.
"""

import pytest
from conftest import once

from repro import AllocatorCostModel

MESH_RADIX, FBFLY_RADIX = 5, 10


def run_experiment():
    return {
        "mesh": AllocatorCostModel(MESH_RADIX),
        "fbfly": AllocatorCostModel(FBFLY_RADIX),
    }


def test_sec49_cost(benchmark, report):
    models = once(benchmark, run_experiment)
    rep = report("Section 4.9: allocator cost model "
                 "(relative to iSLIP-1 = 1.0)")
    for topo, model in models.items():
        rep.line()
        rep.line(f"[{topo}] radix {model.radix}")
        rep.row("allocator", "area", "power", "delay", widths=[16, 7, 7, 7])
        for r in model.table():
            rep.row(r.name, f"{r.area:.2f}", f"{r.power:.2f}", f"{r.delay:.2f}",
                    widths=[16, 7, 7, 7])
        rel = model.wavefront_vs_packet_chaining()
        rep.line(
            f"wavefront vs PC: {rel.power:.2f}x power, {rel.area:.2f}x area,"
            f" +{100 * (rel.delay - 1):.0f}% delay"
        )
    rep.line()
    rep.line("paper: mesh 1.5x/1.25x/+20%; FBFly 3x/1.35x/+36%")
    rep.save()

    mesh = models["mesh"].wavefront_vs_packet_chaining()
    assert mesh.power == pytest.approx(1.5)
    assert mesh.area == pytest.approx(1.25)
    assert mesh.delay == pytest.approx(1.20)
    fb = models["fbfly"].wavefront_vs_packet_chaining()
    assert fb.power == pytest.approx(3.0)
    assert fb.area == pytest.approx(1.35)
    assert fb.delay == pytest.approx(1.36)
