"""Tests for NetworkConfig serialization and CLI --config."""

import io
import json

import pytest

from repro.cli import main
from repro.core.chaining import ChainingScheme
from repro.network.config import NetworkConfig, fbfly_config, mesh_config


class TestConfigIO:
    def test_to_dict_serializes_enum(self):
        cfg = mesh_config(chaining="same_input")
        data = cfg.to_dict()
        assert data["chaining"] == "same_input"
        json.dumps(data)  # fully JSON-serializable

    def test_roundtrip(self):
        cfg = mesh_config(
            chaining="any_input", starvation_threshold=8,
            allocator="wavefront", vc_buf_depth=6, seed=77,
        )
        clone = NetworkConfig.from_dict(cfg.to_dict())
        assert clone == cfg
        assert clone.chaining is ChainingScheme.ANY_INPUT

    def test_fbfly_roundtrip_preserves_classes(self):
        clone = NetworkConfig.from_dict(fbfly_config().to_dict())
        assert clone.num_classes == 2

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig.from_dict({"warp_factor": 9})

    def test_save_load_file(self, tmp_path):
        cfg = mesh_config(chaining="same_vc", mesh_k=4)
        path = tmp_path / "net.json"
        cfg.save(path)
        assert NetworkConfig.load(path) == cfg

    def test_cli_config_file(self, tmp_path):
        path = tmp_path / "net.json"
        mesh_config(mesh_k=4, chaining="any_input").save(path)
        out = io.StringIO()
        code = main(
            ["run", "--config", str(path), "--rate", "0.5",
             "--warmup", "100", "--measure", "200", "--drain", "0"],
            out=out,
        )
        assert code == 0
        assert "chains" in out.getvalue()  # chaining came from the file
