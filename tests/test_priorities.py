"""End-to-end packet priority tests.

The paper's allocators "take into account priorities" (Section 3):
higher-priority requests beat lower ones at every arbitration point.
These tests inject two traffic classes under load and check that the
high class sees materially lower latency.
"""

import random

import pytest

from repro.network.config import mesh_config
from repro.network.network import Network
from repro.network.flit import Packet


def run_two_classes(allocator="islip1", chaining="disabled", cycles=800,
                    rate=0.45, high_fraction=0.2, age_period=None):
    cfg = mesh_config(mesh_k=4, allocator=allocator, chaining=chaining,
                      age_period=age_period)
    net = Network(cfg)
    rng = random.Random(17)
    latencies = {0: [], 5: []}

    class Probe:
        def record_flit_ejected(self, flit, cycle):
            pass

        def record_ejected(self, packet, cycle):
            latencies[packet.priority].append(cycle - packet.time_created)

    for sink in net.sinks:
        sink.stats = Probe()
    for _ in range(cycles):
        for src in range(net.num_terminals):
            if rng.random() < rate:
                dest = rng.randrange(net.num_terminals)
                if dest == src:
                    continue
                prio = 5 if rng.random() < high_fraction else 0
                net.inject(Packet(src, dest, 1, net.cycle, priority=prio))
        net.step()
    return latencies


def mean(xs):
    return sum(xs) / len(xs)


class TestPriorities:
    def test_high_priority_lower_latency_islip(self):
        lat = run_two_classes()
        assert lat[5] and lat[0]
        assert mean(lat[5]) < mean(lat[0])

    def test_high_priority_lower_latency_wavefront(self):
        lat = run_two_classes(allocator="wavefront")
        assert mean(lat[5]) < mean(lat[0])

    def test_high_priority_lower_latency_with_chaining(self):
        lat = run_two_classes(chaining="any_input")
        assert mean(lat[5]) < mean(lat[0])

    def test_priorities_gap_grows_with_load(self):
        """More contention -> more arbitration wins -> bigger gap."""
        light = run_two_classes(rate=0.2)
        heavy = run_two_classes(rate=0.6)
        gap = lambda lat: mean(lat[0]) - mean(lat[5])
        assert gap(heavy) > gap(light)
        assert mean(heavy[5]) < 0.97 * mean(heavy[0])
