"""Tests for the live sweep dashboard (obs.watch)."""

import io
import json
import os

import pytest

from repro.obs.telemetry import (
    RunTelemetry,
    init_telemetry_dir,
    point_heartbeat_path,
)
from repro.obs.watch import (
    PointState,
    WatchState,
    format_watch,
    scan_telemetry_dir,
    watch,
)


def write_records(path, records):
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")


def make_dir(tmp_path, labels):
    directory = str(tmp_path / "tel")
    init_telemetry_dir(
        directory,
        [{"label": l, "rate": 0.1 * (i + 1)} for i, l in enumerate(labels)],
    )
    return directory


START = {"ev": "start", "t": 100.0, "cycle": 0, "total_cycles": 1000,
         "label": "", "rate": None, "pid": 42}


def beat(cycle, t=101.0, **extra):
    record = {"ev": "heartbeat", "t": t, "cycle": cycle,
              "total_cycles": 1000, "phase": "measure",
              "cycles_per_sec": 500.0, "avg_cycles_per_sec": 450.0,
              "progress": cycle / 1000, "eta_sec": (1000 - cycle) / 450.0,
              "rss_kb": 20000, "pid": 42}
    record.update(extra)
    return record


def finish(cycle=1000, status="done", t=103.0):
    return {"ev": "finish", "t": t, "status": status, "cycle": cycle,
            "total_cycles": 1000, "wall_seconds": 2.2,
            "cycles_per_sec": 454.0, "rss_kb": 21000}


class TestScan:
    def test_pending_running_done(self, tmp_path):
        directory = make_dir(tmp_path, ["a", "b", "c"])
        write_records(point_heartbeat_path(directory, 0),
                      [START, beat(400)])
        write_records(point_heartbeat_path(directory, 1),
                      [START, beat(990), finish()])
        state = scan_telemetry_dir(directory, now=105.0)
        assert [p.status for p in state.points] == \
            ["running", "done", "pending"]
        running, done, pending = state.points
        assert running.cycle == 400
        assert running.progress == pytest.approx(0.4)
        assert running.cycles_per_sec == 500.0
        assert running.eta_sec == pytest.approx(600 / 450.0)
        assert done.progress == 1.0
        assert done.wall_seconds == 2.2
        assert pending.progress is None
        assert pending.label == "c"
        assert not state.all_finished

    def test_stalled_detection(self, tmp_path):
        directory = make_dir(tmp_path, ["a"])
        write_records(point_heartbeat_path(directory, 0),
                      [START, beat(300, t=100.5)])
        fresh = scan_telemetry_dir(directory, now=105.0, stale_after=30.0)
        assert fresh.points[0].status == "running"
        stale = scan_telemetry_dir(directory, now=200.0, stale_after=30.0)
        assert stale.points[0].status == "stalled?"

    def test_failed_and_killed_statuses(self, tmp_path):
        directory = make_dir(tmp_path, ["a", "b"])
        write_records(point_heartbeat_path(directory, 0),
                      [START, finish(cycle=500, status="killed")])
        write_records(point_heartbeat_path(directory, 1),
                      [START, finish(cycle=100, status="failed")])
        state = scan_telemetry_dir(directory, now=105.0)
        assert [p.status for p in state.points] == ["killed", "failed"]
        assert state.all_finished
        assert state.counts == {"killed": 1, "failed": 1}

    def test_extra_heartbeat_file_without_manifest(self, tmp_path):
        directory = str(tmp_path / "tel")
        os.makedirs(directory)
        write_records(os.path.join(directory, "run.hb.jsonl"),
                      [START, beat(250, label="solo", rate=0.3)])
        state = scan_telemetry_dir(directory, now=105.0)
        assert len(state.points) == 1
        assert state.points[0].label == "solo"
        assert state.points[0].rate == 0.3

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scan_telemetry_dir(str(tmp_path / "nope"))

    def test_torn_manifest_falls_back_to_files(self, tmp_path):
        directory = str(tmp_path / "tel")
        os.makedirs(directory)
        with open(os.path.join(directory, "sweep.json"), "w") as fh:
            fh.write('{"points": [')
        write_records(os.path.join(directory, "x.hb.jsonl"),
                      [START, beat(100)])
        state = scan_telemetry_dir(directory, now=105.0)
        assert len(state.points) == 1


class TestAggregates:
    def two_running(self):
        return WatchState("d", [
            PointState(0, "a", 0.1, "running", cycle=900, total_cycles=1000,
                       cycles_per_sec=300.0, eta_sec=2.0),
            PointState(1, "b", 0.2, "running", cycle=100, total_cycles=1000,
                       cycles_per_sec=200.0, eta_sec=30.0),
        ])

    def test_aggregate_and_eta(self):
        state = self.two_running()
        assert state.aggregate_cycles_per_sec == 500.0
        assert state.eta_sec == 30.0  # slowest point bounds the sweep

    def test_stragglers(self):
        state = self.two_running()
        assert [p.label for p in state.stragglers()] == ["b"]
        assert state.stragglers(gap=0.9) == []

    def test_single_running_point_is_never_a_straggler(self):
        state = WatchState("d", [
            PointState(0, "a", 0.1, "running", cycle=10, total_cycles=1000),
        ])
        assert state.stragglers() == []


class TestRender:
    def test_format_watch_frame(self, tmp_path):
        directory = make_dir(tmp_path, ["a", "b"])
        write_records(point_heartbeat_path(directory, 0),
                      [START, beat(400)])
        write_records(point_heartbeat_path(directory, 1),
                      [START, beat(990), finish()])
        frame = format_watch(scan_telemetry_dir(directory, now=105.0))
        assert "2 points (1 done, 1 running)" in frame
        assert "[########------------]" in frame  # 40% bar
        assert "eta" in frame and "took" in frame
        assert "aggregate: 500 cycles/sec across 1 running" in frame

    def test_finished_banner(self, tmp_path):
        directory = make_dir(tmp_path, ["a"])
        write_records(point_heartbeat_path(directory, 0),
                      [START, beat(990), finish()])
        frame = format_watch(scan_telemetry_dir(directory, now=105.0))
        assert "sweep finished" in frame

    def test_pending_points_render_unknown_progress(self, tmp_path):
        directory = make_dir(tmp_path, ["a"])
        frame = format_watch(scan_telemetry_dir(directory, now=105.0))
        assert "????" in frame
        assert "pending" in frame


class TestWatchLoop:
    def test_once_mode_returns_zero_when_clean(self, tmp_path):
        directory = make_dir(tmp_path, ["a"])
        write_records(point_heartbeat_path(directory, 0),
                      [START, beat(990), finish()])
        out = io.StringIO()
        assert watch(directory, out, follow=False) == 0
        assert "sweep finished" in out.getvalue()

    def test_once_mode_flags_failures(self, tmp_path):
        directory = make_dir(tmp_path, ["a"])
        write_records(point_heartbeat_path(directory, 0),
                      [START, finish(cycle=10, status="failed")])
        assert watch(directory, io.StringIO(), follow=False) == 1

    def test_missing_directory_returns_two(self, tmp_path):
        assert watch(str(tmp_path / "nope"), io.StringIO(),
                     follow=False) == 2

    def test_follow_polls_until_finished(self, tmp_path):
        directory = make_dir(tmp_path, ["a"])
        path = point_heartbeat_path(directory, 0)
        write_records(path, [START, beat(400)])
        frames = []

        def sleep(_):
            # Between polls the point finishes: follow mode must notice.
            frames.append(1)
            write_records(path, [START, beat(990), finish()])

        out = io.StringIO()
        code = watch(directory, out, follow=True, interval=0.01,
                     clock=lambda: 105.0, sleep=sleep)
        assert code == 0
        assert frames  # at least one poll happened before the finish
        assert "sweep finished" in out.getvalue()

    def test_live_inflight_rendering(self, tmp_path):
        """An in-flight (unfinished) telemetry dir renders live state."""
        directory = str(tmp_path / "tel")
        init_telemetry_dir(directory, [{"label": "p", "rate": 0.1}])
        tele = RunTelemetry(path=point_heartbeat_path(directory, 0),
                            every=10, label="p", rate=0.1)
        tele.begin(total_cycles=100)
        for cycle in range(1, 51):
            tele.on_cycle(cycle, "measure")
        # No finish(): the run is still going. The dashboard must show a
        # running point at ~50%, not an error or a finished sweep.
        out = io.StringIO()
        code = watch(directory, out, follow=True, max_frames=1)
        frame = out.getvalue()
        assert code == 0
        assert "running" in frame
        assert " 50%" in frame
        assert "sweep finished" not in frame
        tele.finish("done", cycle=50)
