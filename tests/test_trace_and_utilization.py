"""Tests for trace record/replay and utilization reporting."""

import random

import pytest

from repro.network.config import mesh_config
from repro.network.flit import Packet
from repro.network.network import Network
from repro.sim.runner import SimulationRun
from repro.stats.utilization import (
    hottest_links,
    link_loads,
    mesh_heatmap,
    router_activity,
    shade,
    utilization_summary,
)
from repro.traffic.trace import (
    TraceEntry,
    TraceInjector,
    TraceRecorder,
    record_cmp_trace,
)


class TestTraceEntry:
    def test_roundtrip_line(self):
        e = TraceEntry(42, 3, 17, 5)
        assert TraceEntry.from_line(e.to_line()) == e


class TestTraceRecorder:
    def test_records_injections(self):
        net = Network(mesh_config(mesh_k=4))
        rec = TraceRecorder().attach(net)
        net.inject(Packet(0, 5, 2, net.cycle))
        net.step()
        net.inject(Packet(3, 9, 1, net.cycle))
        assert [(e.cycle, e.src, e.dest, e.size) for e in rec.entries] == [
            (0, 0, 5, 2),
            (1, 3, 9, 1),
        ]

    def test_save_load_roundtrip(self, tmp_path):
        rec = TraceRecorder()
        rec.entries = [TraceEntry(0, 1, 2, 3), TraceEntry(5, 4, 5, 1)]
        path = tmp_path / "trace.txt"
        rec.save(path)
        assert TraceRecorder.load(path) == rec.entries


class TestTraceInjector:
    def test_replays_at_recorded_cycles(self):
        entries = [TraceEntry(10, 0, 1, 1), TraceEntry(12, 2, 3, 2)]
        inj = TraceInjector(entries, num_terminals=16)
        # time_offset auto-shifts the first entry to cycle 0.
        assert len(inj.generate(0)) == 1
        assert inj.generate(1) == []
        packets = inj.generate(2)
        assert len(packets) == 1
        assert packets[0].size == 2
        assert inj.exhausted

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            TraceInjector([TraceEntry(5, 0, 1, 1), TraceEntry(1, 0, 1, 1)], 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TraceInjector([TraceEntry(0, 99, 1, 1)], 4)

    def test_mean_rate(self):
        entries = [TraceEntry(0, 0, 1, 2), TraceEntry(9, 1, 0, 2)]
        inj = TraceInjector(entries, num_terminals=2)
        assert inj.rate == pytest.approx(4 / 10 / 2)

    def test_disabled(self):
        inj = TraceInjector([TraceEntry(0, 0, 1, 1)], 4)
        inj.enabled = False
        assert inj.generate(0) == []

    def test_replay_through_simulation(self):
        """A recorded trace replays end-to-end on a fresh network."""
        rng = random.Random(8)
        entries = []
        cycle = 0
        for _ in range(50):
            cycle += rng.randrange(3)
            src, dest = rng.randrange(16), rng.randrange(16)
            if src != dest:
                entries.append(TraceEntry(cycle, src, dest, rng.choice([1, 2])))
        net = Network(mesh_config(mesh_k=4))
        inj = TraceInjector(entries, net.num_terminals)
        net.stats.set_window(0, 10_000)
        result = SimulationRun(net, inj, warmup=0, measure=cycle + 5,
                               drain=500).execute()
        assert result.packet_latency.count == len(entries)

    def test_record_cmp_trace(self):
        entries = record_cmp_trace("canneal", mesh_config(), cycles=60)
        assert entries
        assert all(0 <= e.src < 64 and 0 <= e.dest < 64 for e in entries)
        assert all(e.size in (1, 5) for e in entries)


class TestUtilization:
    def _loaded_network(self):
        net = Network(mesh_config(mesh_k=4))
        rng = random.Random(9)
        for _ in range(200):
            for src in range(net.num_terminals):
                if rng.random() < 0.3:
                    dest = rng.randrange(net.num_terminals)
                    if dest != src:
                        net.inject(Packet(src, dest, 1, net.cycle))
            net.step()
        return net

    def test_link_loads_counts(self):
        net = self._loaded_network()
        loads = link_loads(net, net.cycle)
        assert sum(l.flits for l in loads) > 0
        for l in loads:
            assert 0.0 <= l.utilization <= 1.0

    def test_flit_conservation_against_port_counters(self):
        """Terminal ejection counters match the stats collector."""
        net = self._loaded_network()
        ejected = sum(
            l.flits for l in link_loads(net, net.cycle) if l.is_terminal
        )
        # stats window was never set, so use the per-port counters of
        # sinks indirectly: every flit ejected crossed a terminal port.
        assert ejected > 0

    def test_hottest_links_sorted(self):
        net = self._loaded_network()
        top = hottest_links(net, net.cycle, top=5)
        assert len(top) == 5
        assert all(a.flits >= b.flits for a, b in zip(top, top[1:]))

    def test_router_activity_length(self):
        net = self._loaded_network()
        act = router_activity(net, net.cycle)
        assert len(act) == 16
        assert max(act) > 0

    def test_mesh_heatmap_shape(self):
        net = self._loaded_network()
        grid = mesh_heatmap(net, net.cycle)
        rows = grid.splitlines()
        assert len(rows) == 4
        assert all(len(r) == 4 for r in rows)

    def test_heatmap_requires_grid(self):
        from repro.network.config import fbfly_config

        net = Network(fbfly_config())
        with pytest.raises(TypeError):
            mesh_heatmap(net, 1)

    def test_shade_ramp(self):
        assert shade(0, 10) == " "
        assert shade(10, 10) == "@"
        assert shade(0, 0) == " "

    def test_summary_text(self):
        net = self._loaded_network()
        text = utilization_summary(net, net.cycle)
        assert "active links" in text

    def test_summary_empty(self):
        net = Network(mesh_config(mesh_k=4))
        net.run(5)
        assert utilization_summary(net, 5) == "no link traffic recorded"

    def test_bad_cycles(self):
        net = Network(mesh_config(mesh_k=4))
        with pytest.raises(ValueError):
            link_loads(net, 0)
