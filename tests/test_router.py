"""Micro-scenario tests for the router: incremental allocation, the
combined switch/VC allocator, and packet chaining timing (Figure 4)."""

import pytest

from repro.core.chaining import ChainingScheme
from repro.network.channel import PipelinedChannel
from repro.network.config import NetworkConfig
from repro.network.flit import Packet
from repro.network.router import Router


def make_router(radix=3, **cfg_kwargs):
    """A standalone router with hand-wired channels and no look-ahead."""
    cfg = NetworkConfig(**cfg_kwargs)
    router = Router(0, radix, cfg, routing=None)
    for p in range(radix):
        router.in_flit_channels[p] = PipelinedChannel(1)
        router.out_flit_channels[p] = PipelinedChannel(1)
        router.credit_return_channels[p] = PipelinedChannel(cfg.credit_delay)
        router.credit_up_channels[p] = PipelinedChannel(cfg.credit_delay)
        router.downstream_router[p] = None
    return router


def put(router, p, v, packet, out_port):
    """Push a packet's flits directly into an input VC."""
    flits = packet.flits()
    flits[0].out_port = out_port
    for f in flits:
        f.vc = v
        router.in_vcs[p][v].push(f)
    return flits


class Sim:
    """Steps a standalone router and records departures per cycle."""

    def __init__(self, router):
        self.router = router
        self.cycle = 0
        self.departures = []  # (cycle_departed, output, flit)

    def step(self, n=1):
        for _ in range(n):
            self.router.receive(self.cycle)
            self.router.step(self.cycle)
            self.cycle += 1
            for o in range(self.router.radix):
                for flit in self.router.out_flit_channels[o].receive(self.cycle):
                    # The flit left the router's SA stage one cycle ago.
                    self.departures.append((self.cycle - 1, o, flit))

    def departed(self, flit):
        for cycle, o, f in self.departures:
            if f is flit:
                return cycle, o
        return None


class TestBasicSwitching:
    def test_single_flit_traverses(self):
        router = make_router()
        sim = Sim(router)
        pkt = Packet(0, 1, 1, 0)
        (flit,) = put(router, 0, 0, pkt, out_port=2)
        sim.step(2)
        cycle, out = sim.departed(flit)
        assert (cycle, out) == (0, 2)

    def test_flit_carries_assigned_vc(self):
        router = make_router()
        sim = Sim(router)
        pkt = Packet(0, 1, 1, 0)
        (flit,) = put(router, 0, 0, pkt, out_port=2)
        sim.step(2)
        assert flit.vc == 0  # lowest-numbered free output VC

    def test_credit_returned_upstream(self):
        router = make_router()
        sim = Sim(router)
        put(router, 0, 1, Packet(0, 1, 1, 0), out_port=2)
        sim.step(1)
        # Credit for VC 1 of input 0 arrives after credit_delay cycles.
        assert router.credit_up_channels[0].receive(2) == [1]

    def test_downstream_credit_consumed_and_restored(self):
        router = make_router()
        sim = Sim(router)
        depth = router.config.vc_buf_depth
        put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)
        sim.step(1)
        assert router.credits[2][0] == depth - 1
        router.credit_return_channels[2].send(0, sim.cycle)
        sim.step(3)  # credit_delay = 2 cycles
        assert router.credits[2][0] == depth

    def test_multi_flit_streams_one_per_cycle(self):
        router = make_router()
        sim = Sim(router)
        pkt = Packet(0, 1, 4, 0)
        flits = put(router, 0, 0, pkt, out_port=1)
        sim.step(6)
        cycles = [sim.departed(f)[0] for f in flits]
        assert cycles == [0, 1, 2, 3]

    def test_no_credit_blocks_flit(self):
        router = make_router()
        sim = Sim(router)
        for v in range(router.config.num_vcs):
            router.credits[2][v] = 0
        pkt = Packet(0, 1, 1, 0)
        (flit,) = put(router, 0, 0, pkt, out_port=2)
        sim.step(3)
        assert sim.departed(flit) is None
        # Restore a credit: the flit goes.
        router.credit_return_channels[2].send(0, sim.cycle - 1)
        sim.step(2)
        assert sim.departed(flit) is not None

    def test_two_inputs_same_output_serialize(self):
        router = make_router()
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(3)
        ca, _ = sim.departed(a)
        cb, _ = sim.departed(b)
        assert {ca, cb} == {0, 1}

    def test_disjoint_outputs_parallel(self):
        router = make_router()
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=1)[0]
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(2)
        assert sim.departed(a)[0] == 0
        assert sim.departed(b)[0] == 0


class TestIncrementalAllocation:
    def test_connection_blocks_competing_input(self):
        """A held connection keeps other inputs off the output [20]."""
        router = make_router()
        sim = Sim(router)
        long_pkt = put(router, 0, 0, Packet(0, 1, 4, 0), out_port=2)
        short = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(6)
        # The long packet streams contiguously; the short one waits.
        assert [sim.departed(f)[0] for f in long_pkt] == [0, 1, 2, 3]
        assert sim.departed(short)[0] == 4

    def test_connection_released_when_input_vc_empties(self):
        """Body flits arriving late release and re-acquire the switch."""
        router = make_router()
        sim = Sim(router)
        pkt = Packet(0, 1, 3, 0)
        flits = pkt.flits()
        flits[0].out_port = 2
        for f in flits:
            f.vc = 0
        router.in_vcs[0][0].push(flits[0])
        sim.step(2)  # head departs at cycle 0; VC now empty -> release
        assert sim.departed(flits[0])[0] == 0
        assert router.conn_in[0] is None
        # Another input can now take output 2.
        other = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        # Deliver the straggler body+tail; the parked packet re-bids SA.
        router.in_vcs[0][0].push(flits[1])
        router.in_vcs[0][0].push(flits[2])
        sim.step(4)
        assert sim.departed(other) is not None
        assert sim.departed(flits[2]) is not None
        # The parked packet kept its original output VC assignment.
        assert flits[2].vc == flits[0].vc

    def test_out_vc_busy_until_tail(self):
        router = make_router()
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 3, 0), out_port=2)
        sim.step(1)
        assert router.out_vc_busy[2][0]
        sim.step(2)  # tail departs at cycle 2
        assert not router.out_vc_busy[2][0]

    def test_second_packet_gets_next_output_vc(self):
        """While VC0 is held, a packet from another input gets VC1."""
        router = make_router()
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 8, 0), out_port=2)
        sim.step(1)  # connection held, out VC0 busy
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=1)[0]
        sim.step(1)
        assert b.vc == 0  # different output: VC0 free there
        put(router, 1, 1, Packet(2, 1, 1, 0), out_port=2)
        sim.step(8)
        # Output 2's VC0 was busy when the competing packet was granted.
        assert router.chain_stats.total_chains == 0


class TestPacketChaining:
    def test_same_vc_chain_no_bubble(self):
        """Fig 4: the chained head traverses right behind the tail."""
        router = make_router(chaining=ChainingScheme.SAME_VC)
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        b = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
        sim.step(4)
        assert [sim.departed(f)[0] for f in a] == [0, 1]
        assert sim.departed(b)[0] == 2  # no idle cycle on output 2
        assert router.chain_stats.same_input_same_vc == 1

    def test_chain_uses_fresh_output_vc(self):
        router = make_router(chaining=ChainingScheme.SAME_VC)
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        b = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
        sim.step(4)
        assert b.vc is not None

    def test_single_flit_back_to_back_chain(self):
        """Single-flit packets chain via the speculative sa_tail path."""
        router = make_router(chaining=ChainingScheme.SAME_VC)
        sim = Sim(router)
        pkts = [put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0] for _ in range(4)]
        sim.step(6)
        cycles = [sim.departed(f)[0] for f in pkts]
        assert cycles == [0, 1, 2, 3]
        assert router.chain_stats.total_chains >= 3

    def test_any_input_chain_from_other_input(self):
        router = make_router(chaining=ChainingScheme.ANY_INPUT)
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(4)
        assert [sim.departed(f)[0] for f in a] == [0, 1]
        assert sim.departed(b)[0] == 2
        assert router.chain_stats.other_input == 1

    def test_same_input_scheme_rejects_other_input(self):
        """SAME_INPUT must not chain a packet from a different input."""
        router = make_router(chaining=ChainingScheme.SAME_INPUT)
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(5)
        assert router.chain_stats.other_input == 0
        # b still gets through via normal switch allocation afterwards.
        assert sim.departed(b) is not None

    def test_same_input_other_vc_chain(self):
        router = make_router(chaining=ChainingScheme.SAME_INPUT)
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        b = put(router, 0, 1, Packet(0, 1, 1, 0), out_port=2)[0]
        sim.step(4)
        assert sim.departed(b)[0] == 2
        assert router.chain_stats.same_input_other_vc == 1

    def test_chained_packet_skips_sa_blocks_competitor(self):
        """The chain holds the output; a third packet must wait."""
        router = make_router(chaining=ChainingScheme.ANY_INPUT)
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        chained = put(router, 1, 0, Packet(2, 1, 2, 0), out_port=2)
        loser = put(router, 2, 0, Packet(3, 1, 1, 0), out_port=2)[0]
        sim.step(7)
        assert sim.departed(chained[0])[0] == 2
        assert sim.departed(chained[1])[0] == 3
        assert sim.departed(loser)[0] == 4

    def test_no_chain_without_credits(self):
        """Eligibility (c): at least one credit for the output VC."""
        router = make_router(chaining=ChainingScheme.ANY_INPUT)
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        # Only one credit total on output 2: the first packet eats it
        # mid-flight and the chain attempt must fail.
        for v in range(router.config.num_vcs):
            router.credits[2][v] = 0
        router.credits[2][0] = 1
        sim.step(3)
        assert sim.departed(a[0])[0] == 0
        assert sim.departed(a[1]) is None  # blocked: no credit
        assert router.chain_stats.total_chains == 0
        assert sim.departed(b) is None

    def test_partially_transmitted_packet_chains_on_own_vc(self):
        """Section 2.2: a parked packet may chain using its assigned VC."""
        router = make_router(chaining=ChainingScheme.ANY_INPUT)
        sim = Sim(router)
        # Parked packet: head departed, then connection lost to credit
        # drought while a competitor took over the output.
        pkt = Packet(0, 1, 3, 0)
        flits = pkt.flits()
        flits[0].out_port = 2
        for f in flits:
            f.vc = 0
        router.in_vcs[0][0].push(flits[0])
        sim.step(2)  # head departs; connection released (VC empty)
        router.in_vcs[0][0].push(flits[1])
        router.in_vcs[0][0].push(flits[2])
        # Competitor takes output 2 now.
        comp = put(router, 1, 0, Packet(2, 1, 2, 0), out_port=2)
        sim.step(1)
        assert router.conn_out[2] is not None
        sim.step(6)
        # The parked packet eventually finished on its original VC.
        assert sim.departed(flits[2]) is not None
        assert flits[2].vc == flits[0].vc

    def test_conflict_same_input_drops_pc_grant(self):
        """If SA grants an input, the PC grant for it is disregarded."""
        router = make_router(radix=4, chaining=ChainingScheme.ANY_INPUT)
        sim = Sim(router)
        # Input 0 streams a 2-flit packet to output 2 (tail at cycle 1).
        put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        # Input 1, VC0 wants output 2 (chain candidate at cycle 1);
        # input 1, VC1 wants output 3 (switch allocation candidate).
        chain_cand = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sa_cand = put(router, 1, 1, Packet(2, 1, 1, 0), out_port=3)[0]
        sim.step(6)
        # Both eventually depart; the test asserts the conflict path ran.
        assert sim.departed(chain_cand) is not None
        assert sim.departed(sa_cand) is not None


class TestStarvationControl:
    def test_threshold_releases_connection(self):
        router = make_router(
            chaining=ChainingScheme.SAME_VC, starvation_threshold=4
        )
        sim = Sim(router)
        # An endless supply of chained single-flit packets on input 0...
        pkts = [put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0] for _ in range(8)]
        # ...starving a packet on input 1.
        starved = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(12)
        c = sim.departed(starved)[0]
        assert c <= 6  # released by the threshold, not after all 8

    def test_no_starvation_control_starves(self):
        router = make_router(chaining=ChainingScheme.SAME_VC)
        sim = Sim(router)
        pkts = [put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0] for _ in range(8)]
        starved = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(12)
        assert sim.departed(starved)[0] >= 8  # waits for the whole chain

    def test_threshold_interrupts_long_packet(self):
        """A threshold below the packet length parks the packet (4.7)."""
        router = make_router(
            chaining=ChainingScheme.SAME_VC, starvation_threshold=4
        )
        sim = Sim(router)
        flits = put(router, 0, 0, Packet(0, 1, 8, 0), out_port=2)
        sim.step(14)
        cycles = [sim.departed(f)[0] for f in flits]
        # The packet is forced to re-arbitrate at least once: the flit
        # departures are NOT all contiguous.
        gaps = [b - a for a, b in zip(cycles, cycles[1:])]
        assert any(g > 1 for g in gaps)
        assert sim.departed(flits[-1]) is not None

    def test_age_mode_preempts(self):
        router = make_router(
            chaining=ChainingScheme.SAME_VC, age_period=4
        )
        sim = Sim(router)
        pkts = [put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0] for _ in range(8)]
        starved = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(12)
        assert sim.departed(starved)[0] < 8


class TestCombinedAllocatorVCAssignment:
    def test_lowest_numbered_vc_first(self):
        """Section 4.6: VCs assigned in order from the lowest-numbered."""
        router = make_router()
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
        sim.step(2)
        assert a.vc == 0

    def test_class_partitioning(self):
        """UGAL's class-1 packets may only use the class-1 VC range."""
        router = make_router(topology="fbfly", routing="ugal", radix=10)
        sim = Sim(router)
        pkt = Packet(0, 1, 1, 0, vc_class=1)
        (flit,) = put(router, 0, 2, pkt, out_port=5)
        flit.vc_class = 1
        sim.step(2)
        assert flit.vc in router.config.vc_class_range(1)
