"""Credit-flow edge cases.

These pin down corners of the credit protocol the integration tests
only exercise incidentally: injection stalls at zero remaining credit,
full credit return once the network drains, and ``in_flight_flits()``
accounting when fault injection kills a packet mid-route.
"""

from repro.faults import FaultController, FaultPlan, InvariantChecker
from repro.faults.plan import FlitErrors, LinkFault
from repro.network.config import mesh_config
from repro.network.flit import Packet
from repro.network.network import Network
from repro.topology.mesh import PORT_XPLUS


def drain(net, max_cycles=4000):
    for _ in range(max_cycles):
        if net.in_flight_flits() == 0 and net.backlog() == 0:
            return net.cycle
        net.step()
    raise AssertionError("network did not drain")


class TestZeroCreditStall:
    def test_source_stalls_without_credits_and_resumes(self):
        net = Network(mesh_config(mesh_k=4))
        source = net.sources[0]
        saved = list(source.credits)
        source.credits = [0] * len(saved)
        net.inject(Packet(0, 3, 4, net.cycle))
        for _ in range(20):
            net.step()
        # No credit on any VC: the packet never starts injecting.
        assert source.flits_sent == 0
        assert source.backlog == 1
        assert net.in_flight_flits() == 0
        source.credits = saved  # credits come back; injection resumes
        drain(net)
        assert source.flits_sent == 4
        assert net.sinks[3].flits_consumed == 4

    def test_exhausted_credits_pause_mid_packet(self):
        # Depth-2 buffers with an 8-flit packet: the source must stall
        # mid-packet every time the downstream VC fills, and the flow
        # only advances as credits return.
        net = Network(mesh_config(mesh_k=4, vc_buf_depth=2))
        source = net.sources[0]
        net.inject(Packet(0, 3, 8, net.cycle))
        stalled = 0
        for _ in range(200):
            before = source.flits_sent
            net.step()
            if source.backlog and source.flits_sent == before:
                stalled += 1
            if net.in_flight_flits() == 0 and net.backlog() == 0:
                break
        assert stalled > 0  # the credit loop actually throttled the source
        assert source.flits_sent == 8
        assert net.sinks[3].flits_consumed == 8


class TestCreditReturnAfterDrain:
    def test_all_credits_restored_everywhere(self):
        net = Network(mesh_config(mesh_k=4))
        depth = net.config.vc_buf_depth
        for src, dest in [(0, 15), (5, 10), (12, 3), (7, 7)]:
            net.inject(Packet(src, dest, 4, net.cycle))
        drain(net)
        # A few idle cycles so in-flight credit messages land.
        for _ in range(5):
            net.step()
        for router in net.routers:
            for port_credits in router.credits:
                assert all(c == depth for c in port_credits)
        for source in net.sources:
            assert all(c == depth for c in source.credits)

    def test_invariant_sweep_clean_after_drain(self):
        net = Network(mesh_config(mesh_k=4))
        checker = net.attach_invariants(InvariantChecker(period=8))
        for src, dest in [(0, 15), (15, 0), (3, 12)]:
            net.inject(Packet(src, dest, 4, net.cycle))
        drain(net)
        assert checker.check(net.cycle) == []


class TestInFlightAccountingUnderDrops:
    def test_packet_dropped_at_first_hop(self):
        # drop=1.0 kills the head flit on arrival; the source must
        # cancel the rest of the packet without charging the network.
        net = Network(mesh_config(mesh_k=4))
        controller = net.attach_faults(FaultController(FaultPlan(
            flit_errors=FlitErrors(drop=1.0)
        )))
        net.inject(Packet(0, 3, 4, net.cycle))
        for _ in range(50):
            net.step()
        assert net.in_flight_flits() == 0
        assert net.backlog() == 0
        assert controller.killed_packets == 1
        # Only the head flit entered the network and was dropped; the
        # three body flits never left the source and were never charged.
        source = net.sources[0]
        assert source.flits_sent == 1
        assert controller.dropped_flits == 1
        assert net.sinks[3].flits_consumed == 0

    def test_mid_route_kill_balances_exactly(self):
        # A link dies while a long packet is crossing the network: the
        # stranded flits are purged with credits returned, and sent ==
        # consumed + dropped with nothing left in flight.
        net = Network(mesh_config(mesh_k=4))
        controller = net.attach_faults(FaultController(FaultPlan(
            links=[LinkFault(1, PORT_XPLUS, 8)]
        )))
        checker = net.attach_invariants(InvariantChecker(period=4))
        net.inject(Packet(0, 2, 8, net.cycle))  # east along row 0
        for _ in range(200):
            net.step()
            if net.in_flight_flits() == 0 and net.backlog() == 0:
                break
        assert net.in_flight_flits() == 0
        sent = sum(s.flits_sent for s in net.sources)
        consumed = sum(k.flits_consumed for k in net.sinks)
        assert sent == consumed + controller.dropped_flits
        assert checker.check(net.cycle) == []
