"""Fast-core equivalence: the bit-identical correctness bar.

The structure-of-arrays core (``backend="fast"``) must be
indistinguishable from the reference core on everything a run can
export: bit-identical SimResult JSON, bit-identical metrics export, an
identical trace-event stream, and checkpoints that round-trip across
backends in both directions. Anything less and the fast core is a
different simulator, not a faster one.
"""

import dataclasses
import json

import pytest

from repro.checkpoint import SimulationKilled, load_checkpoint
from repro.network import flit as flitmod
from repro.network.config import mesh_config
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import MemorySink, TraceBus
from repro.sim.runner import run_simulation


RUN = dict(pattern="uniform", rate=0.3, warmup=100, measure=300, drain=200)

SEEDS = [1, 2, 3]

#: allocator x chaining grid from the issue: both allocators, chaining
#: on and off (the chained configs exercise the PC pipeline end to end).
CONFIGS = {
    "islip1": dict(allocator="islip1", chaining="disabled"),
    "islip1+chain": dict(allocator="islip1", chaining="any_input"),
    "wavefront": dict(allocator="wavefront", chaining="disabled"),
    "wavefront+chain": dict(allocator="wavefront", chaining="any_input"),
}


def _traced_run(config, **kw):
    """(result JSON, metrics JSON, trace events) for one run."""
    flitmod.set_next_packet_id(0)
    bus = TraceBus()
    sink = bus.attach(MemorySink())
    registry = MetricsRegistry()
    result = run_simulation(config, trace=bus, metrics=registry, **kw)
    return (
        json.dumps(result.to_dict(), sort_keys=True),
        json.dumps(registry.to_dict(), sort_keys=True),
        sink.events,
    )


def _both_backends(config, **kw):
    ref = _traced_run(dataclasses.replace(config, backend="reference"), **kw)
    fast = _traced_run(dataclasses.replace(config, backend="fast"), **kw)
    return ref, fast


@pytest.mark.parametrize("label", list(CONFIGS))
@pytest.mark.parametrize("seed", SEEDS)
def test_fast_backend_is_bit_identical(label, seed):
    config = mesh_config(mesh_k=4, seed=seed, **CONFIGS[label])
    ref, fast = _both_backends(config, **RUN)
    assert fast[0] == ref[0]  # SimResult JSON
    assert fast[1] == ref[1]  # metrics export
    assert fast[2] == ref[2]  # full trace-event stream
    assert fast[2]  # the comparison is not vacuous


def test_fast_backend_matches_on_larger_mesh():
    """mesh_k=8 shakes out radix/topology assumptions the 4x4 hides."""
    config = mesh_config(mesh_k=8, seed=2, chaining="any_input")
    ref, fast = _both_backends(config, **RUN)
    assert fast == ref


def test_fast_backend_matches_with_starvation_threshold():
    """THRESHOLD starvation control takes the non-default chain gates."""
    config = mesh_config(
        mesh_k=4, seed=1, chaining="any_input", starvation_threshold=8
    )
    ref, fast = _both_backends(config, **RUN)
    assert fast == ref


@pytest.mark.parametrize("first,second", [
    ("reference", "fast"),
    ("fast", "reference"),
])
def test_checkpoint_round_trips_across_backends(tmp_path, first, second):
    """A checkpoint taken under one backend restores under the other.

    The config hash excludes the backend (it is an execution detail,
    not an experiment parameter), so flipping it in the payload must
    restore cleanly and converge on the uninterrupted run's answer.
    """
    config = mesh_config(mesh_k=4, seed=5, chaining="any_input")
    ref, _ = _both_backends(config, **RUN)

    ck = str(tmp_path / "ck.json")
    flitmod.set_next_packet_id(0)
    with pytest.raises(SimulationKilled):
        run_simulation(
            dataclasses.replace(config, backend=first),
            checkpoint_path=ck, checkpoint_every=100, kill_at=250, **RUN,
        )
    payload = load_checkpoint(ck)
    assert payload["config"]["backend"] == first
    payload = dict(payload, config=dict(payload["config"], backend=second))

    flitmod.set_next_packet_id(0)
    bus = TraceBus()
    sink = bus.attach(MemorySink())
    registry = MetricsRegistry()
    result = run_simulation(
        dataclasses.replace(config, backend=second),
        trace=bus, metrics=registry, resume_from=payload, **RUN,
    )
    assert json.dumps(result.to_dict(), sort_keys=True) == ref[0]
    assert json.dumps(registry.to_dict(), sort_keys=True) == ref[1]
    ck_cycle = payload["cycle"]
    assert sink.events == [e for e in ref[2] if e["cycle"] >= ck_cycle]
    assert sink.events


def test_state_snapshot_round_trips_between_network_classes():
    """network.snapshot() from one backend restores into the other."""
    from repro.checkpoint import RestoreContext, SnapshotContext
    from repro.network.network import build_network
    from repro.sim.runner import run_simulation as _run  # noqa: F401

    config = mesh_config(mesh_k=4, seed=3, chaining="any_input")

    # Drive a fast network for a while, snapshot it.
    flitmod.set_next_packet_id(0)
    _traced_run(dataclasses.replace(config, backend="fast"), **RUN)
    # A fresh pair of networks: snapshot an idle reference network into
    # a fast one and back; layouts must be interchangeable.
    ref_net = build_network(dataclasses.replace(config, backend="reference"))
    fast_net = build_network(dataclasses.replace(config, backend="fast"))
    ctx = SnapshotContext()
    state = ref_net.snapshot(ctx)
    fast_net.restore(state, RestoreContext(ctx.packets))
    ctx2 = SnapshotContext()
    state2 = fast_net.snapshot(ctx2)
    ref_net.restore(state2, RestoreContext(ctx2.packets))
    assert json.dumps(state, sort_keys=True) == \
        json.dumps(state2, sort_keys=True)
