"""Advanced router and network behavior tests: starvation-control
edge cases, chain-eligibility rules, and end-to-end timing checks."""

import random

import pytest

from repro.core.chaining import ChainingScheme
from repro.network.config import fbfly_config, mesh_config
from repro.network.flit import Packet
from repro.network.network import Network
from repro.sim.runner import run_simulation

from tests.test_router import Sim, make_router, put


class TestStarvationEdgeCases:
    def test_forced_release_inhibits_chaining_that_cycle(self):
        """'Release ... and inhibit packet chaining for the affected
        input and output' (Section 2.5)."""
        router = make_router(chaining=ChainingScheme.SAME_VC,
                             starvation_threshold=2)
        sim = Sim(router)
        # Three chained single-flit packets: the third would chain at
        # age 2, exactly when the threshold releases the connection.
        pkts = [put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
                for _ in range(3)]
        competitor = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(8)
        # All depart eventually, but the competitor is served before the
        # full chain would have finished.
        assert sim.departed(competitor)[0] < sim.departed(pkts[2])[0] + 3

    def test_length_aware_chain_refusal(self):
        """A packet longer than the remaining threshold budget must not
        chain (it would be cut mid-transfer, Section 4.7)."""
        router = make_router(chaining=ChainingScheme.SAME_VC,
                             starvation_threshold=4)
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        long_pkt = put(router, 0, 0, Packet(0, 1, 4, 0), out_port=2)
        sim.step(10)
        # The 4-flit packet could not chain (age 2 + 4 > 4): it went
        # through switch allocation instead and still departed whole.
        assert router.chain_stats.total_chains == 0
        cycles = [sim.departed(f)[0] for f in long_pkt]
        assert cycles == sorted(cycles)

    def test_age_mode_preemption_is_bounded(self):
        """Age-based priorities preempt a hogging connection."""
        router = make_router(chaining=ChainingScheme.SAME_VC, age_period=3)
        sim = Sim(router)
        for _ in range(6):
            put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)
        starved = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(10)
        assert sim.departed(starved)[0] <= 6


class TestChainEligibilityRules:
    def test_no_chaining_when_output_vcs_busy(self):
        """Eligibility (b): a free output VC must exist."""
        router = make_router(chaining=ChainingScheme.ANY_INPUT, num_vcs=2)
        sim = Sim(router)
        # Two long packets occupy both output VCs of port 2.
        put(router, 0, 0, Packet(0, 1, 6, 0), out_port=2)
        sim.step(1)
        put(router, 1, 0, Packet(2, 1, 6, 0), out_port=2)
        # A 1-flit candidate from input 2 cannot chain onto packet A's
        # tail if both output VCs are still held.
        cand = put(router, 2, 0, Packet(3, 1, 1, 0), out_port=2)[0]
        sim.step(20)
        assert sim.departed(cand) is not None  # eventually via SA

    def test_chain_across_back_to_back_multiflit_packets(self):
        """Multi-flit packets chain at their boundaries too."""
        router = make_router(chaining=ChainingScheme.ANY_INPUT)
        sim = Sim(router)
        # The standalone harness has no downstream to return credits;
        # give the output ample credits so flow control never stalls.
        router.credits[2] = [32] * router.config.num_vcs
        a = put(router, 0, 0, Packet(0, 1, 3, 0), out_port=2)
        b = put(router, 1, 0, Packet(2, 1, 3, 0), out_port=2)
        c = put(router, 2, 0, Packet(3, 1, 3, 0), out_port=2)
        sim.step(16)
        # Output 2 is busy for 9 consecutive cycles: no idle bubbles
        # between the three packets.
        cycles = sorted(sim.departed(f)[0] for f in a + b + c)
        assert cycles == list(range(cycles[0], cycles[0] + 9))
        assert router.chain_stats.total_chains >= 2

    def test_disabled_chaining_leaves_bubbles(self):
        """The same scenario without chaining pays re-allocation cycles.

        (With incremental allocation the bubble can be small, but the
        chained version must be at least as tight.)
        """
        router = make_router()
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 3, 0), out_port=2)
        b = put(router, 1, 0, Packet(2, 1, 3, 0), out_port=2)
        sim.step(12)
        span = sim.departed(b[2])[0] - sim.departed(a[0])[0] + 1
        assert span >= 6


class TestEndToEndTiming:
    def test_mesh_zero_load_latency(self):
        """1 hop = SA + ST + channel: latency is ~3 cycles/hop + overheads."""
        net = Network(mesh_config(mesh_k=4))
        packet = Packet(0, 1, 1, 0)  # neighbors: 1 hop
        done = {}

        class Probe:
            def record_flit_ejected(self, flit, cycle):
                done[flit.packet.pid] = cycle

            def record_ejected(self, packet, cycle):
                pass

        for sink in net.sinks:
            sink.stats = Probe()
        net.inject(packet)
        for _ in range(30):
            net.step()
        # injection channel (1) + SA + ST + link (1) + SA + ST+ej:
        # small and deterministic at zero load.
        latency = done[packet.pid]
        assert 4 <= latency <= 10

    def test_fbfly_long_channel_latency(self):
        """Distance-3 FBFly hops pay the 6-cycle long channel."""
        net = Network(fbfly_config())
        # Terminals 0 (router 0 = (0,0)) and 15 (router 3 = (3,0)):
        # one row hop of distance 3.
        done = {}

        class Probe:
            def record_flit_ejected(self, flit, cycle):
                done[flit.packet.pid] = cycle

            def record_ejected(self, packet, cycle):
                pass

        for sink in net.sinks:
            sink.stats = Probe()
        short = Packet(0, 1, 1, 0)  # same router: no network hop
        longp = Packet(0, 12, 1, 0)  # router 0 -> router 3
        net.inject(short)
        net.inject(longp)
        for _ in range(40):
            net.step()
        assert done[longp.pid] - done[short.pid] >= 6

    def test_ugal_diverts_under_congestion_end_to_end(self):
        """Some packets take nonminimal routes once queues build."""
        result = run_simulation(
            fbfly_config(), pattern="tornado", rate=0.9, packet_length=1,
            warmup=200, measure=400, drain=0,
        )
        assert result.avg_throughput > 0.2  # adaptivity keeps it moving

    def test_hotspot_pattern_end_to_end(self):
        result = run_simulation(
            mesh_config(chaining="any_input"), pattern="hotspot", rate=0.3,
            packet_length=1, warmup=200, measure=400, drain=0,
        )
        # The hotspots cap accepted throughput well below offered.
        assert 0.05 < result.avg_throughput < 0.3


class TestFigure2WorkedExample:
    """The paper's motivating example (Figures 1-3): a 6x6 router whose
    four VCs per input each hold one single-flit packet. Over three
    cycles, iSLIP-1 without chaining leaves outputs idle that chaining
    fills (13 vs 10 packets transmitted in the paper's instance).

    The figure's exact packet labels aren't in the text, so we build a
    similar instance (output 2 unrequested, heavy contention on the
    rest) and assert the qualitative outcome: chaining transmits at
    least as many packets every cycle and strictly more in total.
    """

    #: outputs requested by packets in (input, vc); output 2 unused.
    REQUESTS = [
        [0, 1, 3, 4],
        [0, 0, 1, 5],
        [1, 3, 4, 5],
        [0, 1, 4, 5],
        [4, 3, 5, 0],
        [5, 4, 0, 1],
    ]

    def _run(self, chaining, cycles=10, per_vc=3):
        router = make_router(radix=6, chaining=chaining)
        # Ample downstream credits (the figure's router is the
        # bottleneck, not its neighbors).
        router.credits = [[64] * 4 for _ in range(6)]
        sim = Sim(router)
        for p, outs in enumerate(self.REQUESTS):
            for v, o in enumerate(outs):
                for _ in range(per_vc):
                    put(router, p, v, Packet(0, 1, 1, 0), out_port=o)
        sim.step(cycles)
        return sim

    def test_chaining_transmits_more_packets(self):
        """The paper's instance: 13 vs 10 packets over the window."""
        base = len(self._run(ChainingScheme.DISABLED).departures)
        chained = len(self._run(ChainingScheme.SAME_INPUT).departures)
        assert chained > base
        # Roughly the figure's 30% improvement (13/10).
        assert chained >= 1.15 * base

    def test_at_most_one_packet_per_output_per_cycle(self):
        sim = self._run(ChainingScheme.ANY_INPUT)
        seen = set()
        for cycle, o, _ in sim.departures:
            assert (cycle, o) not in seen
            seen.add((cycle, o))

    def test_unrequested_output_stays_idle(self):
        sim = self._run(ChainingScheme.ANY_INPUT)
        assert all(o != 2 for _, o, _ in sim.departures)


class TestRouterIntrospection:
    def test_occupancy_tracks_credit_deficit(self):
        router = make_router()
        sim = Sim(router)
        assert router.occupancy(2) == 0
        put(router, 0, 0, Packet(0, 1, 4, 0), out_port=2)
        sim.step(2)
        assert router.occupancy(2) == 2  # two flits sent, no credits back

    def test_total_buffered_flits(self):
        router = make_router()
        put(router, 0, 0, Packet(0, 1, 4, 0), out_port=2)
        put(router, 1, 1, Packet(2, 1, 2, 0), out_port=1)
        assert router.total_buffered_flits() == 6
