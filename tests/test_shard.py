"""Tests for the sharded simulation runtime (repro.parallel).

Unit tests cover the row-band partition plan, the window schedule and
the merge rules; the equivalence matrix then asserts the headline
guarantee — a sharded run is bit-identical to a single-process run
(same SimResult and same digest Merkle root) across topologies,
allocators, seeds and shard counts. Crash/restart variants live in
``test_shard_chaos.py``.
"""

import pytest

from repro.network.config import NetworkConfig
from repro.parallel import (
    ShardPlan,
    ShardPlanError,
    shard_run,
    single_process_run,
)
from repro.parallel.merge import (
    MergeError,
    merge_packet_tables,
    merge_stats_states,
)
from repro.parallel.worker import window_schedule

#: Tiny-but-real phases: a 4x4 mesh clears this in a couple of seconds.
SMALL = dict(warmup=20, measure=60, drain=400)


def config_for(mesh_k=4, allocator="islip1", topology="mesh", seed=1,
               chaining="disabled", routing="dor"):
    return NetworkConfig(topology=topology, mesh_k=mesh_k, routing=routing,
                         allocator=allocator, pc_allocator="islip1",
                         chaining=chaining, seed=seed)


def assert_matches_single(tmp_path, config, seed, shards, *, rate=0.25,
                          chaos=None, drain=None, window=None, **overrides):
    knobs = dict(SMALL, **overrides)
    if drain is not None:
        knobs["drain"] = drain
    expected, expected_root = single_process_run(
        config, pattern="uniform", rate=rate, seed=seed, **knobs)
    run = shard_run(config, pattern="uniform", rate=rate, seed=seed,
                    shards=shards, out_dir=str(tmp_path / "state"),
                    chaos=chaos, window=window, **knobs)
    assert run.status == "done"
    assert run.result == expected
    assert run.digest_root == expected_root
    return run


class TestShardPlan:
    def test_row_bands_partition_all_routers(self):
        plan = ShardPlan(config_for(mesh_k=8), 4)
        seen = set()
        for shard in range(4):
            routers = set(plan.routers_of(shard))
            assert len(routers) == 16  # 2 full rows of 8
            assert not seen & routers
            seen |= routers
            for r in routers:
                assert plan.shard_of_router(r) == shard
        assert seen == set(range(64))

    def test_uneven_rows_go_to_leading_shards(self):
        plan = ShardPlan(config_for(mesh_k=5), 2)
        assert len(plan.routers_of(0)) == 15  # 3 rows
        assert len(plan.routers_of(1)) == 10  # 2 rows

    def test_terminals_follow_their_router(self):
        plan = ShardPlan(config_for(mesh_k=4), 2)
        for shard in range(2):
            for t in plan.terminals_of(shard):
                assert plan.shard_of_terminal(t) == shard

    def test_mesh_lookahead_is_min_boundary_latency(self):
        plan = ShardPlan(config_for(mesh_k=4), 2)
        assert plan.lookahead == 2
        assert plan.window_for(None) == 2
        assert plan.window_for(1) == 1
        with pytest.raises(ShardPlanError):
            plan.window_for(3)  # beyond the conservative bound

    def test_single_shard_has_no_boundaries(self):
        plan = ShardPlan(config_for(mesh_k=4), 1)
        assert plan.exports_of(0) == []
        assert plan.imports_of(0) == []
        assert plan.lookahead is None
        assert plan.window_for(None) == 64  # free-running default

    def test_export_import_symmetry(self):
        plan = ShardPlan(config_for(mesh_k=8, topology="torus"), 4)
        for shard in range(4):
            exported = {spec["key"] for spec in plan.exports_of(shard)}
            imported_elsewhere = {
                spec["key"]
                for other in range(4)
                for spec in plan.imports_of(other)
                if spec["writer"] == shard
            }
            assert exported == imported_elsewhere
            for spec in plan.exports_of(shard):
                assert spec["writer"] == shard
                assert spec["reader"] != shard

    def test_rejects_unsupported_shapes(self):
        with pytest.raises(ShardPlanError):
            ShardPlan(config_for(mesh_k=4), 5)  # more shards than rows
        with pytest.raises(ShardPlanError):
            ShardPlan(config_for(mesh_k=4), 0)
        with pytest.raises(ShardPlanError):
            ShardPlan(config_for(mesh_k=4, routing="ugal"), 2)
        with pytest.raises(ShardPlanError):
            fbfly = NetworkConfig(topology="fbfly", mesh_k=8,
                                  routing="ugal", allocator="islip1",
                                  pc_allocator="islip1", chaining="disabled")
            ShardPlan(fbfly, 2)


class TestWindowSchedule:
    def test_region_edge_is_a_window_boundary(self):
        assert window_schedule(5, 4, 2) == [
            (0, 2), (2, 4), (4, 5), (5, 7), (7, 9)]

    def test_no_drain(self):
        assert window_schedule(4, 0, 2) == [(0, 2), (2, 4)]

    def test_empty(self):
        assert window_schedule(0, 0, 2) == []

    def test_spans_tile_exactly(self):
        spans = window_schedule(7, 5, 3)
        assert spans[0][0] == 0 and spans[-1][1] == 12
        for (_, b), (a, _) in zip(spans, spans[1:]):
            assert b == a
        assert (7, 10) in spans  # drain region starts on its own window


class TestMergeRules:
    def test_live_flit_beats_ejected_record(self):
        live = {"network": {"buf": [{"pid": 7, "idx": 2, "vc": 0}]},
                "packets": {"7": {"time_ejected": None, "origin": "live"}}}
        done = {"network": {},
                "packets": {"7": {"time_ejected": 9, "origin": "ejected"}}}
        for payloads in ([live, done], [done, live]):
            merged = merge_packet_tables(payloads)
            assert merged["7"]["origin"] == "live"

    def test_lowest_live_flit_index_wins(self):
        head = {"network": {"buf": [{"pid": 3, "idx": 5, "vc": 1}]},
                "packets": {"3": {"time_ejected": None, "origin": "tail"}}}
        body = {"network": {"q": {"x": [{"pid": 3, "idx": 1, "vc": 0}]}},
                "packets": {"3": {"time_ejected": None, "origin": "head"}}}
        merged = merge_packet_tables([head, body])
        assert merged["3"]["origin"] == "head"

    def test_ejected_beats_stale_source_copy(self):
        stale = {"network": {},
                 "packets": {"4": {"time_ejected": None, "origin": "stale"}}}
        done = {"network": {},
                "packets": {"4": {"time_ejected": 6, "origin": "sink"}}}
        merged = merge_packet_tables([stale, done])
        assert merged["4"]["origin"] == "sink"

    def _stats_state(self, keys, pl, counts):
        return {
            "window": [0, 100],
            "flits_ejected_per_source": counts,
            "flits_injected_per_source": counts,
            "packets_created_per_source": counts,
            "max_packet_latency": max(pl, default=0),
            "packets_ejected": len(pl),
            "flits_ejected": len(pl),
            "packet_latencies": pl,
            "network_latencies": [v - 1 for v in pl],
            "blocked_cycles": [0] * len(pl),
            "eject_keys": keys,
        }

    def test_stats_merge_restores_global_sink_order(self):
        a = self._stats_state([[5, 0], [9, 2]], [50, 90], [1, 0])
        b = self._stats_state([[7, 1]], [70], [0, 1])
        merged = merge_stats_states([a, b])
        assert merged["packet_latencies"] == [50, 70, 90]
        assert merged["network_latencies"] == [49, 69, 89]
        assert merged["flits_ejected_per_source"] == [1, 1]
        assert merged["packets_ejected"] == 3
        assert merged["max_packet_latency"] == 90
        assert "eject_keys" not in merged  # consumed, not forwarded

    def test_stats_merge_rejects_misaligned_samples(self):
        bad = self._stats_state([[5, 0]], [50], [1, 0])
        bad["eject_keys"] = []
        with pytest.raises(MergeError):
            merge_stats_states([bad])

    def test_stats_merge_rejects_window_disagreement(self):
        a = self._stats_state([], [], [0, 0])
        b = self._stats_state([], [], [0, 0])
        b["window"] = [0, 200]
        with pytest.raises(MergeError):
            merge_stats_states([a, b])


class TestEquivalence:
    """Sharded == single-process, bit for bit."""

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("allocator", ["islip1", "wavefront"])
    def test_mesh4_two_shards(self, tmp_path, allocator, seed):
        assert_matches_single(
            tmp_path, config_for(mesh_k=4, allocator=allocator),
            seed=seed, shards=2)

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("allocator", ["islip1", "wavefront"])
    def test_mesh8_two_shards(self, tmp_path, allocator, seed):
        assert_matches_single(
            tmp_path, config_for(mesh_k=8, allocator=allocator),
            seed=seed, shards=2)

    def test_mesh8_four_shards(self, tmp_path):
        run = assert_matches_single(
            tmp_path, config_for(mesh_k=8), seed=1, shards=4)
        assert run.shards == 4
        assert run.restarts == 0

    def test_torus4_two_shards(self, tmp_path):
        assert_matches_single(
            tmp_path, config_for(mesh_k=4, topology="torus"),
            seed=1, shards=2)

    def test_chaining_enabled(self, tmp_path):
        assert_matches_single(
            tmp_path, config_for(mesh_k=4, chaining="any_input"),
            seed=1, shards=2)

    def test_no_drain_region(self, tmp_path):
        run = assert_matches_single(
            tmp_path, config_for(mesh_k=4), seed=1, shards=2, drain=0)
        assert run.result.drained is None

    def test_explicit_narrow_window(self, tmp_path):
        assert_matches_single(
            tmp_path, config_for(mesh_k=4), seed=2, shards=2, window=1)

    def test_metrics_export_matches_merged_state(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        config = config_for(mesh_k=4)
        run = shard_run(config, pattern="uniform", rate=0.25, seed=1,
                        shards=2, out_dir=str(tmp_path / "state"),
                        metrics=metrics, **SMALL)
        assert run.status == "done"
        exported = metrics.to_dict()
        names = " ".join(
            name for family in exported.values() for name in family)
        assert "flits" in names or "packets" in names

    def test_rate_zero_idles_identically(self, tmp_path):
        assert_matches_single(
            tmp_path, config_for(mesh_k=4), seed=1, shards=2, rate=0.0,
            drain=0)


class TestRunBookkeeping:
    def test_result_json_and_journal_written(self, tmp_path):
        import json
        import os

        out = tmp_path / "state"
        run = shard_run(config_for(mesh_k=4), rate=0.25, seed=1, shards=2,
                        out_dir=str(out), **SMALL)
        assert run.status == "done"
        summary = json.loads((out / "result.json").read_text())
        assert summary["digest_root"] == run.digest_root
        assert summary["restarts"] == 0
        assert summary["cycles"] == run.cycles
        events = [json.loads(line) for line in
                  (out / "journal.jsonl").read_text().splitlines()]
        assert [e for e in events if e["event"] == "spawn"]
        assert events[-1]["event"] == "assembled"
        assert os.path.isdir(out / "exch" / "s0")

    def test_timers_are_aggregated(self, tmp_path):
        run = shard_run(config_for(mesh_k=4), rate=0.25, seed=1, shards=2,
                        out_dir=str(tmp_path / "state"), **SMALL)
        assert run.timers["step_seconds"] > 0
        for key in ("wait_seconds", "publish_seconds", "checkpoint_seconds"):
            assert key in run.timers

    def test_mismatched_resume_params_rejected(self, tmp_path):
        from repro.parallel import ShardRunError

        out = tmp_path / "state"
        shard_run(config_for(mesh_k=4), rate=0.25, seed=1, shards=2,
                  out_dir=str(out), **SMALL)
        with pytest.raises(ShardRunError):
            shard_run(config_for(mesh_k=4), rate=0.25, seed=1, shards=4,
                      out_dir=str(out), **SMALL)
