"""Unit and property tests for repro.allocators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocators import (
    AugmentingPathsAllocator,
    SeparableInputFirstAllocator,
    WavefrontAllocator,
    is_conflict_free,
    islip,
    make_allocator,
)


def request_matrices(max_ports=6):
    """Hypothesis strategy for (num_inputs, num_outputs, requests)."""
    return st.integers(2, max_ports).flatmap(
        lambda n_in: st.integers(2, max_ports).flatmap(
            lambda n_out: st.tuples(
                st.just(n_in),
                st.just(n_out),
                st.dictionaries(
                    st.tuples(st.integers(0, n_in - 1), st.integers(0, n_out - 1)),
                    st.integers(0, 3),
                    max_size=n_in * n_out,
                ),
            )
        )
    )


ALL_KINDS = [
    "islip1", "islip2", "oslip1", "oslip2", "pim1", "pim3",
    "wavefront", "augmenting",
]


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestAllocatorContract:
    def test_empty_requests(self, kind):
        alloc = make_allocator(kind, 5, 5)
        assert alloc.allocate({}) == {}

    def test_single_request_granted(self, kind):
        alloc = make_allocator(kind, 5, 5)
        assert alloc.allocate({(2, 3): 0}) == {2: 3}

    def test_grants_subset_of_requests(self, kind):
        alloc = make_allocator(kind, 4, 4)
        requests = {(0, 1): 0, (1, 1): 0, (2, 3): 0}
        grants = alloc.allocate(requests)
        for i, o in grants.items():
            assert (i, o) in requests

    def test_conflict_free(self, kind):
        alloc = make_allocator(kind, 4, 4)
        requests = {(i, o): 0 for i in range(4) for o in range(4)}
        grants = alloc.allocate(requests)
        assert is_conflict_free(grants)

    def test_full_contention_grants_one(self, kind):
        """All inputs want the same output: exactly one grant."""
        alloc = make_allocator(kind, 4, 4)
        grants = alloc.allocate({(i, 0): 0 for i in range(4)})
        assert len(grants) == 1

    def test_permutation_fully_granted(self, kind):
        """A permutation request pattern admits a perfect matching."""
        alloc = make_allocator(kind, 4, 4)
        requests = {(i, (i + 1) % 4): 0 for i in range(4)}
        assert alloc.allocate(requests) == {i: (i + 1) % 4 for i in range(4)}

    def test_priority_beats_round_robin(self, kind):
        alloc = make_allocator(kind, 4, 4)
        # Two inputs contend for output 0; input 3 has higher priority.
        grants = alloc.allocate({(0, 0): 0, (3, 0): 5})
        assert grants.get(3) == 0
        assert 0 not in grants

    def test_out_of_range_raises(self, kind):
        alloc = make_allocator(kind, 4, 4)
        with pytest.raises(ValueError):
            alloc.allocate({(4, 0): 0})
        with pytest.raises(ValueError):
            alloc.allocate({(0, 4): 0})

    @settings(max_examples=60, deadline=None)
    @given(case=request_matrices())
    def test_property_conflict_free_and_valid(self, kind, case):
        n_in, n_out, requests = case
        alloc = make_allocator(kind, n_in, n_out)
        for _ in range(3):  # exercise rotating state
            grants = alloc.allocate(requests)
            assert is_conflict_free(grants)
            for i, o in grants.items():
                assert (i, o) in requests


class TestSeparable:
    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            SeparableInputFirstAllocator(4, 4, iterations=0)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            SeparableInputFirstAllocator(0, 4)

    def test_islip_factory(self):
        alloc = islip(4, 4, iterations=2)
        assert alloc.iterations == 2

    def test_single_iteration_can_be_suboptimal(self):
        """The paper's Figure 1 effect: iSLIP-1 can leave outputs idle.

        Construct a case where input arbiters collide on one output. With
        pointers at 0, inputs 0 and 1 both pick output 0; output 1 idles
        even though input 1 could have used it.
        """
        alloc = islip(2, 2, iterations=1)
        requests = {(0, 0): 0, (1, 0): 0, (1, 1): 0}
        grants = alloc.allocate(requests)
        assert len(grants) == 1  # suboptimal: matching of size 2 exists

    def test_second_iteration_fills_idle_output(self):
        """iSLIP-2 fixes the Figure 1 case above."""
        alloc = islip(2, 2, iterations=2)
        requests = {(0, 0): 0, (1, 0): 0, (1, 1): 0}
        grants = alloc.allocate(requests)
        assert grants == {0: 0, 1: 1}

    def test_pointer_update_on_grant(self):
        """iSLIP rotates arbiter priority after a winning grant."""
        alloc = islip(2, 2)
        assert alloc.allocate({(0, 0): 0, (1, 0): 0}) == {0: 0}
        # Output 0's pointer has moved past input 0, so input 1 now wins.
        assert alloc.allocate({(0, 0): 0, (1, 0): 0}) == {1: 0}

    def test_desynchronization_reaches_full_throughput(self):
        """Under persistent all-to-all load iSLIP-1 desynchronizes to 100%.

        McKeown's classic result: after a few cycles of saturation, the
        pointers desynchronize and every output is granted every cycle.
        """
        n = 4
        alloc = islip(n, n)
        requests = {(i, o): 0 for i in range(n) for o in range(n)}
        sizes = [len(alloc.allocate(requests)) for _ in range(20)]
        assert all(s == n for s in sizes[-8:])

    def test_iterations_never_reduce_matching(self):
        requests = {(0, 0): 0, (1, 0): 0, (1, 1): 0, (2, 1): 0, (2, 2): 0}
        g1 = islip(3, 3, iterations=1).allocate(requests)
        g3 = islip(3, 3, iterations=3).allocate(requests)
        assert len(g3) >= len(g1)


class TestWavefront:
    def test_maximal_matching(self):
        """Wavefront guarantees maximality: no request can be added."""
        alloc = WavefrontAllocator(4, 4)
        requests = {(0, 0): 0, (1, 0): 0, (1, 1): 0, (2, 1): 0, (3, 3): 0}
        grants = alloc.allocate(requests)
        matched_in = set(grants)
        matched_out = set(grants.values())
        for (i, o) in requests:
            assert i in matched_in or o in matched_out

    @settings(max_examples=60, deadline=None)
    @given(case=request_matrices())
    def test_property_maximal(self, case):
        n_in, n_out, requests = case
        alloc = WavefrontAllocator(n_in, n_out)
        grants = alloc.allocate(requests)
        matched_in = set(grants)
        matched_out = set(grants.values())
        for (i, o) in requests:
            assert i in matched_in or o in matched_out

    def test_fairness_under_persistent_contention(self):
        """Conflicting requests win a comparable share over time.

        The symmetric-fairness permutation (see module docstring) must
        prevent the structural pairwise bias of a naive wavefront.
        """
        alloc = WavefrontAllocator(5, 5)
        requests = {(0, 2): 0, (1, 2): 0}
        wins = {0: 0, 1: 0}
        rounds = 400
        for _ in range(rounds):
            grants = alloc.allocate(requests)
            assert len(grants) == 1
            wins[next(iter(grants))] += 1
        assert 0.35 * rounds < wins[0] < 0.65 * rounds

    def test_rectangular(self):
        alloc = WavefrontAllocator(2, 5)
        grants = alloc.allocate({(0, 4): 0, (1, 2): 0})
        assert grants == {0: 4, 1: 2}


class TestAugmenting:
    def test_maximum_matching(self):
        """Augmenting paths finds the maximum matching where greedy fails."""
        alloc = AugmentingPathsAllocator(3, 3)
        # Greedy might match (0,1) and strand input 1; max matching is 3.
        requests = {(0, 0): 0, (0, 1): 0, (1, 1): 0, (2, 0): 0, (2, 2): 0}
        grants = alloc.allocate(requests)
        assert len(grants) == 3

    @settings(max_examples=60, deadline=None)
    @given(case=request_matrices(max_ports=5))
    def test_property_maximum(self, case):
        """Grants match the size of a brute-force maximum matching.

        Priorities are flattened to a single class: with multiple classes
        the allocator deliberately trades cardinality for strict priority.
        """
        n_in, n_out, requests = case
        flat = {pair: 0 for pair in requests}
        alloc = AugmentingPathsAllocator(n_in, n_out)
        grants = alloc.allocate(flat)
        assert len(grants) == _max_matching_size(set(flat), n_in)

    def test_priority_preserved_even_if_it_shrinks_matching(self):
        """A high-priority request is always served within its class."""
        alloc = AugmentingPathsAllocator(2, 2)
        # High class: (0,0). Low class: (0,1),(1,0). Serving the high
        # class first still allows a matching of size 2 here.
        grants = alloc.allocate({(0, 0): 9, (0, 1): 0, (1, 0): 0})
        assert grants[0] == 0


def _max_matching_size(pairs, n_in):
    """Reference maximum bipartite matching (simple Hungarian DFS)."""
    adj = {}
    for i, o in pairs:
        adj.setdefault(i, []).append(o)
    match = {}

    def try_kuhn(i, seen):
        for o in adj.get(i, []):
            if o in seen:
                continue
            seen.add(o)
            if o not in match or try_kuhn(match[o], seen):
                match[o] = i
                return True
        return False

    return sum(try_kuhn(i, set()) for i in range(n_in))


class TestOutputFirst:
    def test_output_first_resolves_output_contention_first(self):
        from repro.allocators import SeparableOutputFirstAllocator

        alloc = SeparableOutputFirstAllocator(2, 2)
        # Outputs 0 and 1 both grant input 0 (pointers at 0); input 0
        # accepts only one, idling input 1 — the output-first mirror of
        # the Figure 1 single-iteration suboptimality.
        grants = alloc.allocate({(0, 0): 0, (0, 1): 0, (1, 1): 0})
        assert len(grants) == 1

    def test_two_iterations_fill_in(self):
        from repro.allocators import SeparableOutputFirstAllocator

        alloc = SeparableOutputFirstAllocator(2, 2, iterations=2)
        grants = alloc.allocate({(0, 0): 0, (0, 1): 0, (1, 1): 0})
        assert grants == {0: 0, 1: 1}

    def test_pointer_rotation_is_fair(self):
        from repro.allocators import SeparableOutputFirstAllocator

        alloc = SeparableOutputFirstAllocator(2, 2)
        requests = {(0, 0): 0, (1, 0): 0}
        winners = [next(iter(alloc.allocate(requests))) for _ in range(4)]
        assert set(winners) == {0, 1}

    def test_bad_iterations(self):
        from repro.allocators import SeparableOutputFirstAllocator

        with pytest.raises(ValueError):
            SeparableOutputFirstAllocator(2, 2, iterations=0)


class TestPIM:
    def test_deterministic_with_seed(self):
        from repro.allocators import PIMAllocator

        requests = {(i, o): 0 for i in range(4) for o in range(4)}
        a = PIMAllocator(4, 4, seed=7).allocate(requests)
        b = PIMAllocator(4, 4, seed=7).allocate(requests)
        assert a == b

    def test_multiple_iterations_improve_matching(self):
        from repro.allocators import PIMAllocator
        import random as _random

        rng = _random.Random(0)
        sizes = {1: 0, 4: 0}
        for trial in range(100):
            requests = {
                (i, o): 0
                for i in range(6)
                for o in range(6)
                if rng.random() < 0.4
            }
            for iters in sizes:
                alloc = PIMAllocator(6, 6, iterations=iters, seed=trial)
                sizes[iters] += len(alloc.allocate(requests))
        assert sizes[4] > sizes[1]

    def test_bad_iterations(self):
        from repro.allocators import PIMAllocator

        with pytest.raises(ValueError):
            PIMAllocator(2, 2, iterations=0)


class TestFactory:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_allocator("hopscotch", 4, 4)

    def test_islip_k_parsing(self):
        assert make_allocator("islip3", 4, 4).iterations == 3

    def test_oslip_and_pim_parsing(self):
        assert make_allocator("oslip2", 4, 4).iterations == 2
        assert make_allocator("pim4", 4, 4).iterations == 4
