"""Tests for the crash-tolerant experiment service (repro.serve)."""

import io
import json
import os

import pytest

from repro.network.config import mesh_config
from repro.serve import (
    DEFAULT_RETRY_POLICY,
    ExperimentService,
    JobSpec,
    RetryPolicy,
    ServiceLockError,
    fold_events,
    job_records,
    load_result,
    read_events,
    scan_service,
    spec_for,
    submit_spec,
    wait_for,
)
from repro.serve.cache import ResultCache
from repro.serve.store import JobStore

#: Tiny-but-real simulation: a 2x2 mesh finishes in milliseconds.
SMALL = dict(warmup=50, measure=100, drain=50)
#: Backoff tuned so chaos tests spend microseconds, not seconds.
FAST = RetryPolicy(base=0.001, factor=2.0, cap=0.01, jitter=0.0)


def small_spec(rate=0.1, **knobs):
    return spec_for(mesh_config(mesh_k=2), rate=rate, **SMALL, **knobs)


def run_service(root, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_timeout", 30.0)
    kwargs.setdefault("retry_policy", FAST)
    with ExperimentService(str(root), **kwargs) as svc:
        svc.run(once=True, max_seconds=120, install_signals=False)
        return svc.status()


class TestRetryPolicy:
    def test_deterministic_per_key_and_attempt(self):
        p = DEFAULT_RETRY_POLICY
        assert p.delay("k", 1) == p.delay("k", 1)
        assert p.schedule("k", 3) == p.schedule("k", 3)

    def test_different_keys_decorrelate(self):
        p = DEFAULT_RETRY_POLICY
        assert p.delay("a", 1) != p.delay("b", 1)

    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(base=1.0, factor=2.0, cap=5.0, jitter=0.0)
        assert p.schedule("k", 4) == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_bounds(self):
        p = RetryPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.5)
        for attempt in range(1, 50):
            assert 0.5 <= p.delay("k", attempt) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            DEFAULT_RETRY_POLICY.delay("k", 0)


class TestJobSpec:
    def test_hash_matches_checkpoint_config_hash(self, tmp_path):
        """The cache key IS the checkpoint machinery's content address."""
        from repro.checkpoint import load_checkpoint
        from repro.sim.runner import run_simulation

        cfg = mesh_config(mesh_k=2)
        spec = spec_for(cfg, rate=0.1, **SMALL)
        ck = str(tmp_path / "ck.json")
        run_simulation(cfg, rate=0.1, **SMALL, checkpoint_path=ck,
                       checkpoint_every=50)
        assert load_checkpoint(ck)["config_hash"] == spec.spec_hash()

    def test_execution_knobs_do_not_change_hash(self):
        base = small_spec()
        tweaked = small_spec(priority=5, label="x", watchdog_window=1000,
                             chaos={"sigkill_attempts": 1})
        assert base.spec_hash() == tweaked.spec_hash()

    def test_experiment_fields_do_change_hash(self):
        assert small_spec(rate=0.1).spec_hash() != \
            small_spec(rate=0.2).spec_hash()

    def test_round_trip_and_strictness(self):
        spec = small_spec(label="rt")
        back = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        with pytest.raises(ValueError):
            JobSpec.from_dict({"config": {}, "bogus": 1})
        with pytest.raises(ValueError):
            JobSpec.from_dict({"rate": 0.1})

    def test_spec_for_accepts_distribution_object(self):
        from repro.traffic import BimodalLength

        spec = spec_for(mesh_config(mesh_k=2), lengths=BimodalLength(1, 5))
        assert spec.lengths["kind"] == "bimodal"


class TestJobStore:
    def test_lifecycle_fold(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append("submitted", "j1", spec={"label": "a", "rate": 0.1},
                     hash="h1", priority=2, t=1.0)
        store.append("leased", "j1", attempt=1, t=2.0)
        store.append("running", "j1", worker=42, t=2.1)
        store.append("retry", "j1", error="boom", delay=0.5,
                     not_before=3.0, t=2.5)
        store.append("leased", "j1", attempt=2, t=3.5)
        store.append("running", "j1", worker=43, t=3.6)
        store.append("done", "j1", cached=False, artifact="cache/objects/h1",
                     wall_time=0.2, worker=43, t=4.0)
        store.close()
        rec = JobStore(str(tmp_path)).recover()["j1"]
        assert rec.state == "done"
        assert rec.terminal
        assert rec.attempts == 2
        assert rec.retry_delays == [0.5]
        assert rec.cached is False
        assert rec.hash == "h1"
        assert rec.priority == 2

    def test_dead_letter_diagnostic(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append("submitted", "j1", spec={"label": "bad", "rate": 0.3},
                     hash="h", t=1.0)
        store.append("leased", "j1", attempt=1, t=2.0)
        store.append("dead", "j1", error="it broke", attempts=4, t=3.0)
        rec = store.recover()["j1"]
        assert rec.state == "dead"
        assert rec.diagnostic() == {
            "label": "bad", "rate": 0.3, "error": "it broke", "attempts": 4,
        }

    def test_torn_tail_is_discarded(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append("submitted", "j1", spec={}, hash="h", t=1.0)
        store.append("leased", "j1", attempt=1, t=2.0)
        store.close()
        with open(store.path, "a") as fh:
            fh.write('{"ev": "done", "job": "j1", "cach')  # SIGKILL here
        rec = JobStore(str(tmp_path)).recover()["j1"]
        assert rec.state == "leased"  # the torn 'done' never happened

    def test_requeued_returns_to_submitted(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append("submitted", "j1", spec={}, hash="h", t=1.0)
        store.append("leased", "j1", attempt=1, t=2.0)
        store.append("running", "j1", worker=9, t=2.1)
        store.append("requeued", "j1", t=3.0)
        rec = store.recover()["j1"]
        assert rec.state == "submitted"
        assert rec.worker is None
        assert rec.attempts == 1  # history preserved: next lease is #2

    def test_unknown_events_are_skipped(self):
        jobs = fold_events([
            {"ev": "submitted", "job": "j1", "spec": {}, "hash": "h"},
            {"ev": "from_the_future", "job": "j1", "shiny": True},
        ])
        assert jobs["j1"].state == "submitted"


class TestResultCache:
    def test_publish_then_lookup(self, tmp_path):
        cache = ResultCache(str(tmp_path))

        def build(staging):
            with open(os.path.join(staging, "summary.json"), "w") as fh:
                json.dump({"ok": 1}, fh)

        path, fresh = cache.publish("h" * 64, build)
        assert fresh
        assert cache.lookup("h" * 64) == path

    def test_duplicate_publish_is_a_noop(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        calls = []

        def build(staging):
            calls.append(staging)
            with open(os.path.join(staging, "summary.json"), "w") as fh:
                json.dump({}, fh)

        cache.publish("h" * 64, build)
        _, fresh = cache.publish("h" * 64, build)
        assert not fresh
        assert len(calls) == 1  # second publish never even built

    def test_crashed_build_leaves_no_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path))

        def build(staging):
            with open(os.path.join(staging, "summary.json"), "w") as fh:
                fh.write("{")  # partial write...
            raise RuntimeError("crash mid-build")

        with pytest.raises(RuntimeError):
            cache.publish("h" * 64, build)
        assert cache.lookup("h" * 64) is None
        cache.reconcile()
        assert os.listdir(cache.tmp) == []  # staging debris swept

    def test_reconcile_indexes_orphaned_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))

        def build(staging):
            with open(os.path.join(staging, "summary.json"), "w") as fh:
                json.dump({}, fh)

        # Publish without recording: the crash window between the
        # rename and the index append.
        cache.publish("a" * 64, build)
        assert cache.indexed_hashes() == set()
        assert cache.reconcile() == {"a" * 64}
        assert cache.indexed_hashes() == {"a" * 64}

    def test_torn_index_tail_tolerated(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.record("a" * 64, job_id="j1")
        cache.close()
        with open(cache.index_path, "a") as fh:
            fh.write('{"hash": "bb')
        assert ResultCache(str(tmp_path)).indexed_hashes() == {"a" * 64}


class TestServiceEndToEnd:
    def test_identical_specs_share_one_simulation(self, tmp_path):
        spec = small_spec(label="twin")
        j1 = submit_spec(str(tmp_path), spec)
        j2 = submit_spec(str(tmp_path), spec)
        j3 = submit_spec(str(tmp_path), small_spec(rate=0.2))
        status = run_service(tmp_path)
        assert status["jobs"] == {"done": 3}
        recs = job_records(str(tmp_path))
        assert {recs[j1].cached, recs[j2].cached} == {True, False}
        assert recs[j3].cached is False
        # The journal proves it: exactly one non-cached completion per
        # hash, and the cache index has exactly one line per hash.
        events = read_events(os.path.join(str(tmp_path), "jobs.jsonl"))
        fresh = [e for e in events if e["ev"] == "done" and not e["cached"]]
        assert len(fresh) == 2  # one per distinct spec
        index = ResultCache(str(tmp_path)).read_index()
        assert len(index) == len({e["hash"] for e in index}) == 2

    def test_single_flight_never_double_leases_a_hash(self, tmp_path):
        spec = small_spec(label="sf")
        submit_spec(str(tmp_path), spec)
        submit_spec(str(tmp_path), spec)
        run_service(tmp_path, workers=4)
        events = read_events(os.path.join(str(tmp_path), "jobs.jsonl"))
        assert sum(1 for e in events if e["ev"] == "leased") == 1

    def test_results_bit_identical_to_direct_run(self, tmp_path):
        from repro.checkpoint import canonical_sha256
        from repro.sim.runner import run_simulation

        spec = small_spec(rate=0.15)
        jid = submit_spec(str(tmp_path), spec)
        run_service(tmp_path)
        served = load_result(str(tmp_path), job_records(str(tmp_path))[jid])
        direct = run_simulation(mesh_config(mesh_k=2), rate=0.15, **SMALL)
        assert canonical_sha256(served.to_dict()) == \
            canonical_sha256(direct.to_dict())

    def test_metrics_registry_counts(self, tmp_path):
        spec = small_spec()
        submit_spec(str(tmp_path), spec)
        submit_spec(str(tmp_path), spec)
        with ExperimentService(str(tmp_path), workers=2,
                               retry_policy=FAST) as svc:
            svc.run(once=True, max_seconds=120, install_signals=False)
            metrics = svc.metrics.to_dict()["counters"]
        assert metrics["serve_jobs_submitted_total"] == 2
        assert metrics["serve_jobs_done_total"] == 2
        assert metrics["serve_cache_hits_total"] == 1
        assert metrics["serve_cache_misses_total"] == 1


class TestRetryAndDeadLetter:
    def test_sigkilled_worker_retries_with_backoff(self, tmp_path):
        jid = submit_spec(str(tmp_path),
                          small_spec(chaos={"sigkill_attempts": 1}))
        status = run_service(tmp_path, workers=1)
        rec = job_records(str(tmp_path))[jid]
        assert rec.state == "done"
        assert rec.attempts == 2
        assert rec.retry_delays == [FAST.delay(rec.hash, 1)]
        assert status["retries"] == 1

    def test_always_dying_job_dead_letters(self, tmp_path):
        jid = submit_spec(
            str(tmp_path),
            small_spec(label="doomed", chaos={"sigkill_attempts": 99}),
        )
        ok = submit_spec(str(tmp_path), small_spec(rate=0.2))
        run_service(tmp_path, workers=1, max_retries=2)
        recs = job_records(str(tmp_path))
        assert recs[jid].state == "dead"
        assert recs[jid].attempts == 3  # 1 + max_retries
        diag = recs[jid].diagnostic()
        assert diag["label"] == "doomed"
        assert "died" in diag["error"]
        assert recs[ok].state == "done"  # one bad job never blocks others

    def test_soft_failure_retries(self, tmp_path):
        # SimulationKilled at cycle 60 on attempt 1 only: the classic
        # transient failure.
        jid = submit_spec(
            str(tmp_path),
            small_spec(chaos={"kill_at": 60, "kill_attempts": 1}),
        )
        run_service(tmp_path, workers=1)
        rec = job_records(str(tmp_path))[jid]
        assert rec.state == "done"
        assert rec.attempts == 2

    def test_unhashable_spec_dead_letters_immediately(self, tmp_path):
        # A config that NetworkConfig.from_dict rejects can never
        # produce a content hash: no retry can fix it.
        bad = small_spec()
        bad.config["no_such_field"] = 1
        jid = submit_spec(str(tmp_path), bad)
        run_service(tmp_path)
        rec = job_records(str(tmp_path))[jid]
        assert rec.state == "dead"
        assert rec.attempts == 0
        assert "invalid spec" in rec.error

    def test_bad_allocator_dead_letters_after_retries(self, tmp_path):
        # Valid keys, bad value: only build_network can reject it, so
        # the failure surfaces from the worker and exhausts retries.
        bad = small_spec()
        bad.config["allocator"] = "no-such-allocator"
        jid = submit_spec(str(tmp_path), bad)
        run_service(tmp_path, workers=1, max_retries=1)
        rec = job_records(str(tmp_path))[jid]
        assert rec.state == "dead"
        assert rec.attempts == 2
        assert "no-such-allocator" in rec.error

    def test_unparseable_spool_file_dead_letters(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "jjunk.json").write_text("{not json")
        run_service(tmp_path)
        rec = job_records(str(tmp_path))["jjunk"]
        assert rec.state == "dead"
        assert "bad submission" in rec.error
        assert not (spool / "jjunk.json").exists()


class TestLeaseExpiry:
    def test_wedged_worker_is_killed_and_job_retried(self, tmp_path):
        from repro.serve.supervisor import alive_pid

        jid = submit_spec(
            str(tmp_path),
            small_spec(chaos={"sleep": 600, "sleep_attempts": 1}),
        )
        pids = []
        with ExperimentService(str(tmp_path), workers=1, lease_timeout=0.5,
                               retry_policy=FAST) as svc:
            deadline = 120
            import time as _time

            start = _time.monotonic()
            while not svc.finished():
                svc.tick()
                for h in svc._handles.values():
                    if h.pid not in pids:
                        pids.append(h.pid)
                assert _time.monotonic() - start < deadline
                _time.sleep(0.02)
            metrics = svc.metrics.to_dict()["counters"]
        rec = job_records(str(tmp_path))[jid]
        assert rec.state == "done"
        assert rec.attempts == 2
        assert len(rec.retry_delays) == 1
        assert "lease expired" in rec.error  # the retry's cause survives
        assert metrics["serve_leases_expired_total"] == 1
        # The wedged attempt's worker must be confirmed dead.
        assert len(pids) == 2
        assert not alive_pid(pids[0])


class TestRecovery:
    def test_orphaned_leases_are_requeued_and_finish(self, tmp_path):
        # Forge the debris of a SIGKILLed server: a journal whose last
        # word on the job is 'running'.
        spec = small_spec(label="orphan")
        store = JobStore(str(tmp_path))
        store.append("submitted", "jdead1", spec=spec.to_dict(),
                     hash=spec.spec_hash(), priority=0, t=1.0)
        store.append("leased", "jdead1", attempt=1, t=2.0)
        store.append("running", "jdead1", worker=999999, t=2.1)
        store.close()
        with ExperimentService(str(tmp_path), workers=1,
                               retry_policy=FAST) as svc:
            assert svc.jobs["jdead1"].state == "submitted"
            svc.run(once=True, max_seconds=120, install_signals=False)
        rec = job_records(str(tmp_path))["jdead1"]
        assert rec.state == "done"
        assert rec.attempts == 2  # lease history survived the crash
        events = read_events(store.path)
        assert [e["ev"] for e in events if e["job"] == "jdead1"][3] == \
            "requeued"

    def test_published_but_unjournaled_result_becomes_cache_hit(
            self, tmp_path):
        # Worker published to the cache, then the server died before
        # journaling 'done'. Restart must cache-hit, not re-simulate.
        from repro.serve.supervisor import run_job_worker

        spec = small_spec(label="ghost")
        store = JobStore(str(tmp_path))
        store.append("submitted", "jghost", spec=spec.to_dict(),
                     hash=spec.spec_hash(), priority=0, t=1.0)
        store.append("leased", "jghost", attempt=1, t=2.0)
        store.append("running", "jghost", worker=999999, t=2.1)
        store.close()
        run_job_worker(str(tmp_path), "jghost", 1, spec.to_dict())
        run_service(tmp_path)
        rec = job_records(str(tmp_path))["jghost"]
        assert rec.state == "done"
        assert rec.cached is True
        index = ResultCache(str(tmp_path)).read_index()
        assert len(index) == 1  # reconciled exactly once

    def test_lock_refuses_root_owned_by_live_process(self, tmp_path):
        # pid 1 is always alive; our own pid may legally re-acquire
        # (that IS the restart path), so forge a foreign live owner.
        (tmp_path / "serve.lock").write_text(json.dumps({"pid": 1, "t": 0}))
        with pytest.raises(ServiceLockError):
            ExperimentService(str(tmp_path)).recover()

    def test_same_process_may_reacquire_its_own_root(self, tmp_path):
        with ExperimentService(str(tmp_path)):
            pass
        with ExperimentService(str(tmp_path)) as svc:
            assert svc._locked

    def test_stale_lock_is_taken_over(self, tmp_path):
        (tmp_path / "serve.lock").write_text(
            json.dumps({"pid": 2 ** 22 + 12345, "t": 0})
        )
        with ExperimentService(str(tmp_path)) as svc:
            assert svc._locked


class TestDrain:
    def test_drain_stops_new_launches_but_queue_survives(self, tmp_path):
        j1 = submit_spec(str(tmp_path), small_spec(rate=0.1))
        j2 = submit_spec(str(tmp_path), small_spec(rate=0.2))
        with ExperimentService(str(tmp_path), workers=1,
                               retry_policy=FAST) as svc:
            svc.admit_spool()
            svc.request_drain()
            svc.run(once=False, max_seconds=60, install_signals=False)
            assert svc.drained()
        recs = job_records(str(tmp_path))
        states = sorted(recs[j].state for j in (j1, j2))
        assert "submitted" in states  # queue persisted, not lost
        # A later server picks the queue up and finishes it.
        run_service(tmp_path, workers=1)
        recs = job_records(str(tmp_path))
        assert all(recs[j].state == "done" for j in (j1, j2))


class TestPriorityAging:
    """Fair-share scheduling: queued jobs gain priority while waiting."""

    class Wall:
        """Deterministic wall clock the service reads via ``walltime``."""

        def __init__(self, t=1000.0):
            self.t = t

        def __call__(self):
            return self.t

    def leased_order(self, root):
        return [e["job"]
                for e in read_events(os.path.join(str(root), "jobs.jsonl"))
                if e["ev"] == "leased"]

    def submit_pair(self, root, svc, wall):
        """An old low-priority job, then a fresh high-priority one."""
        old = svc.submit(small_spec(rate=0.1, priority=0))
        wall.t += 1000.0
        fresh = svc.submit(small_spec(rate=0.2, priority=5))
        return old, fresh

    def test_waiting_job_overtakes_higher_static_priority(self, tmp_path):
        wall = self.Wall()
        with ExperimentService(str(tmp_path), workers=1, retry_policy=FAST,
                               walltime=wall, priority_aging=0.01) as svc:
            # old's effective priority: 0 + 0.01 * 1000s = 10 > 5.
            old, fresh = self.submit_pair(tmp_path, svc, wall)
            svc.run(once=True, max_seconds=60, install_signals=False)
        assert self.leased_order(tmp_path) == [old, fresh]

    def test_zero_aging_keeps_strict_priority(self, tmp_path):
        wall = self.Wall()
        with ExperimentService(str(tmp_path), workers=1, retry_policy=FAST,
                               walltime=wall) as svc:
            old, fresh = self.submit_pair(tmp_path, svc, wall)
            svc.run(once=True, max_seconds=60, install_signals=False)
        assert self.leased_order(tmp_path) == [fresh, old]

    def test_aging_survives_journal_recovery(self, tmp_path):
        """submitted_t is durable, so waiting time accrued before a
        server restart still counts toward effective priority."""
        wall = self.Wall()
        with ExperimentService(str(tmp_path), workers=1, retry_policy=FAST,
                               walltime=wall, priority_aging=0.01) as svc:
            old = svc.submit(small_spec(rate=0.1, priority=0))
        wall.t += 1000.0
        with ExperimentService(str(tmp_path), workers=1, retry_policy=FAST,
                               walltime=wall, priority_aging=0.01) as svc:
            fresh = svc.submit(small_spec(rate=0.2, priority=5))
            svc.run(once=True, max_seconds=60, install_signals=False)
        assert self.leased_order(tmp_path) == [old, fresh]

    def test_negative_aging_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentService(str(tmp_path), priority_aging=-0.1)


class TestStatusAndApi:
    def test_status_snapshot_and_scan(self, tmp_path):
        spec = small_spec()
        jid = submit_spec(str(tmp_path), spec)
        submit_spec(str(tmp_path), spec)
        status = run_service(tmp_path)
        assert status["jobs"] == {"done": 2}
        assert status["cache"]["hits"] == 1
        assert status["cache"]["hit_rate"] == 0.5
        on_disk = json.load(open(tmp_path / "status.json"))
        assert on_disk["jobs"] == {"done": 2}
        scan = scan_service(str(tmp_path))
        assert scan["jobs"] == {"done": 2}
        assert scan["server"]["pid"] == os.getpid()
        recs = wait_for(str(tmp_path), [jid], timeout=1)
        assert recs[jid].state == "done"

    def test_wait_for_times_out_on_missing_job(self, tmp_path):
        (tmp_path / "spool").mkdir()
        with pytest.raises(TimeoutError):
            wait_for(str(tmp_path), ["jnever"], timeout=0.1, poll=0.01)


class TestServeCli:
    def test_submit_sweep_serve_status_round_trip(self, tmp_path):
        from repro.cli import main

        root = str(tmp_path / "svc")
        out = io.StringIO()
        assert main(["serve", root, "--submit-sweep", "0.1", "0.2",
                     "--mesh-k", "2", "--warmup", "50", "--measure", "100",
                     "--drain", "50", "--label", "cli"], out) == 0
        job_ids = out.getvalue().split()
        assert len(job_ids) == 2
        out = io.StringIO()
        assert main(["serve", root, "--once", "--workers", "2"], out) == 0
        assert "done=2" in out.getvalue()
        out = io.StringIO()
        assert main(["serve", root, "--status", "--json"], out) == 0
        status = json.loads(out.getvalue())
        assert status["jobs"] == {"done": 2}
        recs = job_records(root)
        assert all(recs[j].state == "done" for j in job_ids)

    def test_submit_file_and_dead_letter_exit_code(self, tmp_path):
        from repro.cli import main

        root = str(tmp_path / "svc")
        spec = small_spec()
        spec.config["allocator"] = "no-such-allocator"
        spec_file = tmp_path / "job.json"
        spec_file.write_text(json.dumps({"spec": spec.to_dict()}))
        out = io.StringIO()
        assert main(["serve", root, "--submit", str(spec_file)], out) == 0
        out = io.StringIO()
        # Dead-lettered job -> non-zero exit so CI notices.
        assert main(["serve", root, "--once"], out) == 1
        out = io.StringIO()
        assert main(["serve", root, "--status"], out) == 0
        assert "dead" in out.getvalue()
