"""Tests for host-performance run telemetry (obs.telemetry)."""

import io
import json

import pytest

from repro.checkpoint import SimulationKilled
from repro.network.config import mesh_config
from repro.obs.telemetry import (
    HEARTBEAT_SUFFIX,
    TELEMETRY_MANIFEST,
    RunTelemetry,
    init_telemetry_dir,
    point_heartbeat_path,
    read_heartbeats,
    rss_kb,
)
from repro.sim.runner import run_simulation

RUN = dict(rate=0.1, warmup=100, measure=200, drain=0, seed=3)


class FakeClock:
    """Deterministic monotonic clock: advances a fixed step per call."""

    def __init__(self, step=0.5):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestRunTelemetry:
    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            RunTelemetry(every=0)

    def test_heartbeat_records(self, tmp_path):
        path = tmp_path / "run.hb.jsonl"
        tele = RunTelemetry(path=str(path), every=10, label="m4",
                            rate=0.25, clock=FakeClock())
        tele.begin(total_cycles=40)
        for cycle in range(1, 41):
            tele.on_cycle(cycle, "measure")
        tele.finish("done", cycle=40)

        records = read_heartbeats(str(path))
        events = [r["ev"] for r in records]
        assert events[0] == "start"
        assert events[-1] == "finish"
        beats = [r for r in records if r["ev"] == "heartbeat"]
        assert [b["cycle"] for b in beats] == [10, 20, 30, 40]
        first = beats[0]
        assert first["label"] == "m4"
        assert first["rate"] == 0.25
        assert first["total_cycles"] == 40
        assert first["phase"] == "measure"
        assert first["cycles_per_sec"] > 0
        assert first["progress"] == pytest.approx(0.25)
        assert first["eta_sec"] is not None
        assert first["rss_kb"] >= 0

    def test_no_heartbeat_before_period(self, tmp_path):
        path = tmp_path / "run.hb.jsonl"
        tele = RunTelemetry(path=str(path), every=1000, clock=FakeClock())
        tele.begin(total_cycles=100)
        for cycle in range(1, 101):
            tele.on_cycle(cycle, "measure")
        tele.finish("done", cycle=100)
        events = [r["ev"] for r in read_heartbeats(str(path))]
        assert events == ["start", "finish"]

    def test_finish_reports_status_and_result_summary(self, tmp_path):
        path = tmp_path / "run.hb.jsonl"
        result = run_simulation(mesh_config(mesh_k=4), **RUN)
        tele = RunTelemetry(path=str(path), every=50, clock=FakeClock())
        tele.begin(total_cycles=300)
        tele.finish("done", cycle=300, result=result)
        finish = read_heartbeats(str(path))[-1]
        assert finish["status"] == "done"
        assert finish["result"]["cycles_run"] == result.cycles_run
        assert finish["result"]["avg_throughput"] == result.avg_throughput

    def test_finish_twice_is_safe(self, tmp_path):
        path = tmp_path / "run.hb.jsonl"
        tele = RunTelemetry(path=str(path), every=10, clock=FakeClock())
        tele.begin(total_cycles=10)
        tele.finish("done", cycle=10)
        tele.finish("done", cycle=10)  # must not raise or duplicate
        events = [r["ev"] for r in read_heartbeats(str(path))]
        assert events.count("finish") == 1

    def test_console_progress_line(self):
        console = io.StringIO()
        tele = RunTelemetry(console=console, every=10, clock=FakeClock())
        tele.begin(total_cycles=20)
        for cycle in range(1, 21):
            tele.on_cycle(cycle, "measure")
        tele.finish("done", cycle=20)
        text = console.getvalue()
        assert "\rcycle 10/20" in text
        assert "cycles/sec" in text
        assert text.endswith("\n")  # progress line terminated cleanly

    def test_console_untouched_when_no_heartbeat_fired(self):
        console = io.StringIO()
        tele = RunTelemetry(console=console, every=1000, clock=FakeClock())
        tele.begin(total_cycles=5)
        for cycle in range(1, 6):
            tele.on_cycle(cycle, "measure")
        tele.finish("done", cycle=5)
        assert console.getvalue() == ""

    def test_profiler_phase_split_embedded(self, tmp_path):
        class FakeProfiler:
            def phase_totals(self):
                return {"sa": 1.5, "stream": 0.5}

        path = tmp_path / "run.hb.jsonl"
        tele = RunTelemetry(path=str(path), every=10, clock=FakeClock())
        tele.begin(total_cycles=10, profiler=FakeProfiler())
        tele.on_cycle(10, "warmup")
        tele.finish()
        beat = [r for r in read_heartbeats(str(path))
                if r["ev"] == "heartbeat"][0]
        assert beat["phase_seconds"] == {"sa": 1.5, "stream": 0.5}


class TestRunnerIntegration:
    def test_run_simulation_emits_heartbeats(self, tmp_path):
        path = tmp_path / "run.hb.jsonl"
        tele = RunTelemetry(path=str(path), every=100)
        result = run_simulation(mesh_config(mesh_k=4), telemetry=tele,
                                **RUN)
        records = read_heartbeats(str(path))
        assert records[0]["ev"] == "start"
        assert records[0]["total_cycles"] == 300
        assert any(r["ev"] == "heartbeat" for r in records)
        finish = records[-1]
        assert finish["ev"] == "finish"
        assert finish["status"] == "done"
        assert finish["result"]["cycles_run"] == result.cycles_run

    def test_killed_run_reports_killed_status(self, tmp_path):
        path = tmp_path / "run.hb.jsonl"
        tele = RunTelemetry(path=str(path), every=50)
        with pytest.raises(SimulationKilled):
            run_simulation(mesh_config(mesh_k=4), telemetry=tele,
                           kill_at=150, **RUN)
        finish = read_heartbeats(str(path))[-1]
        assert finish["ev"] == "finish"
        assert finish["status"] == "killed"
        assert finish["cycle"] >= 150

    def test_telemetry_does_not_change_results(self, tmp_path):
        plain = run_simulation(mesh_config(mesh_k=4), **RUN)
        tele = RunTelemetry(path=str(tmp_path / "t.hb.jsonl"), every=50)
        traced = run_simulation(mesh_config(mesh_k=4), telemetry=tele,
                                **RUN)
        assert plain.to_dict() == traced.to_dict()


class TestHeartbeatFiles:
    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_heartbeats(str(tmp_path / "nope.hb.jsonl")) == []

    def test_torn_tail_discarded(self, tmp_path):
        path = tmp_path / "run.hb.jsonl"
        good = {"ev": "heartbeat", "cycle": 10}
        path.write_text(json.dumps(good) + "\n" + '{"ev": "hea')
        assert read_heartbeats(str(path)) == [good]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "run.hb.jsonl"
        path.write_text('\n{"ev": "start"}\n\n{"ev": "finish"}\n')
        assert [r["ev"] for r in read_heartbeats(str(path))] == \
            ["start", "finish"]


class TestTelemetryDir:
    def test_manifest_and_stale_cleanup(self, tmp_path):
        directory = str(tmp_path / "tel")
        stale = tmp_path / "tel"
        stale.mkdir()
        (stale / f"old{HEARTBEAT_SUFFIX}").write_text("{}\n")
        points = [{"label": "a", "rate": 0.1}, {"label": "b", "rate": 0.2}]
        manifest = init_telemetry_dir(directory, points)
        assert not (stale / f"old{HEARTBEAT_SUFFIX}").exists()
        assert len(manifest["points"]) == 2
        assert manifest["points"][1]["label"] == "b"
        assert manifest["points"][1]["rate"] == 0.2
        on_disk = json.loads((stale / TELEMETRY_MANIFEST).read_text())
        assert on_disk["points"] == manifest["points"]

    def test_point_paths_are_stable_and_sorted(self, tmp_path):
        paths = [point_heartbeat_path(str(tmp_path), i) for i in (0, 1, 12)]
        assert [p.rsplit("/", 1)[1] for p in paths] == [
            "point0000.hb.jsonl", "point0001.hb.jsonl", "point0012.hb.jsonl",
        ]
        assert sorted(paths) == paths


def test_rss_kb_positive_on_linux():
    assert rss_kb() > 0
