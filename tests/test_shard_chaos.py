"""Crash/restart tests for the sharded runtime (repro.parallel).

Each scenario injects a real failure — SIGKILL mid-window, SIGKILL in
the middle of publishing an exchange file, a wedged (silently stalled)
worker, a SIGKILLed coordinator, a graceful SIGTERM drain — and then
asserts the two recovery invariants: published exchange files are
immutable (no window is ever published twice), and the completed run
is bit-identical to an uninterrupted single-process run.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.network.config import NetworkConfig
from repro.parallel import shard_run, single_process_run
from repro.parallel.worker import drain_flag_path
from repro.obs.artifacts import atomic_write

SMALL = dict(warmup=20, measure=60, drain=400)


def config_for(mesh_k=4, allocator="islip1", seed=1):
    return NetworkConfig(topology="mesh", mesh_k=mesh_k, routing="dor",
                         allocator=allocator, pc_allocator="islip1",
                         chaining="disabled", seed=seed)


def oracle(config, seed, rate=0.25, **overrides):
    return single_process_run(config, pattern="uniform", rate=rate,
                              seed=seed, **dict(SMALL, **overrides))


def run_sharded(out_dir, config, seed, shards=2, rate=0.25, **kwargs):
    overrides = {k: kwargs.pop(k) for k in list(kwargs)
                 if k in ("warmup", "measure", "drain")}
    return shard_run(config, pattern="uniform", rate=rate, seed=seed,
                     shards=shards, out_dir=str(out_dir),
                     **dict(SMALL, **overrides), **kwargs)


def exchange_files(out_dir):
    found = {}
    for dirpath, _dirnames, filenames in os.walk(
            os.path.join(str(out_dir), "exch")):
        for name in filenames:
            if name.endswith(".json"):
                path = os.path.join(dirpath, name)
                with open(path, "rb") as fh:
                    found[path] = hashlib.sha256(fh.read()).hexdigest()
    return found


class TestWorkerCrashes:
    @pytest.mark.parametrize("mesh_k,shards,chaos_shard", [
        (4, 2, 0), (8, 4, 2)])
    def test_sigkill_mid_window_restarts_bit_identically(
            self, tmp_path, mesh_k, shards, chaos_shard):
        config = config_for(mesh_k=mesh_k)
        expected, expected_root = oracle(config, seed=1)
        run = run_sharded(tmp_path / "s", config, seed=1, shards=shards,
                          chaos={chaos_shard: {"sigkill_at_cycle": 37}})
        assert run.status == "done"
        assert run.restarts >= 1
        assert run.result == expected
        assert run.digest_root == expected_root

    def test_sigkill_during_publish_leaves_no_torn_file(self, tmp_path):
        config = config_for()
        expected, expected_root = oracle(config, seed=2)
        out = tmp_path / "s"
        run = run_sharded(out, config, seed=2,
                          chaos={1: {"sigkill_on_publish_window": 10}})
        assert run.status == "done"
        assert run.restarts >= 1
        assert run.result == expected
        assert run.digest_root == expected_root
        # Every published exchange file parses; the kill left at most
        # debris with a non-.json suffix that readers never match.
        from repro.parallel.exchange import read_exchange

        for path in exchange_files(out):
            shard = int(path.split(os.sep)[-2][1:])
            window = int(os.path.basename(path)[1:-5])
            read_exchange(path, shard, window)  # raises if torn

    def test_published_windows_are_never_republished(self, tmp_path):
        """A restarted shard replays windows it already published; the
        skip-if-exists publish must leave the original bytes alone."""
        out = tmp_path / "s"
        config = config_for()
        box = {}

        def target():
            box["run"] = run_sharded(
                out, config, seed=1,
                chaos={0: {"sigkill_at_cycle": 41}})

        worker = threading.Thread(target=target)
        worker.start()
        early = {}
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and len(early) < 4:
            early = exchange_files(out)
            time.sleep(0.01)
        worker.join(timeout=90)
        assert not worker.is_alive()
        assert box["run"].status == "done"
        assert box["run"].restarts >= 1
        final = exchange_files(out)
        for path, digest in early.items():
            assert final[path] == digest, f"{path} was republished"

    def test_wedged_shard_detected_and_restarted(self, tmp_path):
        config = config_for()
        expected, expected_root = oracle(config, seed=1)
        start = time.monotonic()
        run = run_sharded(tmp_path / "s", config, seed=1,
                          chaos={1: {"wedge_at_window": 6}},
                          window_timeout=1.5)
        elapsed = time.monotonic() - start
        assert run.status == "done"
        assert run.restarts >= 1
        assert run.result == expected
        assert run.digest_root == expected_root
        # Detection is bounded by the barrier watchdog, not the (15s)
        # lease: the whole run, including recovery, beats one lease.
        assert elapsed < 15
        events = [json.loads(line) for line in
                  (tmp_path / "s" / "journal.jsonl").read_text().splitlines()]
        reasons = [e.get("reason") for e in events
                   if e["event"] == "restart"]
        assert "wedged" in reasons

    def test_unrecoverable_shard_raises_after_max_restarts(self, tmp_path):
        from repro.parallel import ShardRunError

        config = config_for()
        with pytest.raises(ShardRunError, match="max_restarts"):
            # Wedge chaos would only fire on attempt 1; a kill at a
            # cycle the run never reaches can't be the trigger either,
            # so use an impossible window to fail fast instead: kill
            # attempt 1 and give the supervisor no restart budget.
            run_sharded(tmp_path / "s", config, seed=1,
                        chaos={0: {"sigkill_at_cycle": 5}},
                        max_restarts=0)


class TestGracefulDrain:
    def test_sigterm_drain_then_resume_matches_uninterrupted(self, tmp_path):
        """Flag-file drain (what the coordinator's SIGTERM handler
        writes) checkpoints mid-run; the resumed run must finish
        bit-identical to a run that was never interrupted."""
        config = config_for()
        expected, expected_root = oracle(config, seed=1, warmup=200,
                                         measure=600)
        out = tmp_path / "s"
        box = {}

        def target():
            box["run"] = run_sharded(out, config, seed=1,
                                     warmup=200, measure=600)

        worker = threading.Thread(target=target)
        worker.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not exchange_files(out):
            time.sleep(0.005)
        flag = drain_flag_path(str(out))
        with atomic_write(flag) as fh:
            fh.write("drain\n")
        worker.join(timeout=90)
        assert not worker.is_alive()
        assert box["run"].status == "drained"
        events = [json.loads(line) for line in
                  (out / "journal.jsonl").read_text().splitlines()]
        assert {"drain_begin", "drain_complete"} <= \
            {e["event"] for e in events}
        # Published windows survive the drain/resume cycle untouched.
        parked = exchange_files(out)
        resumed = run_sharded(out, config, seed=1, warmup=200, measure=600)
        assert resumed.status == "done"
        assert resumed.result == expected
        assert resumed.digest_root == expected_root
        final = exchange_files(out)
        for path, digest in parked.items():
            assert final[path] == digest

    def test_drain_before_any_window_still_resumes(self, tmp_path):
        config = config_for()
        expected, expected_root = oracle(config, seed=2)
        out = tmp_path / "s"
        os.makedirs(os.path.dirname(drain_flag_path(str(out))))
        with atomic_write(drain_flag_path(str(out))) as fh:
            fh.write("drain\n")
        # A pre-existing flag belongs to a previous invocation and is
        # cleared at startup, so this run completes normally.
        run = run_sharded(out, config, seed=2)
        assert run.status == "done"
        assert run.result == expected
        assert run.digest_root == expected_root


class TestCoordinatorCrash:
    CLI = ("--topology", "mesh", "--mesh-k", "4", "--allocator", "islip1",
           "--chaining", "disabled", "--seed", "1", "--rate", "0.25",
           "--warmup", "400", "--measure", "1200", "--drain", "400",
           "--shards", "2")

    def spawn(self, out_dir, *extra):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "shard", *self.CLI,
             "--out-dir", str(out_dir), *extra],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    def wait_for_exchange(self, out_dir, count=2, timeout=60):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(exchange_files(out_dir)) >= count:
                return
            time.sleep(0.01)
        raise AssertionError("no exchange traffic before deadline")

    def test_sigkilled_coordinator_resumes_bit_identically(self, tmp_path):
        out = tmp_path / "s"
        proc = self.spawn(out)
        try:
            self.wait_for_exchange(out)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        rerun = self.spawn(out, "--check-single")
        stdout, stderr = rerun.communicate(timeout=110)
        assert rerun.returncode == 0, stderr
        assert "bit-identical" in stdout

    def test_sigterm_exits_5_and_resume_completes(self, tmp_path):
        out = tmp_path / "s"
        proc = self.spawn(out)
        try:
            self.wait_for_exchange(out)
            proc.terminate()  # SIGTERM: graceful drain
            stdout, _stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert proc.returncode == 5
        assert "resume with the same --out-dir" in stdout
        rerun = self.spawn(out, "--check-single")
        stdout, stderr = rerun.communicate(timeout=110)
        assert rerun.returncode == 0, stderr
        assert "bit-identical" in stdout
