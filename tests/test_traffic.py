"""Tests for traffic patterns and injection processes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic import (
    BernoulliInjector,
    BimodalLength,
    BitComplement,
    FixedLength,
    Neighbor,
    RandomPermutation,
    Shuffle,
    Tornado,
    Transpose,
    UniformRandom,
    build_pattern,
    MESH_PATTERNS,
    FBFLY_PATTERNS,
)


class TestPatterns:
    def test_uniform_never_self(self):
        pat = UniformRandom(64)
        rng = random.Random(0)
        for src in range(64):
            for _ in range(20):
                assert pat.dest(src, rng) != src

    def test_uniform_covers_all_destinations(self):
        pat = UniformRandom(8)
        rng = random.Random(1)
        seen = {pat.dest(0, rng) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_permutation_is_fixed_and_self_free(self):
        rng = random.Random(2)
        pat = RandomPermutation(64, rng)
        for src in range(64):
            d = pat.dest(src, rng)
            assert d == pat.dest(src, rng)  # deterministic
            assert d != src
        assert sorted(pat.perm) == list(range(64))

    def test_shuffle_rotates_bits(self):
        pat = Shuffle(64)
        # 0b000001 -> 0b000010 ; 0b100000 -> 0b000001
        assert pat.dest(1, None) == 2
        assert pat.dest(32, None) == 1
        assert pat.dest(0, None) == 0  # fixed point

    def test_shuffle_requires_power_of_two(self):
        with pytest.raises(ValueError):
            Shuffle(48)

    def test_bitcomp(self):
        pat = BitComplement(64)
        assert pat.dest(0, None) == 63
        assert pat.dest(21, None) == 42
        for src in range(64):
            assert pat.dest(pat.dest(src, None), None) == src  # involution

    def test_tornado_shift(self):
        pat = Tornado(64)  # 8x8 grid, shift = ceil(8/2)-1 = 3
        # (0,0) -> (3,3) = terminal 27
        assert pat.dest(0, None) == 27
        # wraps: (6,6)=54 -> (1,1)=9
        assert pat.dest(54, None) == 9

    def test_transpose(self):
        pat = Transpose(64)
        # (x=2,y=5)=42 -> (x=5,y=2)=21
        assert pat.dest(42, None) == 21
        assert pat.dest(0, None) == 0  # diagonal fixed point

    def test_neighbor(self):
        pat = Neighbor(64)
        # (0,0) -> (1,1) = 9
        assert pat.dest(0, None) == 9

    def test_grid_patterns_need_square_count(self):
        with pytest.raises(ValueError):
            Tornado(48)

    @pytest.mark.parametrize("name", FBFLY_PATTERNS)
    def test_build_pattern_all_names(self, name):
        pat = build_pattern(name, 64, random.Random(0))
        d = pat.dest(5, random.Random(1))
        assert 0 <= d < 64

    def test_build_pattern_unknown(self):
        with pytest.raises(ValueError):
            build_pattern("zigzag", 64, random.Random(0))

    def test_mesh_pattern_list_matches_paper(self):
        assert MESH_PATTERNS == (
            "uniform", "permutation", "shuffle", "bitcomp", "tornado",
        )

    @pytest.mark.parametrize("name", FBFLY_PATTERNS)
    def test_patterns_are_permutation_or_uniform(self, name):
        """Deterministic patterns map each src to exactly one dest in range."""
        pat = build_pattern(name, 64, random.Random(3))
        rng = random.Random(4)
        for src in range(64):
            assert 0 <= pat.dest(src, rng) < 64


class TestLengthDistributions:
    def test_fixed(self):
        d = FixedLength(5)
        assert d.sample(random.Random(0)) == 5
        assert d.mean == 5.0

    def test_fixed_rejects_zero(self):
        with pytest.raises(ValueError):
            FixedLength(0)

    def test_bimodal_mean(self):
        d = BimodalLength(short=1, long=5, short_fraction=0.5)
        assert d.mean == 3.0

    def test_bimodal_samples_both(self):
        d = BimodalLength(1, 5)
        rng = random.Random(0)
        seen = {d.sample(rng) for _ in range(100)}
        assert seen == {1, 5}

    def test_bimodal_extreme_fractions(self):
        rng = random.Random(0)
        assert BimodalLength(1, 5, short_fraction=1.0).sample(rng) == 1
        assert BimodalLength(1, 5, short_fraction=0.0).sample(rng) == 5

    def test_bimodal_validation(self):
        with pytest.raises(ValueError):
            BimodalLength(1, 5, short_fraction=1.5)


class TestBernoulliInjector:
    def test_rate_zero_generates_nothing(self):
        inj = BernoulliInjector(8, UniformRandom(8), 0.0, FixedLength(1), random.Random(0))
        assert inj.generate(0) == []

    def test_rate_one_single_flit_saturates(self):
        inj = BernoulliInjector(8, UniformRandom(8), 1.0, FixedLength(1), random.Random(0))
        packets = inj.generate(0)
        assert len(packets) == 8  # probability 1 per terminal

    def test_flit_rate_accounts_for_packet_length(self):
        """Offered flit rate should approximate the requested rate."""
        rng = random.Random(7)
        inj = BernoulliInjector(64, UniformRandom(64), 0.4, FixedLength(4), rng)
        cycles = 500
        flits = sum(p.size for c in range(cycles) for p in inj.generate(c))
        measured = flits / cycles / 64
        assert 0.35 < measured < 0.45

    def test_disabled_injector(self):
        inj = BernoulliInjector(8, UniformRandom(8), 1.0, FixedLength(1), random.Random(0))
        inj.enabled = False
        assert inj.generate(0) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliInjector(8, UniformRandom(8), -0.1, FixedLength(1), random.Random(0))

    def test_self_loops_dropped(self):
        """Patterns with fixed points (transpose diagonal) inject nothing there."""
        inj = BernoulliInjector(64, Transpose(64), 1.0, FixedLength(1), random.Random(0))
        packets = inj.generate(0)
        srcs = {p.src for p in packets}
        diagonal = {y * 8 + x for x in range(8) for y in range(8) if x == y}
        assert srcs.isdisjoint(diagonal)

    def test_packet_fields(self):
        inj = BernoulliInjector(8, UniformRandom(8), 1.0, FixedLength(3), random.Random(0))
        for p in inj.generate(42):
            assert p.time_created == 42
            assert p.size == 3
            assert p.src != p.dest
