"""Checkpoint machinery: component round-trips, file format, refusals."""

import gzip
import json
import os

import pytest

from repro.arbiters.matrix import MatrixArbiter
from repro.arbiters.round_robin import RoundRobinArbiter
from repro.allocators import make_allocator
from repro.checkpoint import (
    Checkpointer,
    CheckpointError,
    RestoreContext,
    SnapshotContext,
    capture_run,
    config_hash,
    lengths_from_spec,
    lengths_spec,
    load_checkpoint,
    restore_run,
    save_checkpoint,
    verify_resumable,
)
from repro.network import flit as flitmod
from repro.network.config import mesh_config
from repro.network.flit import Flit, Packet
from repro.obs.artifacts import atomic_write
from repro.routing.torus_dor import TorusRouteState
from repro.routing.ugal import UGALState
from repro.sim.runner import SimulationRun, run_simulation
from repro.traffic.injection import BimodalLength, FixedLength


RUN = dict(pattern="uniform", rate=0.3, warmup=100, measure=200, drain=100)


def _fresh_pids():
    flitmod.set_next_packet_id(0)


# ---------------------------------------------------------------------------
# packet / flit interning


class TestPacketInterning:
    def test_flits_of_one_packet_share_identity_after_restore(self):
        packet = Packet(src=1, dest=2, size=3, time_created=7)
        flits = [Flit(packet, i, i == 0, i == 2) for i in range(3)]
        ctx = SnapshotContext()
        blobs = [ctx.flit(f) for f in flits]
        assert len(ctx.packets) == 1

        rctx = RestoreContext(ctx.packets)
        restored = [rctx.flit(b) for b in blobs]
        assert restored[0].packet is restored[1].packet is restored[2].packet
        assert restored[0].is_head and restored[2].is_tail
        assert restored[0].packet.pid == packet.pid

    def test_string_keys_from_json_round_trip(self):
        packet = Packet(src=0, dest=1, size=1, time_created=0)
        ctx = SnapshotContext()
        blob = ctx.flit(Flit(packet, 0, True, True))
        # JSON turns int dict keys into strings; the restore side must
        # cope with either form.
        table = json.loads(json.dumps(ctx.packets))
        restored = RestoreContext(table).flit(blob)
        assert restored.packet.pid == packet.pid
        assert restored.packet.dest == 1

    def test_non_scalar_payload_is_refused(self):
        packet = Packet(src=0, dest=1, size=1, time_created=0,
                        payload=object())
        with pytest.raises(CheckpointError, match="payload"):
            SnapshotContext().packet_ref(packet)

    def test_route_state_round_trips(self):
        ugal = UGALState(False, 5)
        ugal.phase = 1
        torus = TorusRouteState()
        torus.crossed_dateline = True
        for state in (None, ugal, torus, ("y_detour", 3)):
            packet = Packet(src=0, dest=1, size=1, time_created=0)
            packet.route_state = state
            ctx = SnapshotContext()
            pid = ctx.packet_ref(packet)
            restored = RestoreContext(ctx.packets).packet(pid)
            if state is None:
                assert restored.route_state is None
            elif isinstance(state, tuple):
                assert restored.route_state == state
            elif isinstance(state, UGALState):
                got = restored.route_state
                assert (got.phase, got.intermediate, got.minimal) == \
                    (state.phase, state.intermediate, state.minimal)
            else:
                got = restored.route_state
                assert (got.crossed_dateline, got.in_y) == \
                    (state.crossed_dateline, state.in_y)


# ---------------------------------------------------------------------------
# arbiter / allocator state


class TestArbiterAllocatorState:
    def test_round_robin_pointer_round_trips(self):
        arb = RoundRobinArbiter(4)
        arb.update(2)
        clone = RoundRobinArbiter(4)
        clone.load_state(arb.state_dict())
        assert clone.pointer == arb.pointer

    def test_matrix_beats_round_trip(self):
        arb = MatrixArbiter(3)
        arb.update(1)
        clone = MatrixArbiter(3)
        clone.load_state(json.loads(json.dumps(arb.state_dict())))
        assert clone.state_dict() == arb.state_dict()

    @pytest.mark.parametrize(
        "kind", ["islip1", "islip2", "oslip1", "pim2", "wavefront",
                 "augmenting"]
    )
    def test_allocator_state_round_trips_through_json(self, kind):
        alloc = make_allocator(kind, 5, 5, seed=17)
        requests = {(i, (i + 1) % 5): 0 for i in range(5)}
        requests.update({(i, i): 0 for i in range(5)})
        alloc.allocate(requests)
        state = json.loads(json.dumps(alloc.state_dict()))
        clone = make_allocator(kind, 5, 5, seed=17)
        clone.load_state(state)
        # Identical state must produce identical grant sequences.
        for _ in range(8):
            assert clone.allocate(requests) == alloc.allocate(requests)


# ---------------------------------------------------------------------------
# run spec / lengths / hashing


class TestRunSpec:
    def test_lengths_spec_round_trips(self):
        fixed = lengths_from_spec(lengths_spec(FixedLength(4)))
        assert isinstance(fixed, FixedLength) and fixed.length == 4
        bi = lengths_from_spec(lengths_spec(BimodalLength(1, 5, 0.6)))
        assert isinstance(bi, BimodalLength)
        assert (bi.short, bi.long, bi.short_fraction) == (1, 5, 0.6)

    def test_config_hash_is_sensitive_to_both_parts(self):
        cfg = mesh_config(mesh_k=4)
        spec = {"pattern": "uniform", "rate": 0.3}
        base = config_hash(cfg, spec)
        assert config_hash(mesh_config(mesh_k=4, seed=2), spec) != base
        assert config_hash(cfg, dict(spec, rate=0.4)) != base
        assert config_hash(mesh_config(mesh_k=4), dict(spec)) == base


# ---------------------------------------------------------------------------
# whole-run capture / restore


def _build_run(config, **kw):
    """A SimulationRun mid-flight (via the runner's own wiring)."""
    from repro.sim.runner import SimulationRun
    from repro.network.network import Network
    from repro.traffic.injection import BernoulliInjector
    from repro.traffic.patterns import build_pattern
    import random

    net = Network(config)
    rng = random.Random(config.seed + 0x5EED)
    pat = build_pattern(kw.get("pattern", "uniform"), net.num_terminals, rng)
    inj = BernoulliInjector(net.num_terminals, pat, kw.get("rate", 0.3),
                            FixedLength(1), rng)
    return SimulationRun(net, inj, kw.get("warmup", 100),
                         kw.get("measure", 200), kw.get("drain", 100))


class TestCaptureRestore:
    def test_capture_restore_capture_is_identical(self):
        _fresh_pids()
        cfg = mesh_config(mesh_k=4, seed=3, chaining="any_input")
        run = _build_run(cfg)
        spec = {"pattern": "uniform", "rate": 0.3}
        # Advance into the warmup so there is real in-flight state.
        net, inj = run.network, run.injector
        net.stats.set_window(100, 300)
        run.phase = "main"
        for _ in range(150):
            for packet in inj.generate(net.cycle):
                net.inject(packet)
            net.step()
        first = capture_run(run, cfg, spec)

        _fresh_pids()
        clone = _build_run(cfg)
        restore_run(clone, json.loads(json.dumps(first)))
        second = capture_run(clone, cfg, spec)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_restore_pins_the_packet_id_counter(self):
        _fresh_pids()
        cfg = mesh_config(mesh_k=4, seed=3)
        run = _build_run(cfg)
        net, inj = run.network, run.injector
        net.stats.set_window(100, 300)
        for _ in range(80):
            for packet in inj.generate(net.cycle):
                net.inject(packet)
            net.step()
        payload = capture_run(run, cfg, {})
        next_pid = flitmod.peek_next_packet_id()
        assert payload["next_pid"] == next_pid

        _fresh_pids()
        clone = _build_run(cfg)
        restore_run(clone, payload)
        assert flitmod.peek_next_packet_id() == next_pid

    def test_snapshot_refused_with_faults_attached(self):
        from repro.faults import FaultController, FaultPlan

        cfg = mesh_config(mesh_k=4)
        run = _build_run(cfg)
        run.network.attach_faults(FaultController(FaultPlan(seed=1)))
        with pytest.raises(CheckpointError, match="fault"):
            capture_run(run, cfg, {})

    def test_run_simulation_refuses_checkpoint_with_faults(self, tmp_path):
        from repro.faults import FaultPlan

        with pytest.raises(CheckpointError):
            run_simulation(
                mesh_config(mesh_k=4), faults=FaultPlan(seed=1),
                checkpoint_path=str(tmp_path / "ck.json"), **RUN
            )


# ---------------------------------------------------------------------------
# file format


class TestCheckpointFiles:
    def _payload(self, tmp_path):
        _fresh_pids()
        cfg = mesh_config(mesh_k=4, seed=3)
        run = _build_run(cfg)
        spec = {"pattern": "uniform", "rate": 0.3}
        return capture_run(run, cfg, spec), cfg, spec

    def test_save_load_round_trip_plain_and_gzip(self, tmp_path):
        payload, _, _ = self._payload(tmp_path)
        plain = tmp_path / "ck.json"
        packed = tmp_path / "ck.json.gz"
        save_checkpoint(str(plain), payload)
        save_checkpoint(str(packed), payload)
        assert load_checkpoint(str(plain)) == payload
        assert load_checkpoint(str(packed)) == payload
        # .gz really is gzip-compressed.
        assert packed.read_bytes()[:2] == b"\x1f\x8b"

    def test_same_state_saves_are_byte_identical(self, tmp_path):
        payload, _, _ = self._payload(tmp_path)
        a, b = tmp_path / "a.json.gz", tmp_path / "b.json.gz"
        save_checkpoint(str(a), payload)
        save_checkpoint(str(b), payload)
        assert a.read_bytes() == b.read_bytes()

    def test_not_a_checkpoint_is_refused(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"hello": "world"}')
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(str(bad))
        garbage = tmp_path / "noise.bin"
        garbage.write_bytes(b"\x00\x01\x02")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(garbage))

    def test_wrong_schema_is_refused(self, tmp_path):
        payload, _, _ = self._payload(tmp_path)
        payload["schema"] = 999
        path = tmp_path / "ck.json"
        save_checkpoint(str(path), payload)
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(str(path))

    def test_config_mismatch_is_refused(self, tmp_path):
        payload, cfg, spec = self._payload(tmp_path)
        with pytest.raises(CheckpointError, match="hash"):
            verify_resumable(payload, mesh_config(mesh_k=4, seed=99), spec)
        with pytest.raises(CheckpointError, match="hash"):
            verify_resumable(payload, cfg, dict(spec, rate=0.9))
        verify_resumable(payload, cfg, spec)  # matching: no raise

    def test_checkpointer_interval_validation(self, tmp_path):
        cfg = mesh_config(mesh_k=4)
        with pytest.raises(ValueError):
            Checkpointer(str(tmp_path / "ck.json"), 0, cfg, {})
        ck = Checkpointer(str(tmp_path / "ck.json"), None, cfg, {})
        assert ck.every == 1000

    def test_checkpointer_fires_on_schedule_once_per_cycle(self, tmp_path):
        _fresh_pids()
        cfg = mesh_config(mesh_k=4, seed=3)
        run = _build_run(cfg)
        ck = Checkpointer(str(tmp_path / "ck.json"), 50, cfg, {})
        net, inj = run.network, run.injector
        net.stats.set_window(100, 300)
        for _ in range(120):
            for packet in inj.generate(net.cycle):
                net.inject(packet)
            net.step()
            ck.maybe_save(run)
            ck.maybe_save(run)  # double call at one cycle: one save
        assert ck.saves == 2  # cycles 50 and 100
        assert ck.last_cycle == 100


# ---------------------------------------------------------------------------
# atomic writes (satellite)


class TestAtomicWrite:
    def test_success_replaces_and_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        with atomic_write(str(target)) as fh:
            fh.write("new")
        assert target.read_text() == "new"
        assert os.listdir(tmp_path) == ["out.json"]

    def test_failure_mid_write_preserves_previous_contents(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(str(target)) as fh:
                fh.write("truncated garbage")
                raise RuntimeError("crash mid-dump")
        assert target.read_text() == "old"
        assert os.listdir(tmp_path) == ["out.json"]  # no stray .tmp

    def test_failure_without_previous_file_leaves_nothing(self, tmp_path):
        target = tmp_path / "fresh.json"
        with pytest.raises(RuntimeError):
            with atomic_write(str(target)) as fh:
                fh.write("partial")
                raise RuntimeError("crash")
        assert os.listdir(tmp_path) == []


# ---------------------------------------------------------------------------
# drain-abort warning (satellite)


class TestDrainAbortWarning:
    def test_aborted_drain_sets_warning_and_emits_event(self):
        from repro.obs.trace import MemorySink, TraceBus

        bus = TraceBus()
        sink = bus.attach(MemorySink())
        # A 1-cycle drain budget cannot empty the network at this load.
        result = run_simulation(
            mesh_config(mesh_k=4, seed=2), pattern="uniform", rate=0.4,
            warmup=100, measure=300, drain=1, trace=bus,
        )
        assert result.drained is False
        assert result.warnings == ["drain_aborted"]
        events = [e for e in sink.events if e["ev"] == "drain_aborted"]
        assert len(events) == 1
        assert events[0]["in_flight"] > 0
        assert "drain_aborted" in json.dumps(result.to_dict())

    def test_clean_drain_has_no_warnings(self):
        result = run_simulation(mesh_config(mesh_k=4, seed=2), **RUN)
        assert result.drained is True
        assert result.warnings is None
