"""Kill/resume equivalence: the checkpoint correctness bar.

A run killed at an arbitrary cycle and resumed from its last checkpoint
must be indistinguishable from an uninterrupted run: bit-identical
SimResult, bit-identical metrics export, and an identical trace-event
stream over the re-executed cycles. Crash-tolerant sweeps must re-run
only the points a killed sweep never finished.
"""

import json
import os

import pytest

from repro.checkpoint import SimulationKilled, load_checkpoint
from repro.network import flit as flitmod
from repro.network.config import mesh_config
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import MemorySink, TraceBus
from repro.sim import parallel as parallel_mod
from repro.sim.parallel import SweepJournal, parallel_sweep
from repro.sim.runner import resume_simulation, run_simulation


RUN = dict(pattern="uniform", rate=0.3, warmup=200, measure=400, drain=300)

#: seed, kill cycle — arbitrary points in warmup, measurement and early
#: drain (the drain usually goes quiescent well before its 300 budget,
#: so the drain-phase kill sits right after injection stops at 600).
CHAOS = [(3, 150), (5, 420), (9, 605)]

CONFIGS = {
    "islip1": dict(allocator="islip1"),
    "wavefront+any_input": dict(allocator="wavefront", chaining="any_input"),
}


def _traced_run(config, **kw):
    """(SimResult, metrics dict, trace events) for one run."""
    flitmod.set_next_packet_id(0)
    bus = TraceBus()
    sink = bus.attach(MemorySink())
    registry = MetricsRegistry()
    result = run_simulation(config, trace=bus, metrics=registry, **kw)
    return result, registry.to_dict(), sink.events


@pytest.mark.parametrize("label", list(CONFIGS))
@pytest.mark.parametrize("seed,kill_at", CHAOS)
def test_killed_and_resumed_run_matches_uninterrupted(
    tmp_path, label, seed, kill_at
):
    config = mesh_config(mesh_k=4, seed=seed, **CONFIGS[label])
    ref_result, ref_metrics, ref_events = _traced_run(config, **RUN)

    ck = str(tmp_path / "ck.json.gz")
    flitmod.set_next_packet_id(0)
    with pytest.raises(SimulationKilled):
        run_simulation(config, checkpoint_path=ck, checkpoint_every=100,
                       kill_at=kill_at, **RUN)
    ck_cycle = load_checkpoint(ck)["cycle"]
    assert 0 < ck_cycle <= kill_at

    flitmod.set_next_packet_id(0)
    bus = TraceBus()
    sink = bus.attach(MemorySink())
    registry = MetricsRegistry()
    res_result = resume_simulation(ck, trace=bus, metrics=registry)

    assert json.dumps(res_result.to_dict(), sort_keys=True) == \
        json.dumps(ref_result.to_dict(), sort_keys=True)
    assert json.dumps(registry.to_dict(), sort_keys=True) == \
        json.dumps(ref_metrics, sort_keys=True)
    # The resumed run re-executes exactly the cycles from the checkpoint
    # on; its whole event stream must equal that suffix of the
    # uninterrupted run's.
    suffix = [e for e in ref_events if e["cycle"] >= ck_cycle]
    assert sink.events == suffix
    assert sink.events  # the comparison is not vacuous


def test_mid_warmup_restore_keeps_same_seed_runs_identical(tmp_path):
    """Two same-seed runs stay trace-identical even when one of them is
    checkpointed and restored mid-warmup (RNG state survives the trip)."""
    config = mesh_config(mesh_k=4, seed=11)
    _, _, ref_events = _traced_run(config, **RUN)

    ck = str(tmp_path / "warm.json")
    flitmod.set_next_packet_id(0)
    with pytest.raises(SimulationKilled):
        # Kill inside the warmup (warmup=200), checkpoint right at 100.
        run_simulation(config, checkpoint_path=ck, checkpoint_every=100,
                       kill_at=120, **RUN)
    assert load_checkpoint(ck)["cycle"] == 100

    flitmod.set_next_packet_id(0)
    bus = TraceBus()
    sink = bus.attach(MemorySink())
    resume_simulation(ck, trace=bus)
    assert sink.events == [e for e in ref_events if e["cycle"] >= 100]


def test_resumed_checkpoint_of_checkpoint_still_matches(tmp_path):
    """Kill → resume → kill → resume converges on the same answer."""
    config = mesh_config(mesh_k=4, seed=7, chaining="same_input")
    ref_result, _, _ = _traced_run(config, **RUN)

    ck = str(tmp_path / "ck.json")
    flitmod.set_next_packet_id(0)
    with pytest.raises(SimulationKilled):
        run_simulation(config, checkpoint_path=ck, checkpoint_every=100,
                       kill_at=250, **RUN)
    flitmod.set_next_packet_id(0)
    with pytest.raises(SimulationKilled):
        resume_simulation(ck, checkpoint_path=ck, checkpoint_every=100,
                          kill_at=600)
    flitmod.set_next_packet_id(0)
    result = resume_simulation(ck)
    assert json.dumps(result.to_dict(), sort_keys=True) == \
        json.dumps(ref_result.to_dict(), sort_keys=True)


def test_wavefront_same_seed_instances_are_deterministic():
    """Seeded wavefront allocators no longer depend on process-global
    construction order — two same-seed instances behave identically."""
    from repro.allocators import make_allocator

    a = make_allocator("wavefront", 5, 5, seed=42)
    b = make_allocator("wavefront", 5, 5, seed=42)
    requests = {(i, (i + 2) % 5): 0 for i in range(5)}
    for _ in range(16):
        assert a.allocate(requests) == b.allocate(requests)


# ---------------------------------------------------------------------------
# crash-tolerant sweeps


SWEEP_RUN = dict(warmup=100, measure=200, drain=0, pattern="uniform",
                 packet_length=1)
RATES = [0.1, 0.2, 0.3, 0.4]


def test_sweep_resume_reruns_only_missing_points(tmp_path, monkeypatch):
    sweep_dir = str(tmp_path / "sweep")
    config = mesh_config(mesh_k=4, seed=3)
    full = parallel_sweep(config, RATES, workers=0, journal_dir=sweep_dir,
                          **SWEEP_RUN)
    assert full.complete and len(full) == len(RATES)

    # Simulate a sweep killed after two points: keep only the journal's
    # first two lines.
    journal_path = os.path.join(sweep_dir, SweepJournal.FILENAME)
    with open(journal_path) as fh:
        lines = fh.readlines()
    assert len(lines) == len(RATES)
    with open(journal_path, "w") as fh:
        fh.writelines(lines[:2])

    calls = []
    real_run_point = parallel_mod._run_point

    def counting_run_point(point):
        calls.append(point.rate)
        return real_run_point(point)

    monkeypatch.setattr(parallel_mod, "_run_point", counting_run_point)
    resumed = parallel_sweep(config, RATES, workers=0,
                             journal_dir=sweep_dir, resume=True, **SWEEP_RUN)
    assert calls == RATES[2:]  # only the missing points ran
    assert [rate for rate, _ in resumed] == RATES
    assert json.dumps([(r, res.to_dict()) for r, res in resumed]) == \
        json.dumps([(r, res.to_dict()) for r, res in full])


def test_sweep_without_resume_truncates_stale_journal(tmp_path):
    sweep_dir = str(tmp_path / "sweep")
    config = mesh_config(mesh_k=4, seed=3)
    parallel_sweep(config, RATES[:2], workers=0, journal_dir=sweep_dir,
                   **SWEEP_RUN)
    journal = SweepJournal(sweep_dir)
    assert len(journal.completed()) == 2
    # A fresh sweep with different rates must not inherit those entries.
    parallel_sweep(config, RATES[2:], workers=0, journal_dir=sweep_dir,
                   **SWEEP_RUN)
    done = journal.completed()
    assert len(done) == 2
    assert all(entry["rate"] in RATES[2:] for entry in done.values())


def test_journal_discards_torn_tail(tmp_path):
    journal = SweepJournal(str(tmp_path))
    import repro  # noqa: F401  (SimResult import path sanity)
    from repro.stats.summary import SimResult, LatencySummary

    result = SimResult(0.1, 0.1, 0.1, LatencySummary.of([1]),
                       LatencySummary.of([1]), LatencySummary.of([0]))
    journal.record("a|0|0.1", "a", 0.1, result)
    journal.record("a|1|0.2", "a", 0.2, result)
    with open(journal.path, "a") as fh:
        fh.write('{"key": "a|2|0.3", "label"')  # crash mid-append
    done = journal.completed()
    assert set(done) == {"a|0|0.1", "a|1|0.2"}


def test_resume_without_journal_dir_is_an_error():
    with pytest.raises(ValueError, match="journal_dir"):
        parallel_sweep(mesh_config(mesh_k=4), [0.1], workers=0, resume=True,
                       **SWEEP_RUN)
