"""Hierarchical state digests: stability, sensitivity, stream format.

The digest tentpole's correctness bar: the same experiment always
produces the same whole-run fingerprint (in-process, across process
restarts, and across kill/resume), a single mutated state field changes
exactly the owning component's digest and is named field-exactly by
state_diff, and the JSONL stream round-trips.
"""

import json
import subprocess
import sys

import pytest

from repro.checkpoint import SimulationKilled, load_checkpoint
from repro.fastcore.soa import (
    state_arrays,
    state_arrays_from_state,
    verify_state_arrays,
)
from repro.checkpoint import SnapshotContext
from repro.network import flit as flitmod
from repro.network.config import mesh_config
from repro.obs.digest import (
    OBSERVER_PATHS,
    DigestRecorder,
    MISSING,
    component_digest,
    digest_network,
    merkle_root,
    network_digests,
    network_states,
    read_digest_stream,
    state_diff,
)
from repro.sim.runner import resume_simulation, run_simulation

RUN = dict(pattern="uniform", rate=0.3, warmup=100, measure=300, drain=200)


def _run_with_digest(config, path=None, every=32, **overrides):
    flitmod.set_next_packet_id(0)
    recorder = DigestRecorder(every=every, path=path)
    run_simulation(config, digest=recorder, **{**RUN, **overrides})
    return recorder


def _config(seed=7, **kw):
    return mesh_config(mesh_k=4, chaining="any_input", seed=seed, **kw)


# ---------------------------------------------------------------------------
# fingerprint stability


class TestFingerprintStability:
    def test_same_config_same_fingerprint_in_process(self):
        a = _run_with_digest(_config())
        b = _run_with_digest(_config())
        assert a.fingerprint == b.fingerprint
        assert a.digests_taken == b.digests_taken > 0

    def test_different_seed_different_fingerprint(self):
        a = _run_with_digest(_config(seed=7))
        b = _run_with_digest(_config(seed=8))
        assert a.fingerprint != b.fingerprint

    def test_backends_agree_on_fingerprint(self):
        a = _run_with_digest(_config())
        b = _run_with_digest(_config(backend="fast"))
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_stable_across_process_restarts(self, tmp_path):
        def one_run(name):
            out = subprocess.run(
                [sys.executable, "-m", "repro", "run",
                 "--mesh-k", "4", "--chaining", "any_input", "--seed", "7",
                 "--rate", "0.3", "--warmup", "100", "--measure", "300",
                 "--drain", "200", "--digest", str(tmp_path / name),
                 "--digest-every", "32", "--json"],
                capture_output=True, text=True, check=True,
            )
            return json.loads(out.stdout)["digest"]["fingerprint"]

        first = one_run("a.jsonl")
        second = one_run("b.jsonl")
        assert first == second
        # And the subprocess agrees with an in-process run.
        assert first == _run_with_digest(_config(), every=32).fingerprint

    def test_resumed_run_reproduces_digest_suffix(self, tmp_path):
        ref = _run_with_digest(_config(), every=32)
        ck = str(tmp_path / "ck.json.gz")
        flitmod.set_next_packet_id(0)
        with pytest.raises(SimulationKilled):
            run_simulation(_config(), checkpoint_path=ck,
                           checkpoint_every=50, kill_at=220, **RUN)
        ck_cycle = load_checkpoint(ck)["cycle"]

        flitmod.set_next_packet_id(0)
        recorder = DigestRecorder(every=32)
        resume_simulation(ck, digest=recorder)

        by_cycle = {r["cycle"]: r for r in ref.records}
        resumed = [r for r in recorder.records if r["cycle"] > ck_cycle]
        assert resumed  # the comparison is not vacuous
        for record in resumed:
            assert record == by_cycle[record["cycle"]], (
                f"digest at cycle {record['cycle']} differs after resume"
            )


# ---------------------------------------------------------------------------
# sensitivity: a single mutated field is localized exactly


class TestMutationSensitivity:
    def _mid_run_network(self):
        import random

        from repro.network.network import build_network
        from repro.traffic.injection import BernoulliInjector, FixedLength
        from repro.traffic.patterns import build_pattern

        flitmod.set_next_packet_id(0)
        config = _config()
        net = build_network(config)
        rng = random.Random(config.seed + 0x5EED)
        pat = build_pattern("uniform", net.num_terminals, rng)
        injector = BernoulliInjector(
            net.num_terminals, pat, 0.3, FixedLength(1), rng
        )
        net.stats.set_window(100, 400)
        for _ in range(150):
            for packet in injector.generate(net.cycle):
                net.inject(packet)
            net.step()
        return net, injector

    def test_single_field_mutation_flips_only_owner_digest(self):
        net, injector = self._mid_run_network()
        before = network_digests(net, injector)
        states_before = network_states(net, injector)

        net.routers[5].credits[1][2] += 1
        after = network_digests(net, injector)

        changed = [p for p in before if before[p] != after[p]]
        assert changed == ["router[5]"]
        assert merkle_root(before) != merkle_root(after)

        states_after = network_states(net, injector)
        diff = state_diff(
            states_before["router[5]"]["state"],
            states_after["router[5]"]["state"],
        )
        assert [d["key"] for d in diff] == ["credits[1][2]"]
        assert diff[0]["b"] == diff[0]["a"] + 1

    def test_component_digest_reflects_arbiter_pointer(self):
        net, _ = self._mid_run_network()
        router = net.routers[0]
        before = component_digest(router)
        arb = router.switch_alloc._input_arbiters[0]
        arb.pointer = (arb.pointer + 1) % router.switch_alloc.num_outputs
        assert component_digest(router) != before


# ---------------------------------------------------------------------------
# stream format


class TestDigestStream:
    def test_stream_roundtrip(self, tmp_path):
        path = str(tmp_path / "digests.jsonl")
        recorder = _run_with_digest(_config(), path=path)

        stream = read_digest_stream(path)
        assert stream.header["schema"] == 1
        assert stream.every == 32
        assert stream.header["config"]["seed"] == 7
        assert "backend" not in stream.header["config"]
        assert stream.fingerprint == recorder.fingerprint
        assert stream.cycles()  # periodic records present
        # The on-disk records cover the recorder's (the final record
        # may overwrite a same-cycle periodic one in the cycle map).
        by_cycle = {r["cycle"]: r for r in recorder.records}
        for cycle, record in stream.records.items():
            assert record["root"] == by_cycle[cycle]["root"]

    def test_gzip_stream(self, tmp_path):
        path = str(tmp_path / "digests.jsonl.gz")
        recorder = _run_with_digest(_config(), path=path)
        stream = read_digest_stream(path)
        assert stream.fingerprint == recorder.fingerprint

    def test_periodic_records_skip_observers_final_covers_them(self):
        recorder = _run_with_digest(_config())
        periodic = [r for r in recorder.records if not r.get("final")]
        final = [r for r in recorder.records if r.get("final")]
        assert periodic and len(final) == 1
        for record in periodic:
            for path in OBSERVER_PATHS:
                assert path not in record["components"]
        for path in OBSERVER_PATHS:
            assert path in final[0]["components"]

    def test_recorder_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            DigestRecorder(every=0)


# ---------------------------------------------------------------------------
# state_diff semantics


class TestStateDiff:
    def test_missing_keys_and_limit(self):
        a = {"x": [1, 2], "only_a": 1}
        b = {"x": [1, 3, 4], "only_b": 2}
        diff = state_diff(a, b)
        by_key = {d["key"]: d for d in diff}
        assert by_key["x[1]"] == {"key": "x[1]", "a": 2, "b": 3}
        assert by_key["x[2]"]["a"] == MISSING and by_key["x[2]"]["b"] == 4
        assert by_key["only_a"]["b"] == MISSING
        assert by_key["only_b"]["a"] == MISSING
        assert len(state_diff(a, b, limit=2)) == 2

    def test_equal_states_empty_diff(self):
        state = {"a": {"b": [1, {"c": None}]}}
        assert state_diff(state, json.loads(json.dumps(state))) == []


# ---------------------------------------------------------------------------
# SoA export is derivable from the same canonical state (satellite)


class TestSoADerivability:
    def _fast_mid_run(self):
        import random

        from repro.network.network import build_network
        from repro.traffic.injection import BernoulliInjector, FixedLength
        from repro.traffic.patterns import build_pattern

        flitmod.set_next_packet_id(0)
        config = _config(backend="fast")
        net = build_network(config)
        rng = random.Random(config.seed + 0x5EED)
        pat = build_pattern("uniform", net.num_terminals, rng)
        injector = BernoulliInjector(
            net.num_terminals, pat, 0.3, FixedLength(1), rng
        )
        net.stats.set_window(100, 400)
        for _ in range(150):
            for packet in injector.generate(net.cycle):
                net.inject(packet)
            net.step()
        return net

    def test_soa_export_matches_state_dict_derivation(self):
        net = self._fast_mid_run()
        live = verify_state_arrays(net)
        derived = state_arrays_from_state(
            [r.state_dict(SnapshotContext()) for r in net.routers],
            net.config.num_vcs,
        )
        assert set(live) == set(derived)

    def test_drifted_array_is_named(self):
        net = self._fast_mid_run()
        router = net.routers[3]
        router.credits[1][0] += 5  # live-object drift vs nothing: still
        # consistent — state_dict reads the same live object.
        verify_state_arrays(net)
        # Simulate genuine SoA drift: state_arrays reads live objects,
        # so fake a mismatch by comparing against tampered state blobs.
        states = [r.state_dict(SnapshotContext()) for r in net.routers]
        states[3]["credits"][1][0] -= 5
        derived = state_arrays_from_state(states, net.config.num_vcs)
        live = state_arrays(net)
        same = {
            key: (live[key] == derived[key]
                  if isinstance(live[key], list)
                  else bool((live[key] == derived[key]).all()))
            for key in live
        }
        assert not same["credits"]
        assert all(v for k, v in same.items() if k != "credits")
