"""CLI smoke and behavior tests."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCLI:
    def test_run_basic(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0
        assert "accepted (mean)" in text
        assert "0.1" in text

    def test_run_with_chaining_reports_chains(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.8",
            "--chaining", "any_input",
            "--warmup", "100", "--measure", "300", "--drain", "0",
        )
        assert code == 0
        assert "chains" in text

    def test_sweep(self):
        code, text = run_cli(
            "sweep", "--mesh-k", "4", "--rates", "0.05", "0.1",
            "--warmup", "100", "--measure", "200",
        )
        assert code == 0
        lines = [l for l in text.splitlines() if l.strip()]
        assert len(lines) == 3  # header + two rates

    def test_saturation(self):
        code, text = run_cli(
            "saturation", "--mesh-k", "4",
            "--warmup", "100", "--measure", "200",
        )
        assert code == 0
        assert "saturation rate" in text

    def test_cost(self):
        code, text = run_cli("cost", "--radix", "5")
        assert code == 0
        assert "wavefront vs packet chaining" in text
        assert "1.25x area" in text

    def test_cmp(self):
        code, text = run_cli(
            "cmp", "--workload", "canneal",
            "--warmup", "50", "--measure", "150",
        )
        assert code == 0
        assert "IPC" in text

    def test_bimodal_flag(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.2", "--bimodal",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0

    def test_fbfly_selects_ugal(self):
        code, text = run_cli(
            "run", "--topology", "fbfly", "--rate", "0.2",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_parser_rejects_bad_chaining(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--chaining", "sometimes"])


class TestFaultCLI:
    def _plan(self, tmp_path):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 3,
            "links": [{"router": 5, "port": 0, "cycle": 50}],
        }))
        return str(path)

    def test_run_with_fault_flags(self, tmp_path):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "4000",
            "--faults", self._plan(tmp_path), "--reliable",
            "--invariants", "strict", "--watchdog", "500",
        )
        assert code == 0
        assert "faults" in text
        assert "reliability" in text
        assert "invariants" in text
        assert "watchdog" in text

    def test_run_without_fault_flags_prints_no_fault_lines(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "50", "--measure", "100", "--drain", "200",
        )
        assert code == 0
        assert "reliability" not in text
        assert "invariants" not in text

    def test_faults_subcommand_with_plan(self, tmp_path):
        code, text = run_cli(
            "faults", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "4000",
            "--plan", self._plan(tmp_path),
        )
        assert code == 0
        assert "1 link" in text
        assert "0 failed" in text
        assert "0 violations" in text

    def test_faults_subcommand_generated_plan(self, tmp_path):
        saved = tmp_path / "generated.json"
        code, text = run_cli(
            "faults", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "4000",
            "--random-links", "2", "--drop", "0.001",
            "--save-plan", str(saved),
        )
        assert code == 0
        assert saved.exists()
        import json

        from repro.faults import FaultPlan

        plan = FaultPlan.load(saved)
        assert len(plan.links) == 2
        assert plan.flit_errors.drop == 0.001

    def test_faults_subcommand_json(self, tmp_path):
        import json

        code, text = run_cli(
            "faults", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "4000",
            "--plan", self._plan(tmp_path), "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["faults"]["injection"]["failed_links"] == 1
        assert payload["plan"]["links"][0]["router"] == 5


class TestTelemetryCLI:
    def test_run_progress_keeps_json_stdout_clean(self, capsys):
        import json as json_mod
        import sys

        from repro.cli import main

        code = main([
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "1500", "--drain", "0",
            "--progress", "--json",
        ], out=sys.stdout)
        captured = capsys.readouterr()
        assert code == 0
        payload = json_mod.loads(captured.out)  # stdout stays machine-readable
        assert payload["cycles_run"] > 0
        assert "cycles/sec" in captured.err  # progress went to stderr

    def test_run_heartbeat_file(self, tmp_path):
        from repro.obs.telemetry import read_heartbeats

        hb = tmp_path / "run.hb.jsonl"
        code, _ = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "400", "--drain", "0",
            "--heartbeat", str(hb), "--heartbeat-every", "100",
        )
        assert code == 0
        records = read_heartbeats(str(hb))
        assert records[0]["ev"] == "start"
        assert records[-1]["ev"] == "finish"
        assert any(r["ev"] == "heartbeat" for r in records)

    def test_sweep_telemetry_then_watch(self, tmp_path):
        import json as json_mod

        directory = str(tmp_path / "tel")
        code, _ = run_cli(
            "sweep", "--mesh-k", "4", "--rates", "0.05", "0.1",
            "--warmup", "100", "--measure", "300",
            "--telemetry", directory, "--heartbeat-every", "100",
        )
        assert code == 0
        code, text = run_cli("watch", directory, "--once")
        assert code == 0
        assert "2 points (2 done)" in text
        assert "sweep finished" in text
        code, text = run_cli("watch", directory, "--json")
        assert code == 0
        state = json_mod.loads(text)
        assert state["all_finished"] is True
        assert [p["status"] for p in state["points"]] == ["done", "done"]
        assert all(p["wall_seconds"] > 0 for p in state["points"])

    def test_watch_missing_directory(self, tmp_path):
        code, text = run_cli("watch", str(tmp_path / "nope"), "--once")
        assert code == 2
        assert "no telemetry directory" in text

    def test_report_on_profile_with_collapsed_export(self, tmp_path):
        profile = tmp_path / "prof.json"
        stacks = tmp_path / "stacks.txt"
        code, _ = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.2",
            "--warmup", "100", "--measure", "400", "--drain", "0",
            "--profile", str(profile),
        )
        assert code == 0
        code, text = run_cli(
            "report", str(profile), "--collapsed", str(stacks)
        )
        assert code == 0
        assert "wall-clock hot spots" in text
        lines = stacks.read_text().splitlines()
        assert lines
        assert all(line.startswith("sim;") for line in lines)

    def test_report_collapsed_requires_profile(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text('["ev", 0, {}]\n')
        code, text = run_cli(
            "report", str(trace), "--collapsed", str(tmp_path / "s.txt")
        )
        assert code == 2
        assert "--collapsed needs a profile JSON" in text
