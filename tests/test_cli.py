"""CLI smoke and behavior tests."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCLI:
    def test_run_basic(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0
        assert "accepted (mean)" in text
        assert "0.1" in text

    def test_run_with_chaining_reports_chains(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.8",
            "--chaining", "any_input",
            "--warmup", "100", "--measure", "300", "--drain", "0",
        )
        assert code == 0
        assert "chains" in text

    def test_sweep(self):
        code, text = run_cli(
            "sweep", "--mesh-k", "4", "--rates", "0.05", "0.1",
            "--warmup", "100", "--measure", "200",
        )
        assert code == 0
        lines = [l for l in text.splitlines() if l.strip()]
        assert len(lines) == 3  # header + two rates

    def test_saturation(self):
        code, text = run_cli(
            "saturation", "--mesh-k", "4",
            "--warmup", "100", "--measure", "200",
        )
        assert code == 0
        assert "saturation rate" in text

    def test_cost(self):
        code, text = run_cli("cost", "--radix", "5")
        assert code == 0
        assert "wavefront vs packet chaining" in text
        assert "1.25x area" in text

    def test_cmp(self):
        code, text = run_cli(
            "cmp", "--workload", "canneal",
            "--warmup", "50", "--measure", "150",
        )
        assert code == 0
        assert "IPC" in text

    def test_bimodal_flag(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.2", "--bimodal",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0

    def test_fbfly_selects_ugal(self):
        code, text = run_cli(
            "run", "--topology", "fbfly", "--rate", "0.2",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_parser_rejects_bad_chaining(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--chaining", "sometimes"])


class TestFaultCLI:
    def _plan(self, tmp_path):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 3,
            "links": [{"router": 5, "port": 0, "cycle": 50}],
        }))
        return str(path)

    def test_run_with_fault_flags(self, tmp_path):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "4000",
            "--faults", self._plan(tmp_path), "--reliable",
            "--invariants", "strict", "--watchdog", "500",
        )
        assert code == 0
        assert "faults" in text
        assert "reliability" in text
        assert "invariants" in text
        assert "watchdog" in text

    def test_run_without_fault_flags_prints_no_fault_lines(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "50", "--measure", "100", "--drain", "200",
        )
        assert code == 0
        assert "reliability" not in text
        assert "invariants" not in text

    def test_faults_subcommand_with_plan(self, tmp_path):
        code, text = run_cli(
            "faults", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "4000",
            "--plan", self._plan(tmp_path),
        )
        assert code == 0
        assert "1 link" in text
        assert "0 failed" in text
        assert "0 violations" in text

    def test_faults_subcommand_generated_plan(self, tmp_path):
        saved = tmp_path / "generated.json"
        code, text = run_cli(
            "faults", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "4000",
            "--random-links", "2", "--drop", "0.001",
            "--save-plan", str(saved),
        )
        assert code == 0
        assert saved.exists()
        import json

        from repro.faults import FaultPlan

        plan = FaultPlan.load(saved)
        assert len(plan.links) == 2
        assert plan.flit_errors.drop == 0.001

    def test_faults_subcommand_json(self, tmp_path):
        import json

        code, text = run_cli(
            "faults", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "4000",
            "--plan", self._plan(tmp_path), "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["faults"]["injection"]["failed_links"] == 1
        assert payload["plan"]["links"][0]["router"] == 5
