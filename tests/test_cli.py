"""CLI smoke and behavior tests."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCLI:
    def test_run_basic(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0
        assert "accepted (mean)" in text
        assert "0.1" in text

    def test_run_with_chaining_reports_chains(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.8",
            "--chaining", "any_input",
            "--warmup", "100", "--measure", "300", "--drain", "0",
        )
        assert code == 0
        assert "chains" in text

    def test_sweep(self):
        code, text = run_cli(
            "sweep", "--mesh-k", "4", "--rates", "0.05", "0.1",
            "--warmup", "100", "--measure", "200",
        )
        assert code == 0
        lines = [l for l in text.splitlines() if l.strip()]
        assert len(lines) == 3  # header + two rates

    def test_saturation(self):
        code, text = run_cli(
            "saturation", "--mesh-k", "4",
            "--warmup", "100", "--measure", "200",
        )
        assert code == 0
        assert "saturation rate" in text

    def test_cost(self):
        code, text = run_cli("cost", "--radix", "5")
        assert code == 0
        assert "wavefront vs packet chaining" in text
        assert "1.25x area" in text

    def test_cmp(self):
        code, text = run_cli(
            "cmp", "--workload", "canneal",
            "--warmup", "50", "--measure", "150",
        )
        assert code == 0
        assert "IPC" in text

    def test_bimodal_flag(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.2", "--bimodal",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0

    def test_fbfly_selects_ugal(self):
        code, text = run_cli(
            "run", "--topology", "fbfly", "--rate", "0.2",
            "--warmup", "100", "--measure", "200", "--drain", "200",
        )
        assert code == 0

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_parser_rejects_bad_chaining(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--chaining", "sometimes"])
