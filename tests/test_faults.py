"""Fault injection, invariant checking, watchdog, and reliability tests.

The directional acceptance test at the bottom is the ISSUE's scenario:
an 8x8 mesh with chaining enabled recovers full delivery after
permanent and transient link faults plus background flit errors, with
strict invariants silent throughout (no credit leaks).
"""

import json
import random

import pytest

from repro.faults import (
    FaultController,
    FaultPlan,
    HangWatchdog,
    InvariantChecker,
    ReliableTransport,
)
from repro.faults.invariants import InvariantViolation
from repro.faults.plan import FlitErrors, LinkFault, RouterFault
from repro.faults.watchdog import WatchdogError
from repro.network.config import mesh_config
from repro.network.flit import Packet
from repro.network.network import Network
from repro.obs.trace import NULL_TRACE
from repro.sim.runner import SimulationRun, run_simulation
from repro.topology.mesh import (
    PORT_TERMINAL,
    PORT_XMINUS,
    PORT_XPLUS,
    PORT_YMINUS,
    PORT_YPLUS,
)
from repro.traffic.injection import BernoulliInjector, FixedLength
from repro.traffic.patterns import build_pattern


def run_traffic(net, rate=0.1, warmup=200, measure=600, drain=6000,
                length=4, seed=99):
    """Drive `net` with uniform random traffic; returns the SimResult."""
    rng = random.Random(seed)
    pat = build_pattern("uniform", net.num_terminals, rng)
    inj = BernoulliInjector(net.num_terminals, pat, rate,
                            FixedLength(length), rng)
    return SimulationRun(net, inj, warmup, measure, drain).execute()


def flit_balance(net):
    """(sent, consumed, dropped, in_flight) — conservation quadruple."""
    sent = sum(s.flits_sent for s in net.sources)
    consumed = sum(k.flits_consumed for k in net.sinks)
    dropped = net.faults.dropped_flits if net.faults is not None else 0
    in_flight = net.in_flight_flits() + sum(
        s.flit_channel.in_flight for s in net.sources
    )
    return sent, consumed, dropped, in_flight


class TestFaultPlan:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            links=[LinkFault(9, 0, 300), LinkFault(3, 2, 200, duration=300)],
            routers=[RouterFault(5, 800)],
            flit_errors=FlitErrors(drop=0.001, corrupt=0.0002),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.to_dict() == plan.to_dict()
        assert not loaded.empty
        assert loaded.links[0].permanent
        assert not loaded.links[1].permanent

    def test_validation_against_topology(self):
        topo = Network(mesh_config(mesh_k=4)).topology
        FaultPlan(links=[LinkFault(5, PORT_XPLUS, 0)]).validate(topo)
        # Terminal ports are legal fault targets.
        FaultPlan(links=[LinkFault(5, PORT_TERMINAL, 0)]).validate(topo)
        with pytest.raises(ValueError, match="unwired"):
            # Router 3 is (3, 0): no X+ neighbour on the east edge.
            FaultPlan(links=[LinkFault(3, PORT_XPLUS, 0)]).validate(topo)
        with pytest.raises(ValueError, match="topology has 16"):
            FaultPlan(routers=[RouterFault(99, 0)]).validate(topo)
        with pytest.raises(ValueError, match="topology has 16"):
            FaultPlan(links=[LinkFault(16, 0, 0)]).validate(topo)

    def test_field_validation(self):
        with pytest.raises(ValueError):
            LinkFault(0, 0, cycle=-1)
        with pytest.raises(ValueError):
            LinkFault(0, 0, cycle=0, duration=0)
        with pytest.raises(ValueError):
            FlitErrors(drop=1.5)
        with pytest.raises(ValueError):
            FlitErrors(drop=0.7, corrupt=0.7)
        with pytest.raises(ValueError):
            FlitErrors(end=0, start=10)
        assert FaultPlan().empty

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"seed": 1, "typo": []})


class TestLinkFaults:
    def test_permanent_fault_conserves_everything(self):
        net = Network(mesh_config(mesh_k=4))
        controller = net.attach_faults(
            FaultController(FaultPlan(links=[LinkFault(5, PORT_XPLUS, 50)]))
        )
        checker = net.attach_invariants(InvariantChecker(period=16))
        result = run_traffic(net, rate=0.1)
        assert result.drained
        assert controller.failed_links == 1
        # Traffic that would have crossed the dead link went around it;
        # flits are only dropped if caught mid-link at failure time.
        assert controller.detours > 0
        sent, consumed, dropped, in_flight = flit_balance(net)
        assert in_flight == 0
        assert sent == consumed + dropped
        # One more full sweep on the drained network: nothing leaked.
        assert checker.check(net.cycle) == []

    def test_transient_fault_full_recovery(self):
        """ISSUE's directional test: chaining-enabled routers recover
        full delivery after a transient link fault, without leaking
        credits (strict invariants stay silent)."""
        net = Network(mesh_config(mesh_k=4, chaining="any_input"))
        controller = net.attach_faults(
            FaultController(FaultPlan(
                links=[LinkFault(5, PORT_XPLUS, 100, duration=200)]
            ))
        )
        transport = net.attach_transport(ReliableTransport(timeout=300))
        net.attach_invariants(InvariantChecker(period=16))
        result = run_traffic(net, rate=0.15)
        assert result.drained
        assert controller.repaired_links == 1
        assert not controller.dead_ports  # the link came back
        assert transport.delivered == transport.tracked
        assert transport.failed == []
        assert transport.duplicates == 0

    def test_drops_counted_and_retransmitted(self):
        net = Network(mesh_config(mesh_k=4))
        controller = net.attach_faults(FaultController(FaultPlan(
            seed=3, flit_errors=FlitErrors(drop=0.002)
        )))
        transport = net.attach_transport(ReliableTransport(timeout=300))
        result = run_traffic(net, rate=0.1)
        assert result.drained
        assert controller.dropped_flits > 0
        assert transport.retransmissions > 0
        assert transport.delivered == transport.tracked
        summary = result.faults
        assert summary["injection"]["dropped_flits"] == controller.dropped_flits
        assert summary["transport"]["failed"] == 0

    def test_corruption_discarded_at_sink(self):
        net = Network(mesh_config(mesh_k=4))
        controller = net.attach_faults(FaultController(FaultPlan(
            seed=5, flit_errors=FlitErrors(corrupt=0.005)
        )))
        transport = net.attach_transport(ReliableTransport(timeout=300))
        net.attach_invariants(InvariantChecker(period=16))
        result = run_traffic(net, rate=0.1)
        assert result.drained
        assert controller.corrupted_flits > 0
        # Corrupted packets consumed buffer space all the way to the
        # sink yet were never delivered; retransmission covered them.
        assert transport.delivered == transport.tracked
        assert transport.failed == []


class TestRouterFaults:
    def test_router_death_drains_and_fails_only_its_flows(self):
        net = Network(mesh_config(mesh_k=4))
        controller = net.attach_faults(FaultController(FaultPlan(
            routers=[RouterFault(5, 100)]
        )))
        transport = net.attach_transport(
            ReliableTransport(timeout=100, max_retries=2)
        )
        checker = net.attach_invariants(InvariantChecker(period=16))
        result = run_traffic(net, rate=0.1, drain=8000)
        assert result.drained
        assert controller.failed_routers == 1
        assert 5 in controller.dead_routers
        assert not net.sources[5].alive
        # Every abandoned flow touches the dead terminal; everything
        # else was delivered.
        assert all(5 in flow for flow, _ in transport.failed)
        sent, consumed, dropped, in_flight = flit_balance(net)
        assert in_flight == 0
        assert sent == consumed + dropped
        assert checker.check(net.cycle) == []

    def test_transient_repair_never_resurrects_dead_router_links(self):
        # A transient fault on a link whose router later dies must not
        # bring the link back when its repair event fires.
        net = Network(mesh_config(mesh_k=4))
        controller = net.attach_faults(FaultController(FaultPlan(
            links=[LinkFault(5, PORT_XPLUS, 50, duration=200)],
            routers=[RouterFault(5, 100)],
        )))
        run_traffic(net, rate=0.05, warmup=100, measure=400)
        assert (5, PORT_XPLUS) in controller.dead_ports


class TestInvariants:
    def test_silent_on_fault_free_run(self):
        net = Network(mesh_config(mesh_k=4, chaining="any_input"))
        checker = net.attach_invariants(InvariantChecker(period=16))
        result = run_traffic(net, rate=0.2)  # strict mode: raises on leak
        assert result.drained
        assert checker.checks_run > 10
        assert checker.summary()["violations"] == 0

    def test_strict_raises_on_seeded_credit_leak(self):
        net = Network(mesh_config(mesh_k=4))
        checker = net.attach_invariants(InvariantChecker(period=16))
        net.routers[0].credits[PORT_XPLUS][0] += 1
        with pytest.raises(InvariantViolation, match="credit"):
            checker.check(net.cycle)

    def test_report_mode_records_and_continues(self):
        net = Network(mesh_config(mesh_k=4))
        checker = net.attach_invariants(
            InvariantChecker(period=16, mode="report")
        )
        net.routers[0].credits[PORT_XPLUS][0] = -1
        found = checker.check(net.cycle)
        assert found  # out-of-range credit plus the broken loop sum
        assert checker.violations
        assert checker.summary()["violations"] == len(checker.violations)

    def test_detects_connection_table_corruption(self):
        net = Network(mesh_config(mesh_k=4))
        checker = net.attach_invariants(InvariantChecker())
        net.routers[0].conn_out[0] = (1, 0)  # conn_in side not set
        with pytest.raises(InvariantViolation, match="disagree"):
            checker.check(net.cycle)


def wedge_router(net, router_id):
    """Zero every output credit of one router so nothing can leave it."""
    router = net.routers[router_id]
    for p in range(router.radix):
        for v in range(len(router.credits[p])):
            router.credits[p][v] = 0


class TestWatchdog:
    def test_seeded_deadlock_detected_with_dump(self, tmp_path):
        dump = tmp_path / "hang.json"
        net = Network(mesh_config(mesh_k=4))
        net.attach_watchdog(
            HangWatchdog(window=200, check_period=50, dump_path=str(dump))
        )
        wedge_router(net, 0)
        net.inject(Packet(0, 15, 4, net.cycle))
        with pytest.raises(WatchdogError) as exc:
            for _ in range(2000):
                net.step()
        bundle = exc.value.bundle
        assert bundle["kind"] == "deadlock"
        assert bundle["in_flight"] > 0
        assert bundle["stalled_fronts"]  # the wedged packet shows up
        assert dump.exists()
        on_disk = json.loads(dump.read_text())
        assert on_disk["kind"] == "deadlock"
        assert on_disk["stalled_fronts"][0]["router"] == 0

    def test_report_mode_records_and_disarms(self):
        net = Network(mesh_config(mesh_k=4))
        watchdog = net.attach_watchdog(
            HangWatchdog(window=200, check_period=50, mode="report")
        )
        wedge_router(net, 0)
        net.inject(Packet(0, 15, 4, net.cycle))
        for _ in range(2000):
            net.step()
        assert len(watchdog.hangs) == 1  # disarmed after the first report
        assert watchdog.summary()["hangs"] == 1

    def test_quiet_on_healthy_run(self):
        net = Network(mesh_config(mesh_k=4))
        watchdog = net.attach_watchdog(HangWatchdog(window=100))
        result = run_traffic(net, rate=0.1)
        assert result.drained
        assert watchdog.hangs == []


class _FakeStats:
    def __init__(self):
        self.listeners = []

    def add_listener(self, listener):
        self.listeners.append(listener)


class _FakeNet:
    """Just enough network for ReliableTransport unit tests."""

    def __init__(self):
        self.stats = _FakeStats()
        self.trace = NULL_TRACE
        self.transport = None
        self.cycle = 0
        self.injected = []

    def inject(self, packet):
        self.injected.append(packet)
        self.transport.on_inject(packet, self.cycle)


def _transport(**kwargs):
    net = _FakeNet()
    net.transport = ReliableTransport(**kwargs).bind(net)
    return net, net.transport


class TestReliableTransport:
    def test_duplicate_deliveries_suppressed(self):
        net, tx = _transport()
        p = Packet(0, 1, 4, 0)
        net.inject(p)
        tx.on_packet_ejected(p, 10)
        tx.on_packet_ejected(p, 12)
        assert tx.delivered == 1
        assert tx.duplicates == 1

    def test_ack_clears_pending(self):
        net, tx = _transport(ack_delay=8)
        p = Packet(0, 1, 4, 0)
        net.inject(p)
        tx.on_packet_ejected(p, 10)
        tx.step(17)
        assert not tx.idle()  # ack still in flight
        tx.step(18)
        assert tx.idle()

    def test_backoff_then_give_up(self):
        net, tx = _transport(timeout=10, max_retries=2, backoff=2.0)
        p = Packet(0, 1, 4, 0)
        net.cycle = 0
        net.inject(p)
        net.cycle = 10
        tx.step(10)  # attempt 1, deadline 10 + 20
        assert tx.retransmissions == 1
        net.cycle = 30
        tx.step(30)  # attempt 2, deadline 30 + 40
        assert tx.retransmissions == 2
        tx.step(70)  # retry budget exhausted
        assert tx.retransmissions == 2
        assert tx.failed == [((0, 1), 0)]
        assert tx.idle()
        # Retransmissions carried the same flow/seq tag, fresh packets.
        assert [q.rtag.attempt for q in net.injected] == [0, 1, 2]
        assert len({q.pid for q in net.injected}) == 3

    def test_stale_deadline_ignored_after_retransmit(self):
        net, tx = _transport(timeout=10, max_retries=4)
        net.inject(Packet(0, 1, 4, 0))
        net.cycle = 10
        tx.step(10)
        clone = net.injected[-1]
        tx.on_packet_ejected(clone, 15)
        tx.step(100)  # the attempt-0 deadline must not refire
        assert tx.retransmissions == 1
        assert tx.delivered == 1

    def test_per_flow_sequence_numbers(self):
        net, tx = _transport()
        a1, a2 = Packet(0, 1, 1, 0), Packet(0, 1, 1, 0)
        b = Packet(0, 2, 1, 0)
        for p in (a1, a2, b):
            net.inject(p)
        assert (a1.rtag.seq, a2.rtag.seq, b.rtag.seq) == (0, 1, 0)
        assert tx.tracked == 3


class TestDORDetour:
    def make(self, dead, k=4):
        net = Network(mesh_config(mesh_k=k))
        taken = []
        net.routing.attach_faults(
            set(dead),
            on_detour=lambda r, pref, chosen, pkt: taken.append(
                (r, pref, chosen)
            ),
        )
        return net.routing, taken

    def packet(self, routing, src, dest):
        p = Packet(src, dest, 1, 0)
        routing.prepare(p)
        return p

    def test_dead_x_hop_sidesteps_statelessly(self):
        routing, taken = self.make({(0, PORT_XPLUS)})
        p = self.packet(routing, 0, 3)  # row 0, straight east
        port, _ = routing.next_hop(0, p)
        assert port == PORT_YPLUS  # only live Y on the edge row
        assert p.route_state is None  # stateless: DOR resumes next hop
        assert taken == [(0, PORT_XPLUS, PORT_YPLUS)]
        # From the adjacent row plain DOR heads east again.
        assert routing.next_hop(4, p) == (PORT_XPLUS, 0)

    def test_dead_y_hop_leaves_detour_token(self):
        routing, taken = self.make({(0, PORT_YPLUS)})
        p = self.packet(routing, 0, 8)  # straight north in column 0
        port, _ = routing.next_hop(0, p)
        assert port == PORT_XPLUS
        assert p.route_state == ("y_detour", PORT_YPLUS)
        # The next router honors the token: Y move before X resolution.
        assert routing.next_hop(1, p) == (PORT_YPLUS, 0)
        assert p.route_state is None

    def test_reverse_port_never_chosen(self):
        # Mid-path east-bound packet hits a dead X+ with both Y ports
        # available: it must side-step, never turn back west.
        routing, _ = self.make({(5, PORT_XPLUS)})
        p = self.packet(routing, 4, 7)  # row 1: router 5 is mid-path
        port, _ = routing.next_hop(5, p)
        assert port in (PORT_YPLUS, PORT_YMINUS)
        assert port != PORT_XMINUS

    def test_unroutable_returns_dead_preferred(self):
        # Corner router 0 with both forward options dead: the preferred
        # (dead) port comes back so the router pre-pass can kill.
        routing, taken = self.make({(0, PORT_XPLUS), (0, PORT_YPLUS)})
        p = self.packet(routing, 0, 3)
        assert routing.next_hop(0, p) == (PORT_XPLUS, 0)
        assert taken == []  # no detour happened, nothing to count

    def test_dead_ejection_port_is_unroutable(self):
        routing, _ = self.make({(3, PORT_TERMINAL)})
        p = self.packet(routing, 0, 3)
        assert routing.next_hop(3, p) == (PORT_TERMINAL, 0)


class TestRunnerIntegration:
    def test_seed_override_does_not_mutate_config(self):
        cfg = mesh_config(mesh_k=4, seed=1)
        run_simulation(cfg, rate=0.05, warmup=10, measure=20, drain=200,
                       seed=42)
        assert cfg.seed == 1

    def test_fault_summary_flows_into_result(self):
        cfg = mesh_config(mesh_k=4)
        plan = FaultPlan(links=[LinkFault(5, PORT_XPLUS, 50)])
        result = run_simulation(
            cfg, rate=0.05, warmup=100, measure=200, drain=4000,
            faults=plan,  # a bare plan is accepted and wrapped
            transport=ReliableTransport(timeout=200),
            invariants=InvariantChecker(period=32),
            watchdog=HangWatchdog(window=500),
        )
        assert result.drained
        parts = result.faults
        assert parts["injection"]["failed_links"] == 1
        assert parts["transport"]["failed"] == 0
        assert parts["invariants"]["violations"] == 0
        assert parts["watchdog"]["hangs"] == 0
        # SimResult stays JSON-serializable with the new field.
        json.dumps(result.to_dict())

    def test_no_faults_attached_keeps_result_faults_none(self):
        result = run_simulation(mesh_config(mesh_k=4), rate=0.05,
                                warmup=10, measure=20, drain=200)
        assert result.faults is None


class TestAcceptanceScenario:
    def test_8x8_chaining_recovers_after_faults(self):
        """ISSUE acceptance: seeded plan with >= 2 permanent link
        faults plus transient flit drops on an 8x8 mesh with chaining;
        the run completes with flit conservation exactly balanced and
        every retransmittable packet delivered."""
        net = Network(mesh_config(mesh_k=8, chaining="any_input"))
        plan = FaultPlan(
            seed=7,
            links=[
                LinkFault(9, PORT_XPLUS, 300),
                LinkFault(27, PORT_YPLUS, 400),
                LinkFault(40, PORT_XPLUS, 200, duration=400),
            ],
            flit_errors=FlitErrors(drop=0.0005, corrupt=0.0002),
        )
        controller = net.attach_faults(FaultController(plan))
        transport = net.attach_transport(ReliableTransport(timeout=600))
        checker = net.attach_invariants(InvariantChecker(period=64))
        net.attach_watchdog(HangWatchdog(window=1500))
        result = run_traffic(net, rate=0.2, warmup=300, measure=900,
                             drain=8000, length=4, seed=11)
        assert result.drained
        assert controller.failed_links == 3
        assert controller.repaired_links == 1
        assert controller.dropped_flits > 0
        assert controller.detours > 0
        # Every packet the transport tracked was delivered exactly once.
        assert transport.delivered == transport.tracked
        assert transport.failed == []
        # Flit conservation exactly balanced on the drained network.
        sent, consumed, dropped, in_flight = flit_balance(net)
        assert in_flight == 0
        assert sent == consumed + dropped
        assert checker.check(net.cycle) == []
