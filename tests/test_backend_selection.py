"""Backend selection: config plumbing, CLI, fallback, and bench twins.

The ``backend`` field is an execution detail that must survive config
round-trips, be selectable from the CLI, and *never* silently degrade:
when the fast core cannot honor a run (fault injection, reliable
transport), the fallback to the reference core carries a
:class:`BackendFallbackWarning`.
"""

import dataclasses
import io
import json

import pytest

from repro.cli import main
from repro.faults.plan import FaultPlan, LinkFault
from repro.network import flit as flitmod
from repro.network.config import NetworkConfig, mesh_config
from repro.network.network import BackendFallbackWarning, build_network
from repro.sim.runner import run_simulation


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


RUN = dict(pattern="uniform", rate=0.2, warmup=50, measure=150, drain=100)


class TestConfigRoundTrip:
    def test_backend_survives_dict_round_trip(self):
        config = mesh_config(mesh_k=4, backend="fast")
        data = config.to_dict()
        assert data["backend"] == "fast"
        assert NetworkConfig.from_dict(data).backend == "fast"

    def test_backend_survives_file_round_trip(self, tmp_path):
        path = str(tmp_path / "config.json")
        mesh_config(mesh_k=4, backend="fast").save(path)
        assert NetworkConfig.load(path).backend == "fast"

    def test_backend_defaults_to_reference(self):
        assert mesh_config(mesh_k=4).backend == "reference"

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            mesh_config(mesh_k=4, backend="turbo")


class TestBuildNetwork:
    def test_fast_backend_builds_fast_network(self):
        from repro.fastcore import FastNetwork

        net = build_network(mesh_config(mesh_k=4, backend="fast"))
        assert type(net) is FastNetwork

    def test_reference_backend_builds_reference_network(self):
        from repro.network.network import Network

        net = build_network(mesh_config(mesh_k=4))
        assert type(net) is Network

    def test_disallowed_fast_falls_back_with_warning(self):
        from repro.network.network import Network

        with pytest.warns(BackendFallbackWarning):
            net = build_network(
                mesh_config(mesh_k=4, backend="fast"), allow_fast=False
            )
        assert type(net) is Network

    def test_fast_network_refuses_faults_and_transport(self):
        net = build_network(mesh_config(mesh_k=4, backend="fast"))
        with pytest.raises(RuntimeError, match="fault"):
            net.attach_faults(object())
        with pytest.raises(RuntimeError, match="transport"):
            net.attach_transport(object())


class TestRunnerFallback:
    def test_faults_force_reference_core_with_warning(self):
        plan = FaultPlan(links=[LinkFault(router=5, port=1, cycle=60,
                                          duration=20)])
        config = mesh_config(mesh_k=4, backend="fast")
        with pytest.warns(BackendFallbackWarning):
            result = run_simulation(config, faults=plan, **RUN)
        assert result.offered_rate > 0

    def test_fault_free_fast_run_does_not_warn(self):
        import warnings

        config = mesh_config(mesh_k=4, backend="fast")
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            result = run_simulation(config, **RUN)
        assert result.offered_rate > 0


class TestCLI:
    def test_run_backend_fast(self):
        code, text = run_cli(
            "run", "--mesh-k", "4", "--rate", "0.1", "--backend", "fast",
            "--warmup", "100", "--measure", "200", "--drain", "100",
        )
        assert code == 0
        assert "accepted (mean)" in text

    def test_run_backend_fast_matches_reference_output(self):
        args = ("run", "--mesh-k", "4", "--rate", "0.2", "--json",
                "--chaining", "any_input",
                "--warmup", "100", "--measure", "200", "--drain", "100")
        flitmod.set_next_packet_id(0)
        _, ref_text = run_cli(*args)
        flitmod.set_next_packet_id(0)
        _, fast_text = run_cli(*args, "--backend", "fast")
        assert json.loads(fast_text) == json.loads(ref_text)

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            run_cli("run", "--backend", "turbo")


class TestBenchTwins:
    def test_fast_twin_shares_grid_point(self):
        from repro.bench import default_suite

        cases = default_suite(quick=True)
        by_name = {c.name: c for c in cases}
        twin = by_name["mesh4-islip1-chain-fast"]
        ref = by_name["mesh4-islip1-chain"]
        assert twin.backend == "fast"
        assert dataclasses.replace(twin, name=ref.name,
                                   backend="reference") == ref
        assert twin.config().backend == "fast"

    def test_backend_speedups_pairs_twins(self):
        from repro.bench import backend_speedups

        cases = {
            "a": {"backend": "reference", "cycles_per_sec": 100.0},
            "a-fast": {"backend": "fast", "cycles_per_sec": 320.0},
            "b": {"backend": "reference", "cycles_per_sec": 100.0},
        }
        speedups = backend_speedups(cases)
        assert speedups == {"a": pytest.approx(3.2)}


class TestStateArrays:
    def test_state_arrays_shapes_and_values(self):
        config = mesh_config(mesh_k=4, backend="fast")
        net = build_network(config)
        arrays = net.state_arrays()
        rows = arrays["credits"]
        assert len(rows) == len(net.routers)
        # Idle network: all credits at full depth, occupancy zero.
        radix = net.routers[0].radix
        assert list(rows[0][0]) == [config.vc_buf_depth] * config.num_vcs
        occupancy = arrays["occupancy"]
        assert all(
            x == 0 for row in occupancy for port in row[:radix] for x in port
        )
        conn_out = arrays["conn_out"]
        assert list(conn_out[0][0]) == [-1, -1]
