"""Tests for the simulation harness and statistics collection."""

import pytest

from repro import ChainingScheme, mesh_config, run_simulation
from repro.sim.sweep import average_results, find_saturation, rate_sweep
from repro.stats.collector import StatsCollector
from repro.stats.summary import LatencySummary
from repro.network.flit import Packet


class TestStatsCollector:
    def test_window_gating(self):
        c = StatsCollector(4)
        c.set_window(10, 20)
        p = Packet(1, 2, 3, 12)
        c.record_created(p, 12)
        assert c.packets_created_per_source[1] == 1
        c.record_created(Packet(1, 2, 3, 5), 5)  # outside window
        assert c.packets_created_per_source[1] == 1

    def test_latency_requires_in_window_creation(self):
        c = StatsCollector(4)
        c.set_window(10, 20)
        early = Packet(0, 1, 1, 5)
        c.record_ejected(early, 15)
        assert c.packet_latencies == []
        ok = Packet(0, 1, 1, 12)
        ok.time_injected = 13
        c.record_ejected(ok, 18)
        assert c.packet_latencies == [6]
        assert c.network_latencies == [5]

    def test_late_ejection_still_counts_latency(self):
        """Packets created in-window but ejected during drain count."""
        c = StatsCollector(4)
        c.set_window(10, 20)
        p = Packet(0, 1, 1, 19)
        c.record_ejected(p, 35)
        assert c.packet_latencies == [16]

    def test_throughput_per_source(self):
        c = StatsCollector(2)
        c.set_window(0, 100)

        class F:
            def __init__(self, src):
                self.packet = Packet(src, 1 - src, 1, 0)

        for _ in range(50):
            c.record_flit_ejected(F(0), 10)
        for _ in range(25):
            c.record_flit_ejected(F(1), 10)
        c.packets_created_per_source = [1, 1]
        assert c.throughput_per_source() == [0.5, 0.25]
        assert c.min_throughput() == 0.25
        assert c.avg_throughput() == pytest.approx(0.375)

    def test_min_ignores_inactive_sources(self):
        """Sources that never offered traffic don't drag the minimum."""
        c = StatsCollector(3)
        c.set_window(0, 10)
        c.flits_ejected_per_source = [5, 7, 0]
        c.packets_created_per_source = [1, 1, 0]  # source 2 inactive
        assert c.min_throughput() == 0.5

    def test_empty_collector(self):
        c = StatsCollector(4)
        assert c.avg_throughput() == 0.0
        assert c.min_throughput() == 0.0


class TestLatencySummary:
    def test_empty(self):
        s = LatencySummary.of([])
        assert s.count == 0 and s.mean == 0.0

    def test_basic(self):
        s = LatencySummary.of([1, 2, 3, 4, 100])
        assert s.count == 5
        assert s.mean == 22
        assert s.max == 100
        assert s.p50 == 3

    def test_p99(self):
        s = LatencySummary.of(list(range(200)))
        assert s.p99 == 198


class TestRunSimulation:
    def test_low_load_accepted_matches_offered(self):
        cfg = mesh_config(mesh_k=4)
        r = run_simulation(cfg, rate=0.1, warmup=200, measure=600, drain=400)
        assert r.avg_throughput == pytest.approx(0.1, abs=0.02)
        assert not r.saturated

    def test_latency_reasonable_at_low_load(self):
        cfg = mesh_config(mesh_k=4)
        r = run_simulation(cfg, rate=0.05, warmup=200, measure=400, drain=400)
        # Zero-load: ~3 cycles/hop * avg ~2.7 hops + injection/ejection.
        assert 5 < r.packet_latency.mean < 20

    def test_chaining_does_not_break_low_load(self):
        cfg = mesh_config(mesh_k=4, chaining=ChainingScheme.ANY_INPUT)
        r = run_simulation(cfg, rate=0.1, warmup=200, measure=400, drain=400)
        assert r.avg_throughput == pytest.approx(0.1, abs=0.02)

    def test_seed_reproducibility(self):
        results = [
            run_simulation(
                mesh_config(mesh_k=4), rate=0.2, warmup=100, measure=300,
                drain=200, seed=42,
            ).avg_throughput
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        a = run_simulation(
            mesh_config(mesh_k=4), rate=0.2, warmup=100, measure=300, seed=1
        )
        b = run_simulation(
            mesh_config(mesh_k=4), rate=0.2, warmup=100, measure=300, seed=2
        )
        assert a.avg_throughput != b.avg_throughput

    def test_chain_stats_populated_only_when_chaining(self):
        base = run_simulation(
            mesh_config(mesh_k=4), rate=0.4, warmup=100, measure=300
        )
        assert base.chain_stats.total_chains == 0
        chained = run_simulation(
            mesh_config(mesh_k=4, chaining=ChainingScheme.ANY_INPUT),
            rate=0.4, warmup=100, measure=300,
        )
        assert chained.chain_stats.total_chains > 0

    def test_bimodal_lengths(self):
        from repro.traffic import BimodalLength

        cfg = mesh_config(mesh_k=4)
        r = run_simulation(
            cfg, rate=0.2, lengths=BimodalLength(1, 5), warmup=200, measure=400
        )
        assert r.avg_throughput == pytest.approx(0.2, abs=0.04)


class TestSweeps:
    def test_rate_sweep_monotone_then_flat(self):
        results = rate_sweep(
            lambda: mesh_config(mesh_k=4),
            rates=[0.1, 0.6],
            warmup=150, measure=400, drain=0,
        )
        (r1, res1), (r2, res2) = results
        assert res1.avg_throughput == pytest.approx(0.1, abs=0.03)
        assert res2.avg_throughput > res1.avg_throughput

    def test_find_saturation_brackets(self):
        rate, tp = find_saturation(
            lambda: mesh_config(mesh_k=4),
            lo=0.05, hi=1.0, tol=0.1,
            warmup=150, measure=300, drain=0,
        )
        assert 0.05 <= rate <= 1.0
        assert tp > 0

    def test_average_results(self):
        results = rate_sweep(
            lambda: mesh_config(mesh_k=4),
            rates=[0.05, 0.1],
            warmup=100, measure=200, drain=0,
        )
        avg = average_results(results, "avg_throughput")
        assert avg == pytest.approx(0.075, abs=0.03)
