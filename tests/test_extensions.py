"""Tests for the extension substrates: torus, cmesh, hotspot, bursty
injection, and their end-to-end behavior."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.config import cmesh_config, torus_config
from repro.network.flit import Packet
from repro.network.network import Network
from repro.routing.torus_dor import DORTorus
from repro.topology import CMesh2D, Torus2D
from repro.topology.mesh import PORT_XMINUS, PORT_XPLUS
from repro.traffic import (
    FixedLength,
    Hotspot,
    MarkovBurstInjector,
    UniformRandom,
    build_pattern,
)


class TestTorusTopology:
    def test_dimensions(self):
        t = Torus2D(8)
        assert t.num_routers == 64
        assert t.radix(0) == 5

    def test_wraparound_links(self):
        t = Torus2D(4)
        east_from_edge = t.link(t.router_at(3, 1), PORT_XPLUS)
        assert east_from_edge.dest_router == t.router_at(0, 1)
        west_from_zero = t.link(t.router_at(0, 2), PORT_XMINUS)
        assert west_from_zero.dest_router == t.router_at(3, 2)

    def test_all_direction_ports_connected(self):
        t = Torus2D(4)
        for r in range(t.num_routers):
            for port in range(4):
                assert t.link(r, port) is not None

    def test_validate(self):
        Torus2D(4).validate()
        Torus2D(5).validate()

    def test_too_small(self):
        with pytest.raises(ValueError):
            Torus2D(2)


class TestCMeshTopology:
    def test_dimensions(self):
        c = CMesh2D(4, concentration=4)
        assert c.num_routers == 16
        assert c.num_terminals == 64
        assert c.radix(0) == 8

    def test_terminal_ports(self):
        c = CMesh2D(4, concentration=4)
        for t in range(64):
            r, p = c.terminal_attachment(t)
            assert r == t // 4
            assert p == 4 + t % 4
            assert c.terminal_at(r, p) == t

    def test_validate(self):
        CMesh2D(4, 4).validate()
        CMesh2D(2, 1).validate()


class TestTorusRouting:
    def setup_method(self):
        self.topo = Torus2D(8)
        self.routing = DORTorus(self.topo)

    def _walk(self, src, dest):
        packet = Packet(src, dest, 1, 0)
        self.routing.prepare(packet)
        router = src
        hops = []
        for _ in range(20):
            port, vc_class = self.routing.next_hop(router, packet)
            if self.topo.is_terminal_port(router, port):
                return hops
            link = self.topo.link(router, port)
            hops.append((router, link.dest_router, vc_class))
            router = link.dest_router
        raise AssertionError("routing did not terminate")

    def test_shortest_direction_wraps(self):
        # 0 -> x=6 on the same row: 2 hops west via wraparound, not 6 east.
        hops = self._walk(self.topo.router_at(0, 0), self.topo.router_at(6, 0))
        assert len(hops) == 2

    def test_dateline_switches_class(self):
        # Westward from x=0 crosses the wrap immediately: class 1 after.
        hops = self._walk(self.topo.router_at(0, 0), self.topo.router_at(6, 0))
        assert hops[0][2] == 1  # crossed the dateline on the first hop

    def test_no_dateline_stays_class_0(self):
        hops = self._walk(self.topo.router_at(1, 1), self.topo.router_at(3, 1))
        assert all(cls == 0 for _, _, cls in hops)

    def test_class_resets_for_second_dimension(self):
        # Wrap in X, then move in Y without wrapping: Y hops class 0.
        hops = self._walk(self.topo.router_at(0, 1), self.topo.router_at(6, 3))
        x_hops = hops[:2]
        y_hops = hops[2:]
        assert all(cls == 1 for _, _, cls in x_hops)
        assert all(cls == 0 for _, _, cls in y_hops)

    @settings(max_examples=100, deadline=None)
    @given(src=st.integers(0, 63), dest=st.integers(0, 63))
    def test_property_minimal_hop_count(self, src, dest):
        if src == dest:
            return
        hops = self._walk(src, dest)
        sx, sy = self.topo.coords(src)
        dx, dy = self.topo.coords(dest)
        ring = lambda a, b: min((a - b) % 8, (b - a) % 8)
        assert len(hops) == ring(sx, dx) + ring(sy, dy)


class TestTorusEndToEnd:
    def test_delivery_and_drain(self):
        net = Network(torus_config(mesh_k=4))
        rng = random.Random(5)
        for _ in range(100):
            src, dest = rng.randrange(16), rng.randrange(16)
            if src != dest:
                net.inject(Packet(src, dest, rng.choice([1, 4]), net.cycle))
        for _ in range(1500):
            if net.in_flight_flits() == 0 and net.backlog() == 0:
                break
            net.step()
        assert net.in_flight_flits() == 0

    def test_no_deadlock_under_sustained_tornado(self):
        """The dateline classes keep the wrap rings deadlock-free."""
        from repro.sim.runner import run_simulation

        result = run_simulation(
            torus_config(chaining="any_input"), pattern="tornado",
            rate=0.6, packet_length=4, warmup=200, measure=400, drain=0,
        )
        assert result.avg_throughput > 0.01  # forward progress


class TestCMeshEndToEnd:
    def test_delivery(self):
        net = Network(cmesh_config())
        rng = random.Random(6)
        done = []

        class Probe:
            def record_flit_ejected(self, flit, cycle):
                done.append(flit)

            def record_ejected(self, packet, cycle):
                pass

        for sink in net.sinks:
            sink.stats = Probe()
        count = 0
        for _ in range(60):
            src, dest = rng.randrange(64), rng.randrange(64)
            if src != dest:
                net.inject(Packet(src, dest, 1, net.cycle))
                count += 1
        for _ in range(800):
            net.step()
        assert len(done) == count

    def test_chaining_on_cmesh(self):
        from repro.sim.runner import run_simulation

        result = run_simulation(
            cmesh_config(chaining="any_input"), pattern="uniform",
            rate=0.8, packet_length=1, warmup=200, measure=400, drain=0,
        )
        assert result.chain_stats.total_chains > 0


class TestHotspot:
    def test_hotspot_bias(self):
        pat = Hotspot(64, hotspots=(7,), fraction=0.5)
        rng = random.Random(0)
        hits = sum(pat.dest(3, rng) == 7 for _ in range(2000))
        assert 800 < hits < 1200  # ~50% (minus uniform hits on 7)

    def test_zero_fraction_is_uniform(self):
        pat = Hotspot(64, hotspots=(7,), fraction=0.0)
        rng = random.Random(0)
        hits = sum(pat.dest(3, rng) == 7 for _ in range(2000))
        assert hits < 100

    def test_hotspot_never_self(self):
        pat = Hotspot(8, hotspots=(3,), fraction=1.0)
        rng = random.Random(1)
        for _ in range(200):
            assert pat.dest(3, rng) != 3

    def test_build_pattern_hotspot(self):
        pat = build_pattern("hotspot", 64, random.Random(0))
        assert isinstance(pat, Hotspot)

    def test_validation(self):
        with pytest.raises(ValueError):
            Hotspot(8, hotspots=())
        with pytest.raises(ValueError):
            Hotspot(8, hotspots=(9,))
        with pytest.raises(ValueError):
            Hotspot(8, hotspots=(1,), fraction=1.5)


class TestMarkovBurstInjector:
    def _make(self, rate, burst_length=16, seed=0):
        rng = random.Random(seed)
        return MarkovBurstInjector(
            32, UniformRandom(32), rate, FixedLength(1), rng,
            burst_length=burst_length,
        )

    def test_long_run_rate_matches(self):
        inj = self._make(0.3)
        cycles = 6000
        flits = sum(len(inj.generate(c)) for c in range(cycles))
        measured = flits / cycles / 32
        assert 0.24 < measured < 0.36

    def test_burstiness_shows_as_autocorrelation(self):
        """ON periods cluster packets: counts autocorrelate over time.

        A Bernoulli process has zero lag-1 autocorrelation; the Markov
        process holds its ON set for ~burst_length cycles.
        """
        inj = self._make(0.2, burst_length=64, seed=3)
        counts = [len(inj.generate(c)) for c in range(4000)]
        mean = sum(counts) / len(counts)
        var = sum((x - mean) ** 2 for x in counts) / len(counts)
        cov1 = sum(
            (a - mean) * (b - mean) for a, b in zip(counts, counts[1:])
        ) / (len(counts) - 1)
        assert cov1 / var > 0.5

    def test_full_rate_always_on(self):
        inj = self._make(1.0)
        packets = inj.generate(0)
        assert len(packets) >= 25  # nearly every terminal fires

    def test_validation(self):
        with pytest.raises(ValueError):
            self._make(0.3, burst_length=0)
        rng = random.Random(0)
        with pytest.raises(ValueError):
            MarkovBurstInjector(8, UniformRandom(8), 0.2, FixedLength(1),
                                rng, p_on=0.0)

    def test_disabled(self):
        inj = self._make(0.5)
        inj.enabled = False
        assert inj.generate(0) == []
