"""Unit and property tests for repro.arbiters."""

import pytest
from hypothesis import given, strategies as st

from repro.arbiters import (
    MatrixArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    highest_priority_subset,
)


class TestRoundRobinArbiter:
    def test_empty_requests_returns_none(self):
        arb = RoundRobinArbiter(4)
        assert arb.select([]) is None

    def test_single_request_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.select([2]) == 2

    def test_pointer_designates_highest_priority(self):
        arb = RoundRobinArbiter(4, start=2)
        assert arb.select([0, 2, 3]) == 2

    def test_wraps_around(self):
        arb = RoundRobinArbiter(4, start=3)
        assert arb.select([0, 1]) == 0

    def test_update_moves_pointer_past_grant(self):
        arb = RoundRobinArbiter(4)
        winner = arb.select([0, 1])
        arb.update(winner)
        assert arb.pointer == 1
        assert arb.select([0, 1]) == 1

    def test_update_wraps(self):
        arb = RoundRobinArbiter(4)
        arb.update(3)
        assert arb.pointer == 0

    def test_select_does_not_mutate_state(self):
        arb = RoundRobinArbiter(4)
        arb.select([1, 2])
        assert arb.pointer == 0

    def test_round_robin_fairness_over_full_load(self):
        """Under persistent full load every index is served equally often."""
        arb = RoundRobinArbiter(3)
        wins = [0, 0, 0]
        for _ in range(9):
            w = arb.select([0, 1, 2])
            wins[w] += 1
            arb.update(w)
        assert wins == [3, 3, 3]

    def test_out_of_range_request_raises(self):
        arb = RoundRobinArbiter(4)
        with pytest.raises(ValueError):
            arb.select([4])

    def test_out_of_range_update_raises(self):
        arb = RoundRobinArbiter(4)
        with pytest.raises(ValueError):
            arb.update(-1)

    def test_bad_size_raises(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    def test_bad_start_raises(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(4, start=4)

    def test_reset(self):
        arb = RoundRobinArbiter(4, start=2)
        arb.reset()
        assert arb.pointer == 0

    @given(
        size=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    def test_winner_is_always_a_requester(self, size, data):
        arb = RoundRobinArbiter(size)
        for _ in range(5):
            reqs = data.draw(st.lists(st.integers(0, size - 1), unique=True))
            winner = arb.select(reqs)
            if reqs:
                assert winner in reqs
                arb.update(winner)
            else:
                assert winner is None


class TestMatrixArbiter:
    def test_initial_order_prefers_low_index(self):
        arb = MatrixArbiter(4)
        assert arb.select([1, 3]) == 1

    def test_least_recently_served(self):
        arb = MatrixArbiter(3)
        w = arb.select([0, 1, 2])
        assert w == 0
        arb.update(0)
        assert arb.select([0, 1, 2]) == 1
        arb.update(1)
        assert arb.select([0, 1, 2]) == 2
        arb.update(2)
        assert arb.select([0, 1, 2]) == 0

    def test_granted_requester_loses_priority(self):
        arb = MatrixArbiter(2)
        arb.update(0)
        assert arb.select([0, 1]) == 1

    def test_empty(self):
        assert MatrixArbiter(2).select([]) is None

    @given(
        size=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_always_unique_winner(self, size, data):
        arb = MatrixArbiter(size)
        for _ in range(8):
            reqs = data.draw(st.lists(st.integers(0, size - 1), unique=True, min_size=1))
            winner = arb.select(reqs)
            assert winner in reqs
            arb.update(winner)


class TestPriority:
    def test_highest_priority_subset(self):
        subset, prio = highest_priority_subset({0: 1, 1: 5, 2: 5})
        assert sorted(subset) == [1, 2]
        assert prio == 5

    def test_highest_priority_subset_empty_raises(self):
        with pytest.raises(ValueError):
            highest_priority_subset({})

    def test_priority_arbiter_filters_low_class(self):
        arb = PriorityArbiter(RoundRobinArbiter(4))
        # Index 0 would win round-robin, but index 2 is higher class.
        assert arb.select({0: 0, 2: 1}) == 2

    def test_priority_arbiter_round_robin_within_class(self):
        arb = PriorityArbiter(RoundRobinArbiter(4))
        w = arb.select({1: 3, 2: 3})
        assert w == 1
        arb.update(w)
        assert arb.select({1: 3, 2: 3}) == 2

    def test_priority_arbiter_empty(self):
        arb = PriorityArbiter(RoundRobinArbiter(4))
        assert arb.select({}) is None
