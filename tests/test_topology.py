"""Tests for the mesh and flattened-butterfly topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.topology import FlattenedButterfly, Mesh2D, build_topology
from repro.topology.fbfly import distance_delay
from repro.topology.mesh import PORT_TERMINAL, PORT_XMINUS, PORT_XPLUS
from repro.network.config import fbfly_config, mesh_config


class TestMesh2D:
    def test_paper_dimensions(self):
        m = Mesh2D(8)
        assert m.num_routers == 64
        assert m.num_terminals == 64
        assert m.radix(0) == 5

    def test_coords_roundtrip(self):
        m = Mesh2D(8)
        for r in range(64):
            x, y = m.coords(r)
            assert m.router_at(x, y) == r
            assert 0 <= x < 8 and 0 <= y < 8

    def test_interior_links(self):
        m = Mesh2D(4)
        r = m.router_at(1, 1)
        east = m.link(r, PORT_XPLUS)
        assert east.dest_router == m.router_at(2, 1)
        assert east.dest_port == PORT_XMINUS
        assert east.delay == 1

    def test_edge_has_no_link(self):
        m = Mesh2D(4)
        corner = m.router_at(0, 0)
        assert m.link(corner, PORT_XMINUS) is None

    def test_terminal_attachment(self):
        m = Mesh2D(4)
        for t in range(16):
            r, p = m.terminal_attachment(t)
            assert r == t
            assert p == PORT_TERMINAL
            assert m.is_terminal_port(r, p)
            assert m.terminal_at(r, p) == t

    def test_validate(self):
        Mesh2D(8).validate()

    def test_too_small(self):
        with pytest.raises(ValueError):
            Mesh2D(1)

    def test_link_count(self):
        """A k x k mesh has 2*k*(k-1) bidirectional links."""
        m = Mesh2D(4)
        links = sum(
            1
            for r in range(m.num_routers)
            for p in range(m.radix(r))
            if m.link(r, p) is not None
        )
        assert links == 2 * 2 * 4 * 3  # directed


class TestFlattenedButterfly:
    def test_paper_dimensions(self):
        f = FlattenedButterfly(4, 4, 4)
        assert f.num_routers == 16
        assert f.num_terminals == 64
        # "each FBFly router has 10 ports" (Section 3)
        assert f.radix(0) == 10

    def test_channel_delays_by_distance(self):
        """Short/medium/long channels: 2/4/6 cycles (Section 3)."""
        assert distance_delay(1) == 2
        assert distance_delay(2) == 4
        assert distance_delay(3) == 6

    def test_row_fully_connected(self):
        f = FlattenedButterfly(4, 4, 4)
        r = f.router_at(0, 2)
        for dest_x in (1, 2, 3):
            port = f.row_port(r, dest_x)
            link = f.link(r, port)
            assert link.dest_router == f.router_at(dest_x, 2)
            assert link.delay == distance_delay(dest_x)

    def test_col_fully_connected(self):
        f = FlattenedButterfly(4, 4, 4)
        r = f.router_at(1, 0)
        for dest_y in (1, 2, 3):
            port = f.col_port(r, dest_y)
            link = f.link(r, port)
            assert link.dest_router == f.router_at(1, dest_y)
            assert link.delay == distance_delay(dest_y)

    def test_row_port_to_self_rejected(self):
        f = FlattenedButterfly(4, 4, 4)
        with pytest.raises(ValueError):
            f.row_port(0, 0)

    def test_terminal_attachment(self):
        f = FlattenedButterfly(4, 4, 4)
        for t in range(64):
            r, p = f.terminal_attachment(t)
            assert r == t // 4
            assert p == t % 4
            assert f.is_terminal_port(r, p)
            assert f.terminal_at(r, p) == t

    def test_validate(self):
        FlattenedButterfly(4, 4, 4).validate()

    def test_validate_other_shapes(self):
        FlattenedButterfly(2, 3, 2).validate()
        FlattenedButterfly(3, 2, 1).validate()

    @given(
        rows=st.integers(2, 4),
        cols=st.integers(2, 4),
        conc=st.integers(1, 4),
    )
    def test_property_links_symmetric(self, rows, cols, conc):
        FlattenedButterfly(rows, cols, conc).validate()


class TestBuildTopology:
    def test_mesh_from_config(self):
        topo = build_topology(mesh_config())
        assert isinstance(topo, Mesh2D)
        assert topo.num_terminals == 64

    def test_fbfly_from_config(self):
        topo = build_topology(fbfly_config())
        assert isinstance(topo, FlattenedButterfly)
        assert topo.num_terminals == 64
