"""Tests for DOR and UGAL routing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.flit import Packet
from repro.routing import DORMesh, UGALFbfly, build_routing
from repro.network.config import fbfly_config, mesh_config
from repro.topology import FlattenedButterfly, Mesh2D
from repro.topology.mesh import (
    PORT_TERMINAL,
    PORT_XMINUS,
    PORT_XPLUS,
    PORT_YMINUS,
    PORT_YPLUS,
)


class TestDORMesh:
    def setup_method(self):
        self.topo = Mesh2D(8)
        self.routing = DORMesh(self.topo)

    def _route(self, src, dest):
        """Walk the packet hop by hop; return the port sequence."""
        packet = Packet(src, dest, 1, 0)
        self.routing.prepare(packet)
        router = src
        ports = []
        for _ in range(20):
            port, vc_class = self.routing.next_hop(router, packet)
            assert vc_class == 0
            ports.append(port)
            if port == PORT_TERMINAL:
                return ports
            link = self.topo.link(router, port)
            assert link is not None, "DOR routed off the mesh edge"
            router = link.dest_router
        raise AssertionError("routing did not terminate")

    def test_x_before_y(self):
        ports = self._route(self.topo.router_at(0, 0), self.topo.router_at(2, 2))
        assert ports == [PORT_XPLUS, PORT_XPLUS, PORT_YPLUS, PORT_YPLUS, PORT_TERMINAL]

    def test_negative_directions(self):
        ports = self._route(self.topo.router_at(3, 3), self.topo.router_at(1, 2))
        assert ports == [PORT_XMINUS, PORT_XMINUS, PORT_YMINUS, PORT_TERMINAL]

    def test_same_router_ejects(self):
        ports = self._route(5, 5)
        assert ports == [PORT_TERMINAL]

    @settings(max_examples=100, deadline=None)
    @given(src=st.integers(0, 63), dest=st.integers(0, 63))
    def test_property_reaches_destination_minimally(self, src, dest):
        ports = self._route(src, dest)
        sx, sy = self.topo.coords(src)
        dx, dy = self.topo.coords(dest)
        assert len(ports) == abs(sx - dx) + abs(sy - dy) + 1


class TestUGALFbfly:
    def setup_method(self):
        self.topo = FlattenedButterfly(4, 4, 4)
        self.rng = random.Random(3)
        self.routing = UGALFbfly(self.topo, self.rng)

    def _walk(self, packet):
        router, _ = self.topo.terminal_attachment(packet.src)
        hops = []
        for _ in range(10):
            port, vc_class = self.routing.next_hop(router, packet)
            if self.topo.is_terminal_port(router, port):
                assert self.topo.terminal_at(router, port) == packet.dest
                return hops
            link = self.topo.link(router, port)
            hops.append((router, link.dest_router, vc_class))
            router = link.dest_router
        raise AssertionError("UGAL did not terminate")

    def test_uncongested_routes_minimally(self):
        """With zero congestion, q_min*H_min <= threshold: minimal wins."""
        packet = Packet(0, 63, 1, 0)
        self.routing.prepare(packet)
        assert packet.route_state.minimal
        hops = self._walk(packet)
        assert len(hops) <= 2  # one hop per differing dimension

    def test_minimal_packets_use_class_1(self):
        packet = Packet(0, 63, 1, 0)
        self.routing.prepare(packet)
        for _, _, vc_class in self._walk(packet):
            assert vc_class == 1

    def test_congestion_triggers_nonminimal(self):
        """Heavy congestion on the minimal first hop flips to Valiant."""
        # Congestion probe: huge queue toward the minimal path's first
        # hop, empty elsewhere.
        dest_router, _ = self.topo.terminal_attachment(48)
        src_router, _ = self.topo.terminal_attachment(0)
        minimal_port = self.routing._first_port(src_router, dest_router)

        def probe(router, port):
            return 1000 if (router, port) == (src_router, minimal_port) else 0

        self.routing.attach_congestion(probe)
        decisions = []
        for _ in range(50):
            packet = Packet(0, 48, 1, 0)
            self.routing.prepare(packet)
            decisions.append(packet.route_state.minimal)
        assert not all(decisions), "congestion never diverted a packet"

    def test_nonminimal_passes_intermediate_and_switches_class(self):
        packet = Packet(0, 63, 1, 0)
        self.routing.prepare(packet)
        # Force a nonminimal route through a known intermediate.
        packet.route_state.minimal = False
        packet.route_state.phase = 0
        packet.route_state.intermediate = self.topo.router_at(2, 1)
        packet.vc_class = 0
        hops = self._walk(packet)
        routers_visited = [h[1] for h in hops]
        assert self.topo.router_at(2, 1) in [h[0] for h in hops] + routers_visited
        # Class 0 (toward intermediate) precedes class 1 (toward dest).
        classes = [h[2] for h in hops]
        assert classes == sorted(classes)

    def test_self_intermediate_forced_minimal(self):
        """intermediate == src or dest degenerates to minimal routing."""
        rng = random.Random(0)
        routing = UGALFbfly(self.topo, rng)
        for _ in range(200):
            packet = Packet(0, 5, 1, 0)
            routing.prepare(packet)
            self.routing = routing
            self._walk(packet)  # must always terminate

    def test_same_router_pair(self):
        """src and dest on the same router eject without network hops."""
        packet = Packet(0, 1, 1, 0)  # terminals 0 and 1 share router 0
        self.routing.prepare(packet)
        assert self._walk(packet) == []

    @settings(max_examples=100, deadline=None)
    @given(src=st.integers(0, 63), dest=st.integers(0, 63), seed=st.integers(0, 99))
    def test_property_always_delivers(self, src, dest, seed):
        if src == dest:
            return
        routing = UGALFbfly(self.topo, random.Random(seed))
        packet = Packet(src, dest, 1, 0)
        routing.prepare(packet)
        self.routing = routing
        hops = self._walk(packet)
        assert len(hops) <= 4  # two hops per phase maximum


class TestBuildRouting:
    def test_mesh(self):
        cfg = mesh_config()
        topo = Mesh2D(8)
        assert isinstance(build_routing(cfg, topo, random.Random(0)), DORMesh)

    def test_fbfly(self):
        cfg = fbfly_config()
        topo = FlattenedButterfly(4, 4, 4)
        assert isinstance(build_routing(cfg, topo, random.Random(0)), UGALFbfly)
