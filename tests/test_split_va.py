"""Tests for the split (separate) VC-allocator router mode."""

import pytest

from repro.core.chaining import ChainingScheme
from repro.network.config import NetworkConfig, mesh_config
from repro.network.flit import Packet
from repro.sim.runner import run_simulation

from tests.test_router import Sim, make_router, put


class TestSplitVARouter:
    def test_head_waits_for_vc_allocation(self):
        """Heads take one extra cycle (the VA stage) vs combined."""
        combined = make_router()
        split = make_router(vc_allocation="split")
        results = {}
        for name, router in [("combined", combined), ("split", split)]:
            sim = Sim(router)
            flit = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
            sim.step(4)
            results[name] = sim.departed(flit)[0]
        assert results["split"] == results["combined"] + 1

    def test_output_vc_held_from_va_time(self):
        router = make_router(vc_allocation="split")
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 4, 0), out_port=2)
        sim.step(1)  # VA commits at end of cycle 0
        assert router.out_vc_busy[2][0]
        assert router.in_vcs[0][0].active_packet is not None

    def test_va_conflict_serializes(self):
        """Two heads wanting the same output VC: one waits a cycle."""
        router = make_router(vc_allocation="split", num_vcs=1)
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(6)
        ca, cb = sim.departed(a)[0], sim.departed(b)[0]
        assert abs(ca - cb) >= 1

    def test_body_flits_stream_normally(self):
        router = make_router(vc_allocation="split")
        sim = Sim(router)
        flits = put(router, 0, 0, Packet(0, 1, 3, 0), out_port=2)
        sim.step(6)
        cycles = [sim.departed(f)[0] for f in flits]
        assert cycles == [cycles[0], cycles[0] + 1, cycles[0] + 2]

    def test_chaining_works_with_split_va(self):
        router = make_router(vc_allocation="split",
                             chaining=ChainingScheme.ANY_INPUT)
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(8)
        assert sim.departed(b) is not None
        assert router.chain_stats.total_chains >= 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(vc_allocation="quantum")


class TestSpeculativeVA:
    def test_zero_load_latency_matches_combined(self):
        """Successful speculation hides the VA pipeline stage."""
        combined = make_router()
        spec = make_router(vc_allocation="speculative")
        results = {}
        for name, router in [("combined", combined), ("speculative", spec)]:
            sim = Sim(router)
            flit = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
            sim.step(4)
            results[name] = sim.departed(flit)[0]
        assert results["speculative"] == results["combined"]

    def test_nonspeculative_beats_speculative(self):
        """A packet holding an output VC wins over a speculating head.

        Two heads contend in cycle 0; the loser receives a VC-allocator
        grant at the end of the cycle and, now non-speculative, must
        beat a freshly arrived speculative head in cycle 1.
        """
        router = make_router(vc_allocation="speculative")
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
        b = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(1)
        loser = b if sim.departed(a) else a
        # The loser was VC-allocated at the end of cycle 0.
        holder_vc = router.in_vcs[0][0] if loser is a else router.in_vcs[1][0]
        assert holder_vc.active_packet is loser.packet
        fresh = put(router, 2, 0, Packet(3, 1, 1, 0), out_port=2)[0]
        sim.step(4)
        assert sim.departed(loser)[0] < sim.departed(fresh)[0]

    def test_wasted_speculation_counted(self):
        """When all output VCs are busy, a speculative grant is wasted."""
        router = make_router(vc_allocation="speculative", num_vcs=1)
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 8, 0), out_port=2)
        sim.step(2)  # the long packet holds the single output VC
        put(router, 1, 0, Packet(2, 1, 1, 0), out_port=1)
        spec = put(router, 2, 0, Packet(3, 1, 1, 0), out_port=2)[0]
        sim.step(3)
        # The speculator cannot claim a VC; it may or may not burn an SA
        # grant depending on arbitration, but it must not depart yet.
        assert sim.departed(spec) is None

    def test_end_to_end(self):
        result = run_simulation(
            mesh_config(mesh_k=4, vc_allocation="speculative"),
            pattern="uniform", rate=0.15, packet_length=2,
            warmup=200, measure=400, drain=400,
        )
        assert result.avg_throughput == pytest.approx(0.15, abs=0.04)


class TestSplitVANetwork:
    def test_end_to_end_delivery(self):
        result = run_simulation(
            mesh_config(mesh_k=4, vc_allocation="split"),
            pattern="uniform", rate=0.15, packet_length=2,
            warmup=200, measure=400, drain=400,
        )
        assert result.avg_throughput == pytest.approx(0.15, abs=0.04)

    def test_split_has_higher_zero_load_latency(self):
        run = dict(pattern="uniform", rate=0.05, packet_length=1,
                   warmup=200, measure=400, drain=400)
        combined = run_simulation(mesh_config(mesh_k=4), **run)
        split = run_simulation(
            mesh_config(mesh_k=4, vc_allocation="split"), **run
        )
        assert split.packet_latency.mean > combined.packet_latency.mean
