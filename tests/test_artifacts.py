"""Run-artifact flight recorder and `repro diff` regression gate."""

import io
import json
import os

import pytest

from repro.cli import main as cli_main
from repro.network.config import mesh_config
from repro.obs import (
    MetricsRegistry,
    NetworkSampler,
    compare_artifacts,
    format_diff,
    write_run_artifacts,
    write_sweep_manifest,
)
from repro.obs.artifacts import DiffRow, _compare_run, rate_subdir
from repro.sim.runner import run_simulation


def _record_run(directory, rate=0.3, seed=7, with_sampler=False, **cfg_kw):
    cfg = mesh_config(mesh_k=4, chaining="any_input", seed=seed, **cfg_kw)
    registry = MetricsRegistry()
    sampler = NetworkSampler(period=100) if with_sampler else None
    result = run_simulation(
        cfg, rate=rate, warmup=50, measure=200, drain=500,
        metrics=registry, sampler=sampler,
    )
    write_run_artifacts(
        str(directory), cfg, result, registry=registry,
        run_info={"rate": rate}, sampler=sampler,
    )
    return result


class TestWriteArtifacts:
    def test_directory_contents(self, tmp_path):
        art = tmp_path / "art"
        _record_run(art, with_sampler=True)
        names = sorted(os.listdir(art))
        assert names == [
            "manifest.json", "metrics.json", "metrics.prom",
            "samples.jsonl", "summary.json",
        ]

    def test_manifest_self_describes(self, tmp_path):
        art = tmp_path / "art"
        _record_run(art, seed=11)
        manifest = json.loads((art / "manifest.json").read_text())
        assert manifest["kind"] == "run"
        assert manifest["seed"] == 11
        assert manifest["config"]["chaining"] == "any_input"
        assert manifest["run"]["rate"] == 0.3
        assert manifest["versions"]["repro"]
        assert manifest["versions"]["python"]
        assert sorted(manifest["files"]) == manifest["files"]
        for name in manifest["files"]:
            assert (art / name).exists()

    def test_summary_matches_result(self, tmp_path):
        art = tmp_path / "art"
        result = _record_run(art)
        summary = json.loads((art / "summary.json").read_text())
        assert summary == result.to_dict()

    def test_prometheus_export_present(self, tmp_path):
        art = tmp_path / "art"
        _record_run(art)
        assert "# TYPE repro_flits_ejected counter" in (
            (art / "metrics.prom").read_text()
        )


class TestCompare:
    def test_identical_runs_diff_clean(self, tmp_path):
        _record_run(tmp_path / "a")
        _record_run(tmp_path / "b")
        diff = compare_artifacts(str(tmp_path / "a"), str(tmp_path / "b"))
        assert diff.regressions == []
        assert {row.metric for row in diff.rows} == {
            "packet_latency_mean", "packet_latency_p99",
            "avg_throughput", "min_throughput",
        }
        assert all(row.delta_pct == 0.0 for row in diff.rows)
        assert "no regressions" in format_diff(diff)

    def test_perturbed_run_trips_threshold(self, tmp_path):
        _record_run(tmp_path / "a", rate=0.3)
        _record_run(tmp_path / "b", rate=0.6)
        diff = compare_artifacts(
            str(tmp_path / "a"), str(tmp_path / "b"), threshold_pct=5.0
        )
        regressed = {row.metric for row in diff.regressions}
        assert "packet_latency_mean" in regressed
        assert "REGRESSION" in format_diff(diff)

    def test_latency_improvement_is_not_a_regression(self, tmp_path):
        _record_run(tmp_path / "a", rate=0.6)
        _record_run(tmp_path / "b", rate=0.3)
        diff = compare_artifacts(str(tmp_path / "a"), str(tmp_path / "b"))
        assert "packet_latency_mean" not in {
            row.metric for row in diff.regressions
        }

    def test_metrics_only_baseline_fallback(self, tmp_path):
        # A checked-in baseline may carry metrics.json only; the differ
        # reconstructs throughput gauges and mean latency from it.
        _record_run(tmp_path / "a")
        _record_run(tmp_path / "b")
        os.remove(tmp_path / "a" / "summary.json")
        diff = compare_artifacts(str(tmp_path / "a"), str(tmp_path / "b"))
        names = {row.metric for row in diff.rows}
        assert names == {
            "packet_latency_mean", "avg_throughput", "min_throughput"
        }
        assert diff.regressions == []

    def test_empty_dirs_rejected(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        with pytest.raises(ValueError):
            compare_artifacts(str(tmp_path / "a"), str(tmp_path / "b"))

    def test_zero_base_delta_is_inf(self, tmp_path):
        for name, tp in (("a", 0.0), ("b", 0.5)):
            d = tmp_path / name
            d.mkdir()
            (d / "summary.json").write_text(
                json.dumps({"avg_throughput": tp})
            )
        diff = compare_artifacts(str(tmp_path / "a"), str(tmp_path / "b"))
        (row,) = diff.rows
        assert row.delta_pct == float("inf")
        assert not row.regressed  # more throughput from zero: improvement
        assert "+inf" in format_diff(diff)

    def test_threshold_is_exclusive(self, tmp_path):
        for name, lat in (("a", 100.0), ("b", 105.0)):
            d = tmp_path / name
            d.mkdir()
            (d / "summary.json").write_text(
                json.dumps({"packet_latency": {"mean": lat}})
            )
        exactly = _compare_run(str(tmp_path / "a"), str(tmp_path / "b"), 5.0)
        assert exactly.regressions == []
        tighter = _compare_run(str(tmp_path / "a"), str(tmp_path / "b"), 4.9)
        assert len(tighter.regressions) == 1

    def test_diff_row_serializes(self):
        row = DiffRow("m", 1.0, 2.0, 100.0, False, True)
        assert row.to_dict()["regressed"] is True


class TestSweepArtifacts:
    def test_sweep_layout_and_diff(self, tmp_path):
        rates = [0.1, 0.3]
        for name in ("a", "b"):
            root = tmp_path / name
            cfg = mesh_config(mesh_k=4, chaining="any_input", seed=2)
            write_sweep_manifest(str(root), cfg, rates)
            for rate in rates:
                _record_run(root / rate_subdir(rate), rate=rate, seed=2)
        manifest = json.loads((tmp_path / "a" / "manifest.json").read_text())
        assert manifest["kind"] == "sweep"
        assert manifest["runs"] == ["rate_0.1000", "rate_0.3000"]
        diff = compare_artifacts(str(tmp_path / "a"), str(tmp_path / "b"))
        assert diff.children and set(diff.children) == set(manifest["runs"])
        assert diff.regressions == []
        text = format_diff(diff)
        assert "rate_0.1000:" in text

    def test_sweep_diff_requires_common_rates(self, tmp_path):
        cfg = mesh_config(mesh_k=4)
        write_sweep_manifest(str(tmp_path / "a"), cfg, [0.1])
        write_sweep_manifest(str(tmp_path / "b"), cfg, [0.2])
        _record_run(tmp_path / "a" / rate_subdir(0.1), rate=0.1)
        _record_run(tmp_path / "b" / rate_subdir(0.2), rate=0.2)
        with pytest.raises(ValueError):
            compare_artifacts(str(tmp_path / "a"), str(tmp_path / "b"))

    def test_sweep_regression_bubbles_up(self, tmp_path):
        cfg = mesh_config(mesh_k=4)
        for name, rate_used in (("a", 0.3), ("b", 0.6)):
            root = tmp_path / name
            write_sweep_manifest(str(root), cfg, [0.3])
            # Same subdir name, different actual load in "b".
            _record_run(root / rate_subdir(0.3), rate=rate_used)
        diff = compare_artifacts(str(tmp_path / "a"), str(tmp_path / "b"))
        assert diff.rows == []
        assert len(diff.regressions) > 0


class TestCLIDiff:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_run_artifacts_flag(self, tmp_path):
        art = tmp_path / "art"
        code, _ = self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.3",
            "--warmup", "50", "--measure", "200", "--drain", "500",
            "--artifacts", str(art),
        )
        assert code == 0
        names = set(os.listdir(art))
        assert {"manifest.json", "summary.json", "metrics.json",
                "metrics.prom", "samples.jsonl"} <= names

    def test_run_artifacts_with_trace_adds_spans(self, tmp_path):
        art = tmp_path / "art"
        code, _ = self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.3",
            "--warmup", "50", "--measure", "200", "--drain", "500",
            "--trace", str(tmp_path / "t.jsonl.gz"), "--artifacts", str(art),
        )
        assert code == 0
        spans = json.loads((art / "spans.json").read_text())
        assert spans["packets"] > 0
        assert spans["incomplete"] == 0
        metrics = json.loads((art / "metrics.json").read_text())
        assert metrics["counters"]["span_packets"] == spans["packets"]

    def test_diff_identical_exits_zero(self, tmp_path):
        common = [
            "run", "--mesh-k", "4", "--rate", "0.3", "--seed", "5",
            "--warmup", "50", "--measure", "200", "--drain", "500",
        ]
        self.run_cli(*common, "--artifacts", str(tmp_path / "a"))
        self.run_cli(*common, "--artifacts", str(tmp_path / "b"))
        code, text = self.run_cli(
            "diff", str(tmp_path / "a"), str(tmp_path / "b"),
            "--threshold", "5",
        )
        assert code == 0
        assert "no regressions" in text

    def test_diff_perturbed_exits_nonzero(self, tmp_path):
        common = [
            "run", "--mesh-k", "4", "--seed", "5",
            "--warmup", "50", "--measure", "200", "--drain", "500",
        ]
        self.run_cli(*common, "--rate", "0.3",
                     "--artifacts", str(tmp_path / "a"))
        self.run_cli(*common, "--rate", "0.6",
                     "--artifacts", str(tmp_path / "b"))
        code, text = self.run_cli(
            "diff", str(tmp_path / "a"), str(tmp_path / "b"),
            "--threshold", "5",
        )
        assert code == 1
        assert "REGRESSION" in text

    def test_diff_json_output(self, tmp_path):
        self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.2", "--warmup", "50",
            "--measure", "100", "--drain", "200",
            "--artifacts", str(tmp_path / "a"),
        )
        code, text = self.run_cli(
            "diff", str(tmp_path / "a"), str(tmp_path / "a"), "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["regressions"] == 0
        assert payload["threshold_pct"] == 5.0

    def test_diff_bad_dirs_exit_two(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        code, text = self.run_cli(
            "diff", str(tmp_path / "a"), str(tmp_path / "b"),
        )
        assert code == 2
        assert "repro diff:" in text

    def test_sweep_artifacts_flag(self, tmp_path):
        art = tmp_path / "sw"
        code, _ = self.run_cli(
            "sweep", "--mesh-k", "4", "--rates", "0.1", "0.2",
            "--warmup", "50", "--measure", "100",
            "--artifacts", str(art),
        )
        assert code == 0
        manifest = json.loads((art / "manifest.json").read_text())
        assert manifest["kind"] == "sweep"
        for sub in manifest["runs"]:
            assert (art / sub / "summary.json").exists()
            assert (art / sub / "metrics.json").exists()
