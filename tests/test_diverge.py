"""The lockstep divergence microscope, end to end.

The acceptance bar from the issue: inject an off-by-one into the fast
core's allocator fast path (test-only monkeypatch) and ``repro diverge
ref-vs-fast`` must pinpoint the exact first divergent cycle, the owning
router, and the drifted arbiter-pointer field — via the library API and
via the CLI, with a machine-readable report.
"""

import io
import json

import pytest

from repro.cli import main
from repro.fastcore.allocators import FastSeparableInputFirstAllocator
from repro.network import flit as flitmod
from repro.network.config import mesh_config
from repro.obs.digest import DigestRecorder, read_digest_stream
from repro.obs.lockstep import (
    LockstepSide,
    find_divergence,
    run_lockstep,
    run_vs_stream,
    side_factory,
)
from repro.sim.runner import run_simulation

SPEC = dict(pattern="uniform", rate=0.3, warmup=100, measure=300, drain=200)


def _config(seed=1, **kw):
    return mesh_config(mesh_k=4, chaining="any_input", seed=seed, **kw)


def _factories(seed=1, **spec):
    spec = {**SPEC, **spec}
    return (
        side_factory("reference", _config(seed=seed), **spec),
        side_factory("fast", _config(seed=seed, backend="fast"), **spec),
    )


@pytest.fixture
def broken_fast_allocator(monkeypatch):
    """Inject an off-by-one into the fast allocator's grant bookkeeping.

    Whenever more than one input requests, every granted input's
    round-robin pointer is advanced one slot too far — exactly the kind
    of subtle fast-path divergence the microscope exists to catch: the
    grants themselves stay valid, only future arbitration drifts.
    """
    orig = FastSeparableInputFirstAllocator.allocate

    def broken(self, requests):
        grants = orig(self, requests)
        if len(requests) > 1:
            for i, o in grants.items():
                self._input_arbiters[i].pointer = (
                    self._input_arbiters[i].pointer + 1
                ) % self.num_outputs
        return grants

    monkeypatch.setattr(FastSeparableInputFirstAllocator, "allocate", broken)


# ---------------------------------------------------------------------------
# library API


class TestFindDivergence:
    def test_ref_vs_fast_identical_without_bug(self):
        make_a, make_b = _factories()
        assert find_divergence(make_a, make_b, every=64) is None

    def test_injected_off_by_one_is_pinpointed(self, broken_fast_allocator):
        make_a, make_b = _factories()
        report = find_divergence(make_a, make_b, every=64)

        assert report is not None
        assert report["verdict"] == "diverged"
        # Exact first divergent cycle: the coarse pass runs at stride
        # 64, the refinement pass must still land cycle-exactly.
        assert report["last_match_cycle"] == report["cycle"] - 1
        # The drift is localized to the owning router(s) ...
        assert report["components"]
        assert all(path.startswith("router[") for path in report["components"])
        # ... and to the exact arbiter-pointer field inside the switch
        # allocator, with both sides' values one apart.
        first = report["components"][0]
        keys = [d["key"] for d in report["diffs"][first]]
        assert any("switch_alloc.input_arbiters" in k and k.endswith("pointer")
                   for k in keys)
        pointer = next(d for d in report["diffs"][first]
                       if k_match(d["key"]))
        assert (pointer["b"] - pointer["a"]) % 5 == 1
        # The fast side's SoA arrays still match its canonical state —
        # the bug is in allocation, not array maintenance.
        assert report["soa_consistent"]["b"] is True
        assert report["side_a"]["backend"] == "reference"
        assert report["side_b"]["backend"] == "fast"
        assert report["trace_a"] and report["trace_b"]

    def test_coarse_and_fine_agree_on_cycle(self, broken_fast_allocator):
        coarse = find_divergence(*_factories(), every=64)
        fine = find_divergence(*_factories(), every=1)
        assert coarse["cycle"] == fine["cycle"]
        assert coarse["components"] == fine["components"]

    def test_run_lockstep_stride_brackets_divergence(
        self, broken_fast_allocator
    ):
        make_a, make_b = _factories()
        window = run_lockstep(make_a(), make_b(), every=64)
        exact = find_divergence(*_factories(), every=1)["cycle"]
        assert window is not None
        assert window.last_match < exact <= window.cycle


def k_match(key):
    return "switch_alloc.input_arbiters" in key and key.endswith("pointer")


class TestLockstepSides:
    def test_side_state_matches_standalone_run(self):
        """A lockstep side's pid windowing reproduces a fresh process."""
        side = LockstepSide("probe", _config(), **SPEC)
        for _ in range(50):
            side.step()
        probe = side.digest()["root"]

        other = LockstepSide("other", _config(backend="fast"), **SPEC)
        for _ in range(50):
            other.step()
        assert other.digest()["root"] == probe

    def test_vs_config_diverges_from_construction_or_early(self):
        a = LockstepSide("a", _config(), **SPEC)
        b = LockstepSide("b", _config(allocator="wavefront"), **SPEC)
        window = run_lockstep(a, b, every=1)
        assert window is not None


# ---------------------------------------------------------------------------
# live run vs recorded stream


class TestVsStream:
    def _record(self, tmp_path, seed=1, name="digests.jsonl"):
        flitmod.set_next_packet_id(0)
        path = str(tmp_path / name)
        recorder = DigestRecorder(every=32, path=path)
        recorder.write_header(_config(seed=seed))
        run_simulation(_config(seed=seed), digest=recorder, **SPEC)
        return path

    def test_matching_stream_is_identical(self, tmp_path):
        path = self._record(tmp_path)
        stream = read_digest_stream(path)
        side = LockstepSide("live", _config(backend="fast"), **SPEC)
        assert run_vs_stream(side, stream) is None

    def test_bugged_live_run_diverges_from_stream(
        self, tmp_path, broken_fast_allocator
    ):
        path = self._record(tmp_path)
        stream = read_digest_stream(path)
        side = LockstepSide("live", _config(backend="fast"), **SPEC)
        report = run_vs_stream(side, stream)
        assert report is not None
        assert report["mode"] == "vs-stream"
        assert report["verdict"] == "diverged"
        # Stream granularity: the divergent cycle is the first recorded
        # cycle whose digests mismatch, localized per component path.
        assert report["cycle"] % 32 == 0
        assert any(p.startswith("router[") for p in report["components"])
        for path_ in report["components"]:
            entry = report["digests"][path_]
            assert entry["a"] != entry["b"]


# ---------------------------------------------------------------------------
# CLI: repro diverge


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


CLI_ARGS = [
    "diverge", "--mesh-k", "4", "--chaining", "any_input", "--seed", "1",
    "--rate", "0.3", "--warmup", "100", "--measure", "300", "--drain", "200",
]


class TestDivergeCLI:
    def test_identical_backends_exit_zero(self):
        code, text = run_cli(*CLI_ARGS)
        assert code == 0
        assert "IDENTICAL" in text

    def test_bug_is_reported_with_exit_one(
        self, tmp_path, broken_fast_allocator
    ):
        report_path = str(tmp_path / "report.json")
        code, text = run_cli(*CLI_ARGS, "--report", report_path)
        assert code == 1
        assert "DIVERGED" in text
        assert "router[" in text
        assert "pointer" in text

        with open(report_path) as fh:
            report = json.load(fh)
        assert report["verdict"] == "diverged"
        assert report["last_match_cycle"] == report["cycle"] - 1
        assert all(p.startswith("router[") for p in report["components"])

    def test_json_output(self, broken_fast_allocator):
        code, text = run_cli(*CLI_ARGS, "--json")
        assert code == 1
        report = json.loads(text)
        assert report["verdict"] == "diverged"

    def test_vs_digests_cli(self, tmp_path):
        digest_path = str(tmp_path / "ref.jsonl")
        # In-process CLI: pids continue from earlier tests unless reset;
        # a standalone `repro run` process starts at 0, which is what
        # the lockstep side reproduces.
        flitmod.set_next_packet_id(0)
        code, _ = run_cli(
            "run", "--mesh-k", "4", "--chaining", "any_input", "--seed", "1",
            "--rate", "0.3", "--warmup", "100", "--measure", "300",
            "--drain", "200", "--digest", digest_path, "--digest-every", "32",
        )
        assert code == 0
        code, text = run_cli(*CLI_ARGS, "--vs-digests", digest_path)
        assert code == 0
        assert "IDENTICAL" in text

    def test_vs_digests_refuses_config_mismatch(self, tmp_path):
        digest_path = str(tmp_path / "ref.jsonl")
        code, _ = run_cli(
            "run", "--mesh-k", "4", "--chaining", "any_input", "--seed", "1",
            "--rate", "0.3", "--warmup", "100", "--measure", "300",
            "--drain", "200", "--digest", digest_path, "--digest-every", "32",
        )
        assert code == 0
        args = list(CLI_ARGS)
        args[args.index("--seed") + 1] = "2"  # different experiment
        code, text = run_cli(*args, "--vs-digests", digest_path)
        assert code == 2

    def test_vs_backend_and_vs_config_are_exclusive(self, tmp_path):
        cfg = str(tmp_path / "cfg.json")
        with open(cfg, "w") as fh:
            json.dump(_config().to_dict(), fh)
        code, _ = run_cli(*CLI_ARGS, "--vs-backend", "fast",
                          "--vs-config", cfg)
        assert code == 2
