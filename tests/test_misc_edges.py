"""Edge-case tests for small helpers across modules."""

import pytest

from repro.core.cost_model import AllocatorCostModel, _interp_wavefront
from repro.network.flit import Packet
from repro.topology.fbfly import distance_delay


class TestCostModelInterpolation:
    def test_between_design_points(self):
        area, power, delay = _interp_wavefront(7.5)
        assert 2.5 < area < 2.7
        assert 3.0 < power < 6.0
        assert 1.20 < delay < 1.36

    def test_extrapolation_clamped(self):
        big = _interp_wavefront(40)
        cap = _interp_wavefront(12.5)  # t = 1.5 clamp point
        assert big == cap

    def test_below_mesh_point_clamped(self):
        assert _interp_wavefront(2) == _interp_wavefront(5)

    def test_report_is_frozen(self):
        r = AllocatorCostModel(5).report("islip1")
        with pytest.raises(Exception):
            r.area = 9.0


class TestFBFlyDelays:
    def test_known_points(self):
        assert distance_delay(1) == 2
        assert distance_delay(2) == 4
        assert distance_delay(3) == 6

    def test_extension_beyond_paper(self):
        assert distance_delay(4) == 8  # linear trend


class TestFlitRepr:
    def test_head_tail_marker(self):
        p = Packet(0, 1, 1, 0)
        (f,) = p.flits()
        assert "HT" in repr(f)

    def test_body_marker(self):
        p = Packet(0, 1, 3, 0)
        flits = p.flits()
        assert "B" in repr(flits[1])
        assert "T" in repr(flits[2])


class TestPacketPayload:
    def test_payload_roundtrip(self):
        marker = object()
        p = Packet(0, 1, 1, 0, payload=marker)
        assert p.payload is marker

    def test_default_none(self):
        assert Packet(0, 1, 1, 0).payload is None
