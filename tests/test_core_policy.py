"""Tests for the core policy modules: chaining, starvation, cost model."""

import pytest

from repro.core.chaining import (
    PC_PRIORITY_DEFINITE,
    PC_PRIORITY_SPECULATIVE,
    ChainStats,
    ChainingScheme,
    PCCandidate,
    PCRequestBuilder,
    scheme_admits,
)
from repro.core.cost_model import AllocatorCostModel
from repro.core.starvation import StarvationControl, StarvationMode


class TestChainingScheme:
    def test_parse_strings(self):
        assert ChainingScheme.parse("same_vc") is ChainingScheme.SAME_VC
        assert ChainingScheme.parse("ANY_INPUT") is ChainingScheme.ANY_INPUT
        assert ChainingScheme.parse(None) is ChainingScheme.DISABLED
        assert ChainingScheme.parse(ChainingScheme.SAME_INPUT) is ChainingScheme.SAME_INPUT

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            ChainingScheme.parse("everything")

    def test_enabled(self):
        assert not ChainingScheme.DISABLED.enabled
        assert ChainingScheme.SAME_VC.enabled

    def test_scheme_admits_matrix(self):
        # (cand_input, cand_vc) vs holder (1, 2)
        cases = {
            ChainingScheme.SAME_VC: {(1, 2): True, (1, 3): False, (0, 2): False},
            ChainingScheme.SAME_INPUT: {(1, 2): True, (1, 3): True, (0, 2): False},
            ChainingScheme.ANY_INPUT: {(1, 2): True, (1, 3): True, (0, 2): True},
        }
        for scheme, table in cases.items():
            for (ci, cv), expect in table.items():
                assert scheme_admits(scheme, ci, cv, 1, 2) is expect

    def test_disabled_admits_nothing(self):
        assert not scheme_admits(ChainingScheme.DISABLED, 1, 2, 1, 2)


class TestPCRequestBuilder:
    def _cand(self, p, v, o, speculative=False, priority=0):
        return PCCandidate(p, v, o, priority, flit=None, speculative=speculative)

    def test_or_reduction_takes_max_class(self):
        b = PCRequestBuilder(ChainingScheme.ANY_INPUT)
        b.add(self._cand(0, 0, 2, speculative=True))
        b.add(self._cand(0, 1, 2, speculative=False))
        matrix = b.request_matrix()
        assert set(matrix) == {(0, 2)}
        assert matrix[(0, 2)] // b.CLASS_STRIDE == PC_PRIORITY_DEFINITE

    def test_packet_priority_breaks_ties_within_class(self):
        b = PCRequestBuilder(ChainingScheme.ANY_INPUT)
        b.add(self._cand(0, 0, 2, priority=3))
        b.add(self._cand(1, 0, 2, priority=7))
        matrix = b.request_matrix()
        assert matrix[(1, 2)] > matrix[(0, 2)]
        # Class separation dominates any packet priority.
        b2 = PCRequestBuilder(ChainingScheme.ANY_INPUT)
        b2.add(self._cand(0, 0, 2, priority=999, speculative=True))
        b2.add(self._cand(1, 0, 2, priority=0, speculative=False))
        m2 = b2.request_matrix()
        assert m2[(1, 2)] > m2[(0, 2)]

    def test_speculative_class_is_lower(self):
        assert PC_PRIORITY_SPECULATIVE < PC_PRIORITY_DEFINITE

    def test_candidates_for_orders_definite_first(self):
        b = PCRequestBuilder(ChainingScheme.ANY_INPUT)
        spec = self._cand(0, 0, 2, speculative=True)
        definite = self._cand(0, 1, 2, speculative=False)
        b.add(spec)
        b.add(definite)
        assert b.candidates_for(0, 2) == [definite, spec]

    def test_candidates_for_orders_by_priority_within_class(self):
        b = PCRequestBuilder(ChainingScheme.ANY_INPUT)
        low = self._cand(0, 0, 2, priority=0)
        high = self._cand(0, 1, 2, priority=5)
        b.add(low)
        b.add(high)
        assert b.candidates_for(0, 2) == [high, low]

    def test_candidates_for_filters_pair(self):
        b = PCRequestBuilder(ChainingScheme.ANY_INPUT)
        b.add(self._cand(0, 0, 2))
        assert b.candidates_for(1, 2) == []


class TestChainStats:
    def test_record_and_totals(self):
        s = ChainStats()
        s.record_chain(same_input=True, same_vc=True)
        s.record_chain(same_input=True, same_vc=False)
        s.record_chain(same_input=False, same_vc=False)
        assert s.same_input_same_vc == 1
        assert s.same_input_other_vc == 1
        assert s.other_input == 1
        assert s.total_chains == 3

    def test_merged(self):
        a = ChainStats(same_input_same_vc=1, conflicts=2, cycles=10)
        b = ChainStats(other_input=3, conflicts=1, cycles=20)
        m = a.merged(b)
        assert m.same_input_same_vc == 1
        assert m.other_input == 3
        assert m.conflicts == 3
        assert m.cycles == 20


class TestStarvationControl:
    def test_disabled_never_releases(self):
        s = StarvationControl.disabled()
        assert not s.must_release(10**6)
        assert s.chainable(10**6)

    def test_threshold_release(self):
        s = StarvationControl(StarvationMode.THRESHOLD, threshold=8)
        assert not s.must_release(7)
        assert s.must_release(8)
        assert s.must_release(9)

    def test_threshold_chainable_guard(self):
        """Connections one cycle from the threshold are not chainable."""
        s = StarvationControl(StarvationMode.THRESHOLD, threshold=8)
        assert s.chainable(6)
        assert not s.chainable(7)
        assert not s.chainable(8)

    def test_threshold_requires_value(self):
        with pytest.raises(ValueError):
            StarvationControl(StarvationMode.THRESHOLD)

    def test_age_priority_escalation(self):
        s = StarvationControl(StarvationMode.AGE, age_period=4)
        assert s.packet_priority(0, 0) == 0
        assert s.packet_priority(0, 3) == 0
        assert s.packet_priority(0, 4) == 1
        assert s.packet_priority(2, 9) == 4

    def test_threshold_mode_no_age_escalation(self):
        s = StarvationControl(StarvationMode.THRESHOLD, threshold=8)
        assert s.packet_priority(0, 100) == 0

    def test_from_config(self):
        assert StarvationControl.from_config().mode is StarvationMode.DISABLED
        assert StarvationControl.from_config(threshold=4).mode is StarvationMode.THRESHOLD
        assert StarvationControl.from_config(age_period=4).mode is StarvationMode.AGE

    def test_string_mode(self):
        s = StarvationControl("threshold", threshold=2)
        assert s.mode is StarvationMode.THRESHOLD


class TestCostModel:
    def test_mesh_design_point(self):
        """Becker & Dally mesh numbers: 2.5x area, 3x power, +20% delay."""
        wf = AllocatorCostModel(5).report("wavefront")
        assert wf.area == pytest.approx(2.5)
        assert wf.power == pytest.approx(3.0)
        assert wf.delay == pytest.approx(1.20)

    def test_fbfly_design_point(self):
        wf = AllocatorCostModel(10).report("wavefront")
        assert wf.area == pytest.approx(2.7)
        assert wf.power == pytest.approx(6.0)
        assert wf.delay == pytest.approx(1.36)

    def test_paper_headline_mesh(self):
        """Wavefront vs PC in the mesh: 1.5x power, 1.25x area, +20% delay."""
        rel = AllocatorCostModel(5).wavefront_vs_packet_chaining()
        assert rel.power == pytest.approx(1.5)
        assert rel.area == pytest.approx(1.25)
        assert rel.delay == pytest.approx(1.20)

    def test_paper_headline_fbfly(self):
        """Wavefront vs PC in the FBFly: 3x power, 1.35x area, +36% delay."""
        rel = AllocatorCostModel(10).wavefront_vs_packet_chaining()
        assert rel.power == pytest.approx(3.0)
        assert rel.area == pytest.approx(1.35)
        assert rel.delay == pytest.approx(1.36)

    def test_islip2_twice_the_delay(self):
        r = AllocatorCostModel(5).report("islip2")
        assert r.delay == 2.0
        assert r.area == 1.0

    def test_same_input_chaining_is_cheap(self):
        """SAME_INPUT needs only per-input arbiters (Section 4.9)."""
        m = AllocatorCostModel(5)
        assert m.report("pc_same_input").area < m.report("pc_any_input").area

    def test_table_covers_all_kinds(self):
        table = AllocatorCostModel(5).table()
        assert {r.name for r in table} == set(AllocatorCostModel.KINDS)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            AllocatorCostModel(5).report("magic")

    def test_bad_radix(self):
        with pytest.raises(ValueError):
            AllocatorCostModel(1)


class TestNetworkConfig:
    def test_defaults_match_paper(self):
        from repro.network.config import mesh_config

        cfg = mesh_config()
        assert cfg.num_vcs == 4
        assert cfg.vc_buf_depth == 8
        assert cfg.allocator == "islip1"
        assert cfg.credit_delay == 2
        assert not cfg.chaining.enabled
        assert cfg.starvation_threshold is None

    def test_ugal_forces_two_classes(self):
        from repro.network.config import fbfly_config

        cfg = fbfly_config()
        assert cfg.num_classes == 2
        assert list(cfg.vc_class_range(0)) == [0, 1]
        assert list(cfg.vc_class_range(1)) == [2, 3]
        assert cfg.class_of_vc(3) == 1

    def test_invalid_vc_split(self):
        from repro.network.config import NetworkConfig

        with pytest.raises(ValueError):
            NetworkConfig(topology="fbfly", routing="ugal", num_vcs=3)

    def test_invalid_topology(self):
        from repro.network.config import NetworkConfig

        with pytest.raises(ValueError):
            NetworkConfig(topology="ring")

    def test_chaining_parsed_from_string(self):
        from repro.network.config import mesh_config

        cfg = mesh_config(chaining="same_input")
        assert cfg.chaining is ChainingScheme.SAME_INPUT
