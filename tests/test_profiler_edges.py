"""Edge-case tests for PhaseProfiler: zero-cycle runs, partial epochs,
detach/re-attach, serialization stability, and hot-spot attribution."""

import json

import pytest

from repro.network.config import mesh_config
from repro.network.network import Network
from repro.obs.profiler import (
    PHASES,
    PhaseProfiler,
    collapsed_from_dict,
    compute_hotspots,
    format_profile_report,
    hotspots_from_dict,
    is_profile_dict,
)
from repro.sim.runner import run_simulation

RUN = dict(rate=0.2, warmup=60, measure=120, drain=0, seed=2)


class TestZeroCycles:
    def test_untouched_profiler_is_empty_and_serializable(self):
        prof = PhaseProfiler(epoch_cycles=10)
        assert prof.cycles == 0
        assert prof.epochs == []
        assert prof.cycles_per_sec() == 0.0
        assert prof.total_seconds() == 0.0
        assert prof.phase_totals() == {name: 0.0 for name in PHASES}
        assert prof.hotspots()[0][1] == 0.0
        assert prof.collapsed_stacks() == []
        data = prof.to_dict()
        assert data["total_cycles"] == 0
        assert data["epochs"] == []

    def test_finish_without_cycles_is_safe(self):
        prof = PhaseProfiler(epoch_cycles=10)
        prof.finish()
        prof.finish()
        assert prof.epochs == []

    def test_zero_cycle_simulation(self):
        prof = PhaseProfiler(epoch_cycles=10)
        run_simulation(mesh_config(mesh_k=4), rate=0.1, warmup=0,
                       measure=0, drain=0, profiler=prof)
        assert prof.cycles == 0
        assert prof.epochs == []


class TestPartialEpochs:
    def test_partial_final_epoch_closed_by_finish(self):
        prof = PhaseProfiler(epoch_cycles=100)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        # 180 cycles with 100-cycle epochs: one full + one partial.
        assert prof.cycles == 180
        assert [e["cycles"] for e in prof.epochs] == [100, 80]
        assert prof.epochs[1]["start_cycle"] == 100
        assert all(e["seconds"] > 0 for e in prof.epochs)

    def test_finish_twice_does_not_duplicate_epoch(self):
        prof = PhaseProfiler(epoch_cycles=100)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        epochs = len(prof.epochs)
        prof.finish()
        assert len(prof.epochs) == epochs

    def test_exact_epoch_boundary_leaves_no_partial(self):
        prof = PhaseProfiler(epoch_cycles=90)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        assert [e["cycles"] for e in prof.epochs] == [90, 90]


class TestDetachReattach:
    def test_detach_stops_accumulation(self):
        config = mesh_config(mesh_k=4)
        net = Network(config)
        prof = net.attach_profiler(PhaseProfiler(epoch_cycles=10))
        net.run(30)
        prof.finish()
        cycles_attached = prof.cycles
        assert cycles_attached == 30
        detached = net.detach_profiler()
        assert detached is prof
        assert net.profiler is None
        assert all(r.profiler is None for r in net.routers)
        net.run(25)
        assert prof.cycles == cycles_attached  # nothing counted detached

    def test_reattach_continues_accumulating(self):
        config = mesh_config(mesh_k=4)
        net = Network(config)
        prof = PhaseProfiler(epoch_cycles=10)
        net.attach_profiler(prof)
        net.run(30)
        net.detach_profiler()
        net.run(100)
        net.attach_profiler(prof)
        net.run(20)
        prof.finish()
        # 30 attached + 20 re-attached; the 100 detached cycles invisible.
        assert prof.cycles == 50
        assert sum(e["cycles"] for e in prof.epochs) == 50

    def test_detach_without_attach_returns_none(self):
        net = Network(mesh_config(mesh_k=4))
        assert net.detach_profiler() is None


class TestSerializationStability:
    def test_to_dict_is_stable_and_json_safe(self):
        prof = PhaseProfiler(epoch_cycles=50)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        first = prof.to_dict()
        second = prof.to_dict()
        assert first == second  # reporting must not mutate state
        assert json.loads(json.dumps(first)) == first
        assert set(first["phase_seconds"]) == set(PHASES)

    def test_save_round_trip(self, tmp_path):
        prof = PhaseProfiler(epoch_cycles=50)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        path = tmp_path / "profile.json"
        prof.save(str(path))
        data = json.loads(path.read_text())
        assert data == prof.to_dict()
        assert is_profile_dict(data)

    def test_components_survive_save(self, tmp_path):
        prof = PhaseProfiler(epoch_cycles=50)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        assert "sa;alloc:islip1" in prof.component_totals()
        path = tmp_path / "profile.json"
        prof.save(str(path))
        data = json.loads(path.read_text())
        assert data["components"] == prof.component_totals()


class TestHotspots:
    def test_component_self_time_split(self):
        rows = compute_hotspots(
            total_seconds=10.0,
            phase_totals={"sa": 4.0, "stream": 2.0},
            components={"sa;alloc:islip1": 3.0},
        )
        by_stack = {stack: (secs, pct) for stack, secs, pct in rows}
        assert by_stack["router;sa;alloc:islip1"] == (3.0, 30.0)
        assert by_stack["router;sa"] == (1.0, 10.0)  # self = 4 - 3
        assert by_stack["router;stream"] == (2.0, 20.0)
        assert by_stack["other"] == (4.0, 40.0)  # outside the pipeline
        assert [r[1] for r in rows] == sorted(
            (r[1] for r in rows), reverse=True
        )

    def test_component_exceeding_phase_clamps_to_zero(self):
        rows = compute_hotspots(1.0, {"sa": 0.5}, {"sa;alloc:x": 0.6})
        by_stack = {stack: secs for stack, secs, _ in rows}
        assert by_stack["router;sa"] == 0.0

    def test_live_run_attributes_allocator_time(self):
        prof = PhaseProfiler(epoch_cycles=50)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        stacks = [stack for stack, _, _ in prof.hotspots()]
        assert "router;sa;alloc:islip1" in stacks
        assert "other" in stacks
        # Component time is bounded by its phase's total.
        assert prof.component_totals()["sa;alloc:islip1"] <= \
            prof.phase_totals()["sa"] + 1e-9

    def test_collapsed_stack_format(self):
        data = {
            "total_cycles": 100,
            "cycles_per_sec": 1000.0,
            "epoch_cycles": 50,
            "phase_seconds": {"sa": 4.0, "stream": 2.0},
            "components": {"sa;alloc:islip1": 3.0},
            "epochs": [{"start_cycle": 0, "cycles": 100, "seconds": 10.0,
                        "cycles_per_sec": 10.0, "phase_seconds": {}}],
        }
        lines = collapsed_from_dict(data)
        assert "sim;other 4000000" in lines
        assert "sim;router;sa;alloc:islip1 3000000" in lines
        assert "sim;router;sa 1000000" in lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("sim;")
            assert int(count) > 0  # zero-weight stacks are dropped

    def test_hotspots_from_dict_matches_live(self):
        prof = PhaseProfiler(epoch_cycles=50)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        assert hotspots_from_dict(prof.to_dict()) == prof.hotspots()

    def test_format_profile_report(self):
        prof = PhaseProfiler(epoch_cycles=50)
        run_simulation(mesh_config(mesh_k=4), profiler=prof, **RUN)
        report = format_profile_report(prof.to_dict())
        assert "wall-clock hot spots" in report
        assert "cycles/sec per epoch" in report
        assert "router;sa;alloc:islip1" in report


def test_is_profile_dict_rejects_other_json():
    assert not is_profile_dict({"cases": {}})
    assert not is_profile_dict([1, 2])
    assert is_profile_dict({"epochs": [], "phase_seconds": {}})
