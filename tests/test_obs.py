"""Observability layer: trace bus, metrics registry, profiler, report."""

import json

import pytest

from repro.network.config import mesh_config
from repro.network.network import Network
from repro.obs import (
    EVENT_TYPES,
    NULL_TRACE,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    PhaseProfiler,
    TraceBus,
    TraceFilter,
    format_report,
    read_jsonl,
    summarize_trace,
)
from repro.sim.parallel import parallel_sweep
from repro.sim.runner import SimulationRun, run_simulation
from repro.traffic.injection import BernoulliInjector, FixedLength
from repro.traffic.patterns import build_pattern


def traced_run(config, rate=0.6, measure=300, drain=2000, packet_length=1,
               trace=None):
    """Run with window [0, measure) and a full drain; returns (result, net)."""
    import random

    net = Network(config, trace=trace)
    rng = random.Random(7)
    pat = build_pattern("uniform", net.num_terminals, rng)
    inj = BernoulliInjector(
        net.num_terminals, pat, rate, FixedLength(packet_length), rng
    )
    run = SimulationRun(net, inj, warmup=0, measure=measure, drain=drain)
    return run.execute(), net


class TestTraceBus:
    def test_null_trace_never_active(self):
        assert NULL_TRACE.active is False

    def test_active_requires_sink_and_enabled(self):
        bus = TraceBus()
        assert not bus.active  # no sink yet
        sink = bus.attach(MemorySink())
        assert bus.active
        bus.disable()
        assert not bus.active
        bus.enable()
        assert bus.active
        bus.detach(sink)
        assert not bus.active

    def test_emit_counts_and_fans_out(self):
        bus = TraceBus()
        a, b = bus.attach(MemorySink()), bus.attach(MemorySink())
        bus.emit("sa_grant", 5, router=1, port=2, pid=9)
        assert bus.counts == {"sa_grant": 1}
        assert a.events == b.events
        assert a.events[0] == {
            "ev": "sa_grant", "cycle": 5, "router": 1, "port": 2, "pid": 9
        }

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = TraceBus()
        bus.attach(JsonlSink(str(path)))
        bus.emit("pc_chain", 3, router=0, port=1, pid=4)
        bus.emit("flit_ejected", 9, terminal=2, pid=4, tail=True)
        bus.close()
        events = read_jsonl(str(path))
        assert [e["ev"] for e in events] == ["pc_chain", "flit_ejected"]
        assert events[1]["tail"] is True


class TestTraceFilter:
    def test_parse_and_admit(self):
        filt = TraceFilter.parse("router=3|12,event=sa_grant|pc_chain")
        assert filt.admits({"ev": "sa_grant", "cycle": 0, "router": 3})
        assert not filt.admits({"ev": "sa_grant", "cycle": 0, "router": 4})
        assert not filt.admits({"ev": "flit_routed", "cycle": 0, "router": 3})

    def test_packet_and_port_filters(self):
        filt = TraceFilter(ports=[2], packets=[7])
        assert filt.admits({"ev": "sa_grant", "cycle": 0, "port": 2, "pid": 7})
        assert not filt.admits({"ev": "sa_grant", "cycle": 0, "port": 1, "pid": 7})
        # Events lacking a filtered key are dropped by that criterion.
        assert not filt.admits({"ev": "packet_created", "cycle": 0, "pid": 7})

    def test_bus_applies_filter(self):
        bus = TraceBus(filter=TraceFilter(events=["pc_chain"]))
        sink = bus.attach(MemorySink())
        bus.emit("sa_grant", 1, router=0, port=0)
        bus.emit("pc_chain", 1, router=0, port=0)
        assert [e["ev"] for e in sink.events] == ["pc_chain"]

    def test_parse_rejects_bad_input(self):
        with pytest.raises(ValueError):
            TraceFilter.parse("router3")
        with pytest.raises(ValueError):
            TraceFilter.parse("flavor=spicy")
        with pytest.raises(ValueError):
            TraceFilter.parse("event=not_an_event")

    def test_empty_expression_admits_all(self):
        filt = TraceFilter.parse("")
        assert filt.admits({"ev": "sa_grant", "cycle": 0})


class TestTraceReconciliation:
    """Acceptance: trace event counts match the StatsCollector totals."""

    @pytest.fixture(scope="class")
    def traced(self):
        bus = TraceBus()
        sink = bus.attach(MemorySink())
        cfg = mesh_config(mesh_k=4, chaining="any_input", seed=3)
        result, net = traced_run(cfg, rate=0.7, measure=300, trace=bus)
        return result, net, sink.events

    def test_drain_completed(self, traced):
        result, _, _ = traced
        assert result.drained is True

    def test_pc_chain_events_match_chain_stats(self, traced):
        result, _, events = traced
        chains = sum(1 for e in events if e["ev"] == "pc_chain")
        assert chains == result.chain_stats.total_chains > 0

    def test_ejection_events_match_collector(self, traced):
        _, net, events = traced
        window = net.stats.window
        in_window = [
            e for e in events
            if e["ev"] == "flit_ejected" and window[0] <= e["cycle"] < window[1]
        ]
        assert len(in_window) == net.stats.flits_ejected
        tails = sum(1 for e in in_window if e["tail"])
        assert tails == net.stats.packets_ejected

    def test_sa_grant_events_present_and_bounded(self, traced):
        _, _, events = traced
        grants = sum(1 for e in events if e["ev"] == "sa_grant")
        routed = sum(1 for e in events if e["ev"] == "flit_routed")
        assert 0 < grants <= routed

    def test_injected_events_match_created(self, traced):
        _, _, events = traced
        created = sum(1 for e in events if e["ev"] == "packet_created")
        heads = sum(
            1 for e in events if e["ev"] == "flit_injected" and e["idx"] == 0
        )
        assert heads == created  # fully drained: everything got injected

    def test_event_types_are_known(self, traced):
        _, _, events = traced
        assert {e["ev"] for e in events} <= EVENT_TYPES

    def test_report_reconstructs_chain_count(self, traced):
        result, _, events = traced
        summary = summarize_trace(events)
        chained = sum(
            (length - 1) * count
            for length, count in summary.chain_lengths.items()
        )
        assert chained == result.chain_stats.total_chains

    def test_conn_events_for_multiflit_packets(self):
        bus = TraceBus()
        sink = bus.attach(MemorySink())
        cfg = mesh_config(mesh_k=4, chaining="same_input", seed=5)
        traced_run(cfg, rate=0.5, measure=200, packet_length=4, trace=bus)
        kinds = {e["ev"] for e in sink.events}
        assert "conn_held" in kinds and "conn_released" in kinds
        reasons = {
            e["reason"] for e in sink.events if e["ev"] == "conn_released"
        }
        assert "tail" in reasons

    def test_starvation_tick_emitted_under_threshold(self):
        # Length-aware chaining refuses chains that would cross the
        # threshold, so forced releases only happen when a single packet
        # outlives it: packets (6 flits) longer than the threshold (4).
        bus = TraceBus()
        sink = bus.attach(MemorySink())
        cfg = mesh_config(
            mesh_k=4, chaining="any_input", starvation_threshold=4, seed=5
        )
        traced_run(cfg, rate=0.8, measure=300, packet_length=6, trace=bus)
        ticks = [e for e in sink.events if e["ev"] == "starvation_tick"]
        assert ticks and all(t["mode"] == "threshold" for t in ticks)
        cuts = [
            e for e in sink.events
            if e["ev"] == "conn_released" and e["reason"] == "starvation"
        ]
        assert len(cuts) == len(ticks)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("flits").inc(3)
        reg.counter("flits").inc(2)  # get-or-create accumulates
        reg.gauge("load").set(0.5)
        h = reg.histogram("lat", edges=(10, 20))
        h.observe(5)
        h.observe(15)
        h.observe(99)
        d = reg.to_dict()
        assert d["counters"]["flits"] == 5
        assert d["gauges"]["load"] == 0.5
        assert d["histograms"]["lat"]["counts"] == [1, 1, 1]
        assert d["histograms"]["lat"]["count"] == 3
        assert d["histograms"]["lat"]["sum"] == 119.0

    def test_counter_rejects_decrement(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_bucket_edges_are_inclusive_upper(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=(10,))
        h.observe(10)  # lands in the le=10 bucket, not overflow
        assert h.counts == [1, 0]

    def test_prometheus_text_format(self):
        reg = MetricsRegistry(prefix="repro")
        reg.counter("flits", help="total flits").inc(7)
        h = reg.histogram("lat", edges=(10, 20), help="latency")
        h.observe(15)
        text = reg.to_prometheus()
        assert "# TYPE repro_flits counter" in text
        assert "repro_flits 7" in text
        assert 'repro_lat_bucket{le="10"} 0' in text
        assert 'repro_lat_bucket{le="20"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text

    def test_save_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        path = tmp_path / "m.json"
        reg.save_json(str(path))
        assert json.loads(path.read_text())["counters"]["c"] == 1

    def test_publish_from_run(self):
        reg = MetricsRegistry()
        cfg = mesh_config(mesh_k=4, chaining="any_input", seed=2)
        result = run_simulation(
            cfg, rate=0.6, warmup=50, measure=150, drain=500, metrics=reg,
        )
        d = reg.to_dict()
        assert d["counters"]["chains_total"] == result.chain_stats.total_chains
        assert d["gauges"]["throughput_avg"] == pytest.approx(
            result.avg_throughput
        )
        assert (
            d["histograms"]["packet_latency_cycles"]["count"]
            == result.packet_latency.count
        )


class TestPhaseProfiler:
    def test_epoch_rollup(self):
        prof = PhaseProfiler(epoch_cycles=10)
        for _ in range(25):
            prof.add("sa", 0.001)
            prof.end_cycle()
        prof.finish()
        assert [e["cycles"] for e in prof.epochs] == [10, 10, 5]
        assert prof.cycles_per_sec() > 0
        assert prof.phase_totals()["sa"] == pytest.approx(0.025)

    def test_to_dict_and_save(self, tmp_path):
        prof = PhaseProfiler(epoch_cycles=5)
        for _ in range(5):
            prof.end_cycle()
        prof.finish()
        path = tmp_path / "p.json"
        prof.save(str(path))
        data = json.loads(path.read_text())
        assert data["total_cycles"] == 5
        assert data["epoch_cycles"] == 5
        assert len(data["epochs"]) == 1

    def test_run_simulation_attaches_profiler(self):
        prof = PhaseProfiler(epoch_cycles=50)
        cfg = mesh_config(mesh_k=4, chaining="same_input", seed=1)
        result = run_simulation(
            cfg, rate=0.3, warmup=50, measure=100, drain=100, profiler=prof,
        )
        assert result.timing is not None
        assert result.timing["cycles_per_sec"] > 0
        assert result.timing["phase_seconds"]["sa"] > 0
        assert prof.cycles == result.cycles_run

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            PhaseProfiler(epoch_cycles=0)


class TestParallelProfiling:
    def test_inline_sweep_carries_timing(self):
        cfg = mesh_config(mesh_k=4, seed=1)
        results = parallel_sweep(
            cfg, [0.1, 0.2], workers=0, profile_epoch=100,
            warmup=50, measure=100, drain=0,
        )
        assert len(results) == 2
        for _, result in results:
            assert result.timing is not None
            assert result.timing["cycles_per_sec"] > 0


class TestTraceReport:
    def test_chain_run_stitching(self):
        # conn held -> two same-cycle chained takeovers -> final release.
        events = [
            {"ev": "conn_held", "cycle": 1, "router": 0, "port": 2, "pid": 1},
            {"ev": "conn_released", "cycle": 5, "router": 0, "port": 2,
             "in_port": 1, "reason": "tail"},
            {"ev": "pc_chain", "cycle": 5, "router": 0, "port": 2, "pid": 2},
            {"ev": "conn_released", "cycle": 9, "router": 0, "port": 2,
             "in_port": 1, "reason": "tail"},
            {"ev": "pc_chain", "cycle": 9, "router": 0, "port": 2, "pid": 3},
            {"ev": "conn_released", "cycle": 12, "router": 0, "port": 2,
             "in_port": 1, "reason": "tail"},
        ]
        summary = summarize_trace(events)
        assert dict(summary.chain_lengths) == {3: 1}

    def test_sa_tail_chain_starts_at_two(self):
        events = [
            {"ev": "pc_chain", "cycle": 4, "router": 1, "port": 0, "pid": 8},
            {"ev": "conn_released", "cycle": 5, "router": 1, "port": 0,
             "in_port": 3, "reason": "tail"},
        ]
        summary = summarize_trace(events)
        assert dict(summary.chain_lengths) == {2: 1}

    def test_unchained_connection_counts_as_one(self):
        events = [
            {"ev": "conn_held", "cycle": 1, "router": 0, "port": 1, "pid": 1},
            {"ev": "conn_released", "cycle": 4, "router": 0, "port": 1,
             "in_port": 0, "reason": "tail"},
        ]
        summary = summarize_trace(events)
        assert dict(summary.chain_lengths) == {1: 1}

    def test_stale_release_then_fresh_chain_splits_runs(self):
        events = [
            {"ev": "conn_held", "cycle": 1, "router": 0, "port": 1, "pid": 1},
            {"ev": "conn_released", "cycle": 4, "router": 0, "port": 1,
             "in_port": 0, "reason": "tail"},
            # A later chain on the same port rides a NEW sa-tail
            # connection; the old run must finalize at length 1.
            {"ev": "pc_chain", "cycle": 9, "router": 0, "port": 1, "pid": 2},
        ]
        summary = summarize_trace(events)
        assert dict(summary.chain_lengths) == {1: 1, 2: 1}

    def test_format_report_sections(self):
        events = [
            {"ev": "flit_routed", "cycle": 2, "router": 0, "port": 1,
             "pid": 1, "idx": 0, "in_port": 4, "in_vc": 0, "out_vc": 0},
            {"ev": "sa_grant", "cycle": 2, "router": 0, "port": 1, "pid": 1,
             "in_port": 4, "vc": 0, "out_vc": 0},
            {"ev": "flit_ejected", "cycle": 7, "terminal": 3, "pid": 1,
             "idx": 0, "tail": True, "latency": 7, "blocked": 2},
        ]
        text = format_report(summarize_trace(events))
        assert "event counts" in text
        assert "chain-length distribution" in text
        assert "per-output-port contention" in text
        assert "top 10 blocked packets" in text
        assert "sa_grant" in text


class TestCLIObservability:
    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_run_trace_and_report(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        code, text = self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.6", "--chaining", "any_input",
            "--warmup", "50", "--measure", "200", "--drain", "500",
            "--trace", str(trace),
        )
        assert code == 0
        assert "drain             : complete" in text
        code, text = self.run_cli("report", str(trace))
        assert code == 0
        assert "chain-length distribution" in text
        assert "chained takeovers reconstructed" in text

    def test_trace_filter_limits_events(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        code, _ = self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.4",
            "--warmup", "50", "--measure", "100", "--drain", "100",
            "--trace", str(trace), "--trace-filter", "event=sa_grant",
        )
        assert code == 0
        events = read_jsonl(str(trace))
        assert events and all(e["ev"] == "sa_grant" for e in events)

    def test_metrics_export_json_and_prom(self, tmp_path):
        mjson = tmp_path / "m.json"
        mprom = tmp_path / "m.prom"
        for path in (mjson, mprom):
            code, _ = self.run_cli(
                "run", "--mesh-k", "4", "--rate", "0.2",
                "--warmup", "50", "--measure", "100", "--drain", "100",
                "--metrics", str(path),
            )
            assert code == 0
        assert "counters" in json.loads(mjson.read_text())
        assert "# TYPE repro_flits_ejected counter" in mprom.read_text()

    def test_run_json_output(self):
        code, text = self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.2",
            "--warmup", "50", "--measure", "100", "--drain", "100", "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["drained"] is True
        assert "metrics" in payload
        assert payload["avg_throughput"] > 0

    def test_sweep_json_output(self):
        code, text = self.run_cli(
            "sweep", "--mesh-k", "4", "--rates", "0.05", "0.1",
            "--warmup", "50", "--measure", "100", "--json",
        )
        assert code == 0
        rows = json.loads(text)
        assert [r["rate"] for r in rows] == [0.05, 0.1]
        assert all("metrics" in r for r in rows)

    def test_profile_output(self, tmp_path):
        prof = tmp_path / "p.json"
        code, text = self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.2",
            "--warmup", "50", "--measure", "100", "--drain", "0",
            "--profile", str(prof), "--profile-epoch", "50",
        )
        assert code == 0
        assert "simulation speed" in text
        data = json.loads(prof.read_text())
        assert data["cycles_per_sec"] > 0
        assert data["total_cycles"] == 150


class TestTraceIO:
    def test_gzip_sink_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        bus = TraceBus()
        bus.attach(JsonlSink(str(path)))
        bus.emit("sa_grant", 1, router=0, port=0, pid=1)
        bus.close()
        import gzip

        with gzip.open(path, "rt") as fh:
            assert json.loads(fh.readline())["ev"] == "sa_grant"
        assert read_jsonl(str(path))[0]["cycle"] == 1

    def test_jsonl_sink_context_manager(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.write({"ev": "vc_free", "cycle": 2})
        assert read_jsonl(str(path)) == [{"ev": "vc_free", "cycle": 2}]
        sink.close()  # idempotent after exit

    def test_trace_bus_context_manager(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceBus() as bus:
            bus.attach(JsonlSink(str(path)))
            bus.emit("pc_chain", 4, router=1, port=0, pid=2)
        assert not bus.active  # sinks closed and detached on exit
        assert read_jsonl(str(path))[0]["ev"] == "pc_chain"

    def test_read_jsonl_from_stdin(self, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"ev": "sa_grant", "cycle": 3}\n\n')
        )
        events = read_jsonl("-")
        assert events == [{"ev": "sa_grant", "cycle": 3}]

    def test_report_cli_reads_gzip(self, tmp_path):
        import io

        from repro.cli import main

        path = tmp_path / "t.jsonl.gz"
        with TraceBus() as bus:
            bus.attach(JsonlSink(str(path)))
            bus.emit("conn_held", 1, router=0, port=1, pid=1)
            bus.emit("conn_released", 4, router=0, port=1, in_port=0,
                     reason="tail")
        out = io.StringIO()
        assert main(["report", str(path)], out=out) == 0
        assert "chain-length distribution" in out.getvalue()


class TestStatsListeners:
    def _collector(self):
        from repro.stats.collector import StatsCollector

        c = StatsCollector(num_terminals=4)
        c.set_window(0, 100)
        return c

    class _Recorder:
        def __init__(self):
            self.flits = []
            self.packets = []

        def on_flit_ejected(self, flit, cycle):
            self.flits.append(cycle)

        def on_packet_ejected(self, packet, cycle):
            self.packets.append(cycle)

    class _Packet:
        def __init__(self, src=0, size=1, created=0):
            self.src = src
            self.size = size
            self.time_created = created
            self.time_injected = created
            self.blocked_cycles = 0

    class _Flit:
        def __init__(self, packet):
            self.packet = packet

    def test_listener_receives_ejections(self):
        c = self._collector()
        rec = c.add_listener(self._Recorder())
        pkt = self._Packet()
        c.record_flit_ejected(self._Flit(pkt), 5)
        c.record_ejected(pkt, 5)
        assert rec.flits == [5]
        assert rec.packets == [5]

    def test_listener_sees_out_of_window_events(self):
        # Window filtering is the listener's business, not the
        # collector's: hooks fire on every ejection.
        c = self._collector()
        rec = c.add_listener(self._Recorder())
        pkt = self._Packet(created=500)
        c.record_flit_ejected(self._Flit(pkt), 500)
        c.record_ejected(pkt, 505)
        assert rec.flits == [500]
        assert rec.packets == [505]
        assert c.flits_ejected == 0  # collector's window still applies

    def test_remove_listener(self):
        c = self._collector()
        rec = c.add_listener(self._Recorder())
        c.remove_listener(rec)
        pkt = self._Packet()
        c.record_flit_ejected(self._Flit(pkt), 1)
        c.record_ejected(pkt, 1)
        assert rec.flits == [] and rec.packets == []

    def test_listeners_survive_reset(self):
        c = self._collector()
        rec = c.add_listener(self._Recorder())
        c.reset()
        c.record_flit_ejected(self._Flit(self._Packet()), 2)
        assert rec.flits == [2]

    def test_partial_listener_allowed(self):
        class FlitOnly:
            def __init__(self):
                self.seen = 0

            def on_flit_ejected(self, flit, cycle):
                self.seen += 1

        c = self._collector()
        listener = c.add_listener(FlitOnly())
        pkt = self._Packet()
        c.record_flit_ejected(self._Flit(pkt), 1)
        c.record_ejected(pkt, 1)
        assert listener.seen == 1

    def test_hookless_listener_rejected(self):
        c = self._collector()
        with pytest.raises(TypeError):
            c.add_listener(object())

    def test_timeseries_attach_uses_listener_api(self):
        from repro.stats.timeseries import attach

        c = self._collector()
        series = attach(c, window=10)
        pkt = self._Packet()
        c.record_flit_ejected(self._Flit(pkt), 3)
        c.record_ejected(pkt, 7)
        assert series.samples[0].flits == 1
        assert series.samples[0].packets == 1
        # The collector's own methods are untouched (no monkey-patching).
        assert c.record_flit_ejected.__func__ is (
            type(c).record_flit_ejected
        )


class TestTraceReportEdgeCases:
    """The three chain-run stitching branches under degraded traces."""

    def test_lost_release_finalizes_stale_run(self):
        # The release event was filtered out of the trace: a fresh
        # conn_held on the same port must close the old run at its
        # current length instead of merging the two holds.
        events = [
            {"ev": "conn_held", "cycle": 1, "router": 0, "port": 2, "pid": 1},
            {"ev": "conn_released", "cycle": 3, "router": 0, "port": 2,
             "in_port": 1, "reason": "tail"},
            {"ev": "pc_chain", "cycle": 3, "router": 0, "port": 2, "pid": 2},
            # pid 2's release never made it into the trace.
            {"ev": "conn_held", "cycle": 9, "router": 0, "port": 2, "pid": 3},
            {"ev": "conn_released", "cycle": 12, "router": 0, "port": 2,
             "in_port": 1, "reason": "tail"},
        ]
        summary = summarize_trace(events)
        assert dict(summary.chain_lengths) == {2: 1, 1: 1}

    def test_same_cycle_chain_onto_sa_formed_connection(self):
        # An SA tail grant forms and consumes a connection in one cycle
        # (no conn_held is ever emitted); a same-cycle pc_chain rides
        # it, and further chains extend the same run.
        events = [
            {"ev": "pc_chain", "cycle": 6, "router": 2, "port": 3, "pid": 4},
            {"ev": "conn_released", "cycle": 8, "router": 2, "port": 3,
             "in_port": 0, "reason": "tail"},
            {"ev": "pc_chain", "cycle": 8, "router": 2, "port": 3, "pid": 5},
            {"ev": "conn_released", "cycle": 11, "router": 2, "port": 3,
             "in_port": 0, "reason": "tail"},
        ]
        summary = summarize_trace(events)
        assert dict(summary.chain_lengths) == {3: 1}

    def test_aged_out_release_splits_runs(self):
        # The held connection released un-chained; a pc_chain several
        # cycles later belongs to a NEW (SA-formed) connection, so the
        # old run finalizes at its pre-release length.
        events = [
            {"ev": "conn_held", "cycle": 1, "router": 0, "port": 1, "pid": 1},
            {"ev": "conn_released", "cycle": 4, "router": 0, "port": 1,
             "in_port": 0, "reason": "tail"},
            {"ev": "pc_chain", "cycle": 9, "router": 0, "port": 1, "pid": 2},
            {"ev": "conn_released", "cycle": 12, "router": 0, "port": 1,
             "in_port": 0, "reason": "tail"},
        ]
        summary = summarize_trace(events)
        assert dict(summary.chain_lengths) == {1: 1, 2: 1}

    def test_starvation_release_then_rechain_splits_runs(self):
        # A starvation cut is a non-tail release: the next-cycle chain
        # rides a fresh connection, not the cut one.
        events = [
            {"ev": "conn_held", "cycle": 1, "router": 3, "port": 0, "pid": 1},
            {"ev": "pc_chain", "cycle": 4, "router": 3, "port": 0, "pid": 2},
            {"ev": "conn_released", "cycle": 7, "router": 3, "port": 0,
             "in_port": 2, "reason": "starvation"},
            {"ev": "pc_chain", "cycle": 9, "router": 3, "port": 0, "pid": 3},
            {"ev": "conn_released", "cycle": 11, "router": 3, "port": 0,
             "in_port": 1, "reason": "tail"},
        ]
        summary = summarize_trace(events)
        assert dict(summary.chain_lengths) == {2: 2}


class TestCLISpansAndSamples:
    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_spans_subcommand_text_and_perfetto(self, tmp_path):
        trace = tmp_path / "t.jsonl.gz"
        perfetto = tmp_path / "chrome.json"
        code, _ = self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.4", "--chaining",
            "any_input", "--warmup", "50", "--measure", "200",
            "--drain", "500", "--trace", str(trace),
        )
        assert code == 0
        code, text = self.run_cli(
            "spans", str(trace), "--perfetto", str(perfetto),
            "--limit", "20", "--top", "3",
        )
        assert code == 0
        assert "latency decomposition" in text
        assert "complete packets (0 incomplete dropped)" in text
        chrome = json.loads(perfetto.read_text())
        assert chrome["traceEvents"]
        assert len({
            e["tid"] for e in chrome["traceEvents"]
        }) <= 20

    def test_spans_json_output(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.3", "--warmup", "50",
            "--measure", "150", "--drain", "500", "--trace", str(trace),
        )
        code, text = self.run_cli("spans", str(trace), "--json")
        assert code == 0
        decomp = json.loads(text)
        assert decomp["packets"] > 0
        assert set(decomp["mean"]) == {
            "source_queue", "vc_wait", "sa_wait", "traversal",
            "serialization",
        }

    def test_samples_flag_writes_jsonl(self, tmp_path):
        samples = tmp_path / "s.jsonl"
        code, _ = self.run_cli(
            "run", "--mesh-k", "4", "--rate", "0.3", "--warmup", "0",
            "--measure", "200", "--drain", "0",
            "--samples", str(samples), "--sample-period", "50",
        )
        assert code == 0
        rows = [
            json.loads(line)
            for line in samples.read_text().strip().split("\n")
        ]
        assert [r["cycle"] for r in rows] == [0, 50, 100, 150]
        assert all(len(r["buffered"]) == 16 for r in rows)


class TestDrainReporting:
    def test_incomplete_drain_reported(self):
        cfg = mesh_config(mesh_k=4, seed=1)
        result = run_simulation(
            cfg, rate=0.9, warmup=0, measure=200, drain=2,
        )
        assert result.drained is False
        assert result.drain_cycles == 2

    def test_no_drain_requested_is_none(self):
        cfg = mesh_config(mesh_k=4, seed=1)
        result = run_simulation(cfg, rate=0.1, warmup=0, measure=50, drain=0)
        assert result.drained is None
        assert result.drain_cycles == 0

    def test_to_dict_round_trips(self):
        cfg = mesh_config(mesh_k=4, seed=1)
        result = run_simulation(cfg, rate=0.1, warmup=0, measure=50, drain=200)
        data = result.to_dict()
        json.dumps(data)  # fully serializable
        assert data["drained"] is True
        assert data["drain_cycles"] == result.drain_cycles
        assert data["saturated"] == result.saturated
