"""StatsCollector measurement-window edge cases.

The BookSim-style window semantics have sharp edges: packets created
before the window must not contribute latency samples even if they
eject inside it, packets created inside the window keep contributing
after it closes, and throughput denominators must stay sane for
zero-length windows and inactive sources.
"""

from repro.network.flit import Packet
from repro.stats.collector import StatsCollector


def make_packet(src=0, dest=1, size=1, created=0):
    return Packet(src, dest, size, created)


def eject(collector, packet, cycle):
    """Feed all of a packet's flits plus the tail-ejection record."""
    for flit in packet.flits():
        collector.record_flit_ejected(flit, cycle)
    collector.record_ejected(packet, cycle)


class TestWindowEdges:
    def test_created_before_window_no_latency_sample(self):
        c = StatsCollector(2)
        c.set_window(100, 200)
        packet = make_packet(created=50)
        eject(c, packet, 150)
        # Ejection is inside the window, so the flit/packet counters
        # tick, but the latency sample is censored (partial warmup life).
        assert c.flits_ejected == 1
        assert c.packets_ejected == 1
        assert c.packet_latencies == []
        assert c.max_packet_latency == 0

    def test_ejected_after_window_keeps_latency_sample(self):
        c = StatsCollector(2)
        c.set_window(100, 200)
        packet = make_packet(created=150)
        eject(c, packet, 250)
        # Throughput counters only cover the window...
        assert c.flits_ejected == 0
        assert c.packets_ejected == 0
        # ...but the latency of an in-window packet still counts
        # (measured packets are allowed to finish during the drain).
        assert c.packet_latencies == [100]
        assert c.max_packet_latency == 100

    def test_created_at_window_end_is_excluded(self):
        c = StatsCollector(2)
        c.set_window(100, 200)
        eject(c, make_packet(created=200), 260)
        assert c.packet_latencies == []

    def test_created_at_window_start_is_included(self):
        c = StatsCollector(2)
        c.set_window(100, 200)
        eject(c, make_packet(created=100), 160)
        assert c.packet_latencies == [60]

    def test_zero_length_window(self):
        c = StatsCollector(4)
        c.set_window(100, 100)
        eject(c, make_packet(created=100), 150)
        assert c.window_cycles == 0
        assert c.throughput_per_source() == [0.0] * 4
        assert c.avg_throughput() == 0.0
        assert c.min_throughput() == 0.0

    def test_no_window_records_nothing(self):
        c = StatsCollector(2)
        packet = make_packet(created=0)
        c.record_created(packet, 0)
        eject(c, packet, 10)
        assert c.flits_ejected == 0
        assert c.packet_latencies == []


class TestMinThroughputInactiveSources:
    def test_inactive_sources_excluded_from_minimum(self):
        c = StatsCollector(3)
        c.set_window(0, 100)
        # Source 0 creates and ejects; sources 1-2 stay silent.
        packet = make_packet(src=0, created=10)
        c.record_created(packet, 10)
        eject(c, packet, 50)
        assert c.min_throughput() == c.throughput_per_source()[0] > 0

    def test_all_sources_inactive_yields_zero(self):
        c = StatsCollector(3)
        c.set_window(0, 100)
        assert c.min_throughput() == 0.0
        assert c.avg_throughput() == 0.0

    def test_active_source_with_zero_ejections_drags_minimum(self):
        c = StatsCollector(2)
        c.set_window(0, 100)
        # Source 0 ejects; source 1 offered load but nothing ejected
        # in-window -> worst-case throughput is 0 (starved source).
        p0 = make_packet(src=0, created=10)
        c.record_created(p0, 10)
        eject(c, p0, 50)
        c.record_created(make_packet(src=1, created=20), 20)
        assert c.min_throughput() == 0.0
        assert c.avg_throughput() > 0.0
