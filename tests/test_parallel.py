"""Tests for multiprocess sweeps."""

import json

import pytest

from repro.network.config import mesh_config
from repro.sim import parallel as parallel_mod
from repro.sim.parallel import (
    MatrixResults,
    PointError,
    SweepResults,
    parallel_matrix,
    parallel_sweep,
)

RUN = dict(warmup=100, measure=200, drain=0, pattern="uniform",
           packet_length=1)


class TestParallelSweep:
    def test_inline_mode_matches_rates(self):
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05, 0.1], workers=0, **RUN
        )
        assert [r for r, _ in results] == [0.05, 0.1]
        for rate, result in results:
            assert result.avg_throughput == pytest.approx(rate, abs=0.04)

    def test_process_pool_matches_inline(self):
        inline = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.1], workers=0, **RUN
        )
        pooled = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.1], workers=2, **RUN
        )
        assert inline[0][1].avg_throughput == pooled[0][1].avg_throughput

    def test_matrix(self):
        configs = {
            "base": mesh_config(mesh_k=4),
            "chained": mesh_config(mesh_k=4, chaining="any_input"),
        }
        out = parallel_matrix(configs, rates=[0.05, 0.1], workers=2, **RUN)
        assert set(out) == {"base", "chained"}
        for series in out.values():
            assert [r for r, _ in series] == [0.05, 0.1]

    def test_config_not_mutated(self):
        cfg = mesh_config(mesh_k=4, seed=123)
        parallel_sweep(cfg, rates=[0.05], workers=0, **RUN)
        assert cfg.seed == 123


BAD = mesh_config(mesh_k=4, allocator="no-such-allocator")


class TestPointFaultTolerance:
    def test_inline_failure_becomes_error_record(self):
        results = parallel_sweep(BAD, rates=[0.05, 0.1], workers=0,
                                 label="bad", **RUN)
        assert list(results) == []
        assert not results.complete
        assert len(results.errors) == 2
        err = results.errors[0]
        assert isinstance(err, PointError)
        assert err.label == "bad"
        assert err.rate == 0.05
        assert err.attempts == 2  # first try plus the default retry
        assert "no-such-allocator" in err.error

    def test_retries_zero_means_single_attempt(self):
        results = parallel_sweep(BAD, rates=[0.05], workers=0, retries=0,
                                 **RUN)
        assert results.errors[0].attempts == 1

    def test_pool_failure_spares_other_points(self):
        out = parallel_matrix(
            {"good": mesh_config(mesh_k=4), "bad": BAD},
            rates=[0.05, 0.1], workers=2, **RUN
        )
        assert not out.complete
        assert [r for r, _ in out["good"]] == [0.05, 0.1]
        assert out["bad"] == []
        assert sorted(e.rate for e in out.errors) == [0.05, 0.1]
        assert all(e.label == "bad" for e in out.errors)

    def test_timeout_recorded_per_point(self):
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05], workers=1,
            timeout=0.001, retries=0, **RUN
        )
        assert list(results) == []
        assert len(results.errors) == 1
        assert "Timeout" in results.errors[0].error

    def test_fully_successful_sweep_is_complete(self):
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, **RUN)
        assert results.complete
        assert results.errors == []

    def test_timeout_then_retry_success(self, monkeypatch):
        """A point that times out once succeeds on its retry attempt."""
        real_run_point = parallel_mod._run_point
        flaky = {"failed": False}

        def flaky_run_point(point):
            if not flaky["failed"]:
                flaky["failed"] = True
                raise TimeoutError("simulated per-point timeout")
            return real_run_point(point)

        monkeypatch.setattr(parallel_mod, "_run_point", flaky_run_point)
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, retries=1, **RUN)
        assert results.complete
        assert len(results) == 1
        assert flaky["failed"]

    def test_watchdog_window_is_threaded_into_workers(self, monkeypatch):
        seen = []
        real_run_point = parallel_mod._run_point

        def spying_run_point(point):
            seen.append(point.watchdog_window)
            return real_run_point(point)

        monkeypatch.setattr(parallel_mod, "_run_point", spying_run_point)
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, watchdog_window=500, **RUN)
        assert results.complete
        assert seen == [500]


class TestResultsRoundTrip:
    def test_point_error_survives_sweep_results_to_dict(self):
        results = parallel_sweep(BAD, rates=[0.05], workers=0, retries=0,
                                 label="bad", **RUN)
        data = json.loads(json.dumps(results.to_dict()))
        back = SweepResults.from_dict(data)
        assert not back.complete
        assert len(back.errors) == 1
        err = back.errors[0]
        assert isinstance(err, PointError)
        assert (err.label, err.rate, err.attempts) == ("bad", 0.05, 1)
        assert "no-such-allocator" in err.error

    def test_sweep_results_round_trip(self):
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05, 0.1],
                                 workers=0, **RUN)
        back = SweepResults.from_dict(json.loads(json.dumps(results.to_dict())))
        assert back.complete
        assert [r for r, _ in back] == [0.05, 0.1]
        assert [res.to_dict() for _, res in back] == \
            [res.to_dict() for _, res in results]

    def test_matrix_results_round_trip(self):
        out = parallel_matrix(
            {"good": mesh_config(mesh_k=4), "bad": BAD},
            rates=[0.05], workers=0, retries=0, **RUN
        )
        back = MatrixResults.from_dict(json.loads(json.dumps(out.to_dict())))
        assert set(back) == {"good", "bad"}
        assert not back.complete
        assert back.errors[0].label == "bad"
        assert [res.to_dict() for _, res in back["good"]] == \
            [res.to_dict() for _, res in out["good"]]
