"""Tests for multiprocess sweeps."""

import pytest

from repro.network.config import mesh_config
from repro.sim.parallel import parallel_matrix, parallel_sweep

RUN = dict(warmup=100, measure=200, drain=0, pattern="uniform",
           packet_length=1)


class TestParallelSweep:
    def test_inline_mode_matches_rates(self):
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05, 0.1], workers=0, **RUN
        )
        assert [r for r, _ in results] == [0.05, 0.1]
        for rate, result in results:
            assert result.avg_throughput == pytest.approx(rate, abs=0.04)

    def test_process_pool_matches_inline(self):
        inline = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.1], workers=0, **RUN
        )
        pooled = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.1], workers=2, **RUN
        )
        assert inline[0][1].avg_throughput == pooled[0][1].avg_throughput

    def test_matrix(self):
        configs = {
            "base": mesh_config(mesh_k=4),
            "chained": mesh_config(mesh_k=4, chaining="any_input"),
        }
        out = parallel_matrix(configs, rates=[0.05, 0.1], workers=2, **RUN)
        assert set(out) == {"base", "chained"}
        for series in out.values():
            assert [r for r, _ in series] == [0.05, 0.1]

    def test_config_not_mutated(self):
        cfg = mesh_config(mesh_k=4, seed=123)
        parallel_sweep(cfg, rates=[0.05], workers=0, **RUN)
        assert cfg.seed == 123
