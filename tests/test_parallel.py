"""Tests for multiprocess sweeps."""

import json

import pytest

from repro.network.config import mesh_config
from repro.sim import parallel as parallel_mod
from repro.sim.parallel import (
    MatrixResults,
    PointError,
    PointTiming,
    SweepResults,
    parallel_matrix,
    parallel_sweep,
)

RUN = dict(warmup=100, measure=200, drain=0, pattern="uniform",
           packet_length=1)


class TestParallelSweep:
    def test_inline_mode_matches_rates(self):
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05, 0.1], workers=0, **RUN
        )
        assert [r for r, _ in results] == [0.05, 0.1]
        for rate, result in results:
            assert result.avg_throughput == pytest.approx(rate, abs=0.04)

    def test_process_pool_matches_inline(self):
        inline = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.1], workers=0, **RUN
        )
        pooled = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.1], workers=2, **RUN
        )
        assert inline[0][1].avg_throughput == pooled[0][1].avg_throughput

    def test_matrix(self):
        configs = {
            "base": mesh_config(mesh_k=4),
            "chained": mesh_config(mesh_k=4, chaining="any_input"),
        }
        out = parallel_matrix(configs, rates=[0.05, 0.1], workers=2, **RUN)
        assert set(out) == {"base", "chained"}
        for series in out.values():
            assert [r for r, _ in series] == [0.05, 0.1]

    def test_config_not_mutated(self):
        cfg = mesh_config(mesh_k=4, seed=123)
        parallel_sweep(cfg, rates=[0.05], workers=0, **RUN)
        assert cfg.seed == 123


BAD = mesh_config(mesh_k=4, allocator="no-such-allocator")


class TestPointFaultTolerance:
    def test_inline_failure_becomes_error_record(self):
        results = parallel_sweep(BAD, rates=[0.05, 0.1], workers=0,
                                 label="bad", **RUN)
        assert list(results) == []
        assert not results.complete
        assert len(results.errors) == 2
        err = results.errors[0]
        assert isinstance(err, PointError)
        assert err.label == "bad"
        assert err.rate == 0.05
        assert err.attempts == 2  # first try plus the default retry
        assert "no-such-allocator" in err.error

    def test_retries_zero_means_single_attempt(self):
        results = parallel_sweep(BAD, rates=[0.05], workers=0, retries=0,
                                 **RUN)
        assert results.errors[0].attempts == 1

    def test_pool_failure_spares_other_points(self):
        out = parallel_matrix(
            {"good": mesh_config(mesh_k=4), "bad": BAD},
            rates=[0.05, 0.1], workers=2, **RUN
        )
        assert not out.complete
        assert [r for r, _ in out["good"]] == [0.05, 0.1]
        assert out["bad"] == []
        assert sorted(e.rate for e in out.errors) == [0.05, 0.1]
        assert all(e.label == "bad" for e in out.errors)

    def test_timeout_recorded_per_point(self):
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05], workers=1,
            timeout=0.001, retries=0, **RUN
        )
        assert list(results) == []
        assert len(results.errors) == 1
        assert "Timeout" in results.errors[0].error

    def test_fully_successful_sweep_is_complete(self):
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, **RUN)
        assert results.complete
        assert results.errors == []

    def test_timeout_then_retry_success(self, monkeypatch):
        """A point that times out once succeeds on its retry attempt."""
        real_run_point = parallel_mod._run_point
        flaky = {"failed": False}

        def flaky_run_point(point):
            if not flaky["failed"]:
                flaky["failed"] = True
                raise TimeoutError("simulated per-point timeout")
            return real_run_point(point)

        monkeypatch.setattr(parallel_mod, "_run_point", flaky_run_point)
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, retries=1, **RUN)
        assert results.complete
        assert len(results) == 1
        assert flaky["failed"]

    def test_watchdog_window_is_threaded_into_workers(self, monkeypatch):
        seen = []
        real_run_point = parallel_mod._run_point

        def spying_run_point(point):
            seen.append(point.watchdog_window)
            return real_run_point(point)

        monkeypatch.setattr(parallel_mod, "_run_point", spying_run_point)
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, watchdog_window=500, **RUN)
        assert results.complete
        assert seen == [500]


class TestResultsRoundTrip:
    def test_point_error_survives_sweep_results_to_dict(self):
        results = parallel_sweep(BAD, rates=[0.05], workers=0, retries=0,
                                 label="bad", **RUN)
        data = json.loads(json.dumps(results.to_dict()))
        back = SweepResults.from_dict(data)
        assert not back.complete
        assert len(back.errors) == 1
        err = back.errors[0]
        assert isinstance(err, PointError)
        assert (err.label, err.rate, err.attempts) == ("bad", 0.05, 1)
        assert "no-such-allocator" in err.error

    def test_sweep_results_round_trip(self):
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05, 0.1],
                                 workers=0, **RUN)
        back = SweepResults.from_dict(json.loads(json.dumps(results.to_dict())))
        assert back.complete
        assert [r for r, _ in back] == [0.05, 0.1]
        assert [res.to_dict() for _, res in back] == \
            [res.to_dict() for _, res in results]

    def test_matrix_results_round_trip(self):
        out = parallel_matrix(
            {"good": mesh_config(mesh_k=4), "bad": BAD},
            rates=[0.05], workers=0, retries=0, **RUN
        )
        back = MatrixResults.from_dict(json.loads(json.dumps(out.to_dict())))
        assert set(back) == {"good", "bad"}
        assert not back.complete
        assert back.errors[0].label == "bad"
        assert [res.to_dict() for _, res in back["good"]] == \
            [res.to_dict() for _, res in out["good"]]


class TestPointTimings:
    def test_inline_sweep_records_timings(self):
        import os

        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05, 0.1],
                                 workers=0, label="m4", **RUN)
        assert len(results.timings) == 2
        for timing, rate in zip(results.timings, [0.05, 0.1]):
            assert isinstance(timing, PointTiming)
            assert (timing.label, timing.rate) == ("m4", rate)
            assert timing.wall_time > 0
            assert timing.worker == os.getpid()  # inline: parent process
        assert results.total_wall_time() == pytest.approx(
            sum(t.wall_time for t in results.timings)
        )

    def test_pool_sweep_records_worker_pids(self):
        import os

        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05, 0.1],
                                 workers=2, **RUN)
        assert len(results.timings) == 2
        assert all(t.wall_time > 0 for t in results.timings)
        assert all(t.worker != os.getpid() for t in results.timings)

    def test_matrix_records_timings(self):
        out = parallel_matrix(
            {"a": mesh_config(mesh_k=4), "b": mesh_config(mesh_k=4)},
            rates=[0.05], workers=0, **RUN
        )
        assert sorted(t.label for t in out.timings) == ["a", "b"]
        assert out.total_wall_time() > 0

    def test_timings_survive_round_trip(self):
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, label="m4", **RUN)
        back = SweepResults.from_dict(
            json.loads(json.dumps(results.to_dict()))
        )
        assert len(back.timings) == 1
        timing = back.timings[0]
        assert (timing.label, timing.rate) == ("m4", 0.05)
        assert timing.wall_time == results.timings[0].wall_time
        assert timing.worker == results.timings[0].worker

    def test_legacy_dict_without_timings_loads(self):
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, **RUN)
        data = results.to_dict()
        del data["timings"]
        back = SweepResults.from_dict(data)
        assert back.complete
        assert back.timings == []

    def test_journal_resume_restores_timings(self, tmp_path):
        from repro.sim.parallel import SweepJournal

        sweep_dir = str(tmp_path / "sweep")
        full = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05, 0.1],
                              workers=0, journal_dir=sweep_dir, **RUN)
        resumed = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05, 0.1],
                                 workers=0, journal_dir=sweep_dir,
                                 resume=True, **RUN)
        assert len(resumed.timings) == 2
        for fresh, replayed in zip(full.timings, resumed.timings):
            assert replayed.wall_time == pytest.approx(fresh.wall_time)
            assert replayed.worker == fresh.worker
        journal = SweepJournal(sweep_dir)
        entry = next(iter(journal.completed().values()))
        assert entry["wall_time"] > 0
        assert entry["worker"] == full.timings[0].worker


class TestSweepTelemetry:
    def test_sweep_writes_heartbeats_per_point(self, tmp_path):
        from repro.obs.telemetry import point_heartbeat_path, read_heartbeats

        directory = str(tmp_path / "tel")
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05, 0.1], workers=0,
            label="m4", telemetry_dir=directory, heartbeat_every=100, **RUN
        )
        assert results.complete
        for i, rate in enumerate([0.05, 0.1]):
            records = read_heartbeats(point_heartbeat_path(directory, i))
            assert records[0]["ev"] == "start"
            assert records[0]["rate"] == rate
            assert records[0]["label"] == "m4"
            assert records[-1]["ev"] == "finish"
            assert records[-1]["status"] == "done"

    def test_sweep_telemetry_renders_in_watch(self, tmp_path):
        import io

        from repro.obs.watch import watch

        directory = str(tmp_path / "tel")
        parallel_sweep(mesh_config(mesh_k=4), rates=[0.05], workers=0,
                       telemetry_dir=directory, heartbeat_every=100, **RUN)
        out = io.StringIO()
        assert watch(directory, out, follow=False) == 0
        assert "sweep finished" in out.getvalue()

    def test_pool_sweep_telemetry(self, tmp_path):
        from repro.obs.telemetry import point_heartbeat_path, read_heartbeats

        directory = str(tmp_path / "tel")
        parallel_sweep(mesh_config(mesh_k=4), rates=[0.05, 0.1], workers=2,
                       telemetry_dir=directory, heartbeat_every=100, **RUN)
        finishes = [
            read_heartbeats(point_heartbeat_path(directory, i))[-1]
            for i in range(2)
        ]
        assert all(f["ev"] == "finish" for f in finishes)


class TestRetryBackoff:
    """Deterministic backoff between per-point retry attempts."""

    FAST = None  # initialised lazily to keep import side-effects local

    @staticmethod
    def policy():
        from repro.serve.backoff import RetryPolicy

        return RetryPolicy(base=0.001, factor=2.0, cap=0.01, jitter=0.5)

    def test_retry_records_attempts_and_delays(self, monkeypatch):
        real_run_point = parallel_mod._run_point
        flaky = {"failed": False}

        def flaky_run_point(point):
            if not flaky["failed"]:
                flaky["failed"] = True
                raise TimeoutError("boom")
            return real_run_point(point)

        monkeypatch.setattr(parallel_mod, "_run_point", flaky_run_point)
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, retries=1,
                                 retry_policy=self.policy(), **RUN)
        assert results.complete
        timing = results.timings[0]
        assert timing.attempts == 2
        assert len(timing.retry_delays) == 1
        # Deterministic: the recorded delay IS the policy's schedule for
        # this point's identity.
        expected = self.policy().delay("|0|0.05", 1)
        assert timing.retry_delays[0] == expected

    def test_first_try_success_has_no_delays(self):
        results = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, **RUN)
        assert results.timings[0].attempts == 1
        assert results.timings[0].retry_delays == []

    def test_backoff_actually_waits(self, monkeypatch):
        from repro.serve.backoff import RetryPolicy

        slept = []
        monkeypatch.setattr(parallel_mod, "_run_point",
                            _fail_n_times_factory(2))
        parallel_mod._execute(
            [parallel_mod.SweepPoint(mesh_config(mesh_k=4), 0.05, dict(RUN))],
            workers=0, timeout=None, retries=3,
            retry_policy=RetryPolicy(base=0.5, factor=2.0, cap=10.0,
                                     jitter=0.0),
            sleep=slept.append,
        )
        # Exponential: 0.5 then 1.0 before the two retries that ran.
        assert slept == [0.5, 1.0]

    def test_journal_records_retry_history(self, tmp_path, monkeypatch):
        from repro.sim.parallel import SweepJournal

        real_run_point = parallel_mod._run_point
        flaky = {"failed": False}

        def flaky_run_point(point):
            if not flaky["failed"]:
                flaky["failed"] = True
                raise RuntimeError("transient")
            return real_run_point(point)

        monkeypatch.setattr(parallel_mod, "_run_point", flaky_run_point)
        sweep_dir = str(tmp_path / "sweep")
        parallel_sweep(mesh_config(mesh_k=4), rates=[0.05], workers=0,
                       retries=1, retry_policy=self.policy(),
                       journal_dir=sweep_dir, **RUN)
        entry = next(iter(SweepJournal(sweep_dir).completed().values()))
        assert entry["attempts"] == 2
        assert len(entry["retry_delays"]) == 1
        resumed = parallel_sweep(mesh_config(mesh_k=4), rates=[0.05],
                                 workers=0, journal_dir=sweep_dir,
                                 resume=True, **RUN)
        assert resumed.timings[0].attempts == 2
        assert resumed.timings[0].retry_delays == entry["retry_delays"]


def _fail_n_times_factory(n):
    state = {"left": n}

    def run_point(point):
        if state["left"] > 0:
            state["left"] -= 1
            raise RuntimeError("transient")
        import os
        import time

        return (point.label, point.rate, None,
                PointTiming(point.label, point.rate,
                            wall_time=0.0, worker=os.getpid()))

    return run_point


def _sigkill_once_run_point(point):
    """First execution per label: hard death. After: the real thing.

    The sentinel directory rides in ``run_kwargs`` (popped before the
    real run) so the flag survives the killed worker process.
    """
    import os
    import signal

    kwargs = dict(point.run_kwargs)
    sentinel = kwargs.pop("_sentinel_dir")
    point = parallel_mod.SweepPoint(
        point.config, point.rate, kwargs, point.label,
        point.profile_epoch, point.watchdog_window,
        point.telemetry_path, point.heartbeat_every,
    )
    flag = os.path.join(sentinel, f"killed-{point.label}-{point.rate!r}")
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return parallel_mod._run_point_real(point)


def _wedge_once_run_point(point):
    """First execution per point: record pid and wedge forever."""
    import os
    import time

    kwargs = dict(point.run_kwargs)
    sentinel = kwargs.pop("_sentinel_dir")
    point = parallel_mod.SweepPoint(
        point.config, point.rate, kwargs, point.label,
        point.profile_epoch, point.watchdog_window,
        point.telemetry_path, point.heartbeat_every,
    )
    flag = os.path.join(sentinel, f"wedged-{point.label}-{point.rate!r}")
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write(str(os.getpid()))
            fh.flush()
            os.fsync(fh.fileno())
        time.sleep(600)
    return parallel_mod._run_point_real(point)


class TestHardWorkerDeath:
    """SIGKILLed and wedged workers: the orphaned-work hazard."""

    @staticmethod
    def fork_ctx():
        import multiprocessing

        return multiprocessing.get_context("fork")

    @staticmethod
    def policy():
        from repro.serve.backoff import RetryPolicy

        return RetryPolicy(base=0.001, factor=2.0, cap=0.01, jitter=0.0)

    def test_sigkilled_worker_point_retries_and_succeeds(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_run_point_real",
                            parallel_mod._run_point, raising=False)
        monkeypatch.setattr(parallel_mod, "_run_point",
                            _sigkill_once_run_point)
        run = dict(RUN, _sentinel_dir=str(tmp_path))
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05], workers=1, retries=1,
            retry_policy=self.policy(), mp_context=self.fork_ctx(),
            label="hard", **run,
        )
        assert results.complete
        assert results.timings[0].attempts == 2
        assert len(results.timings[0].retry_delays) == 1

    def test_sigkill_surfaces_point_error_when_retries_exhausted(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_run_point_real",
                            parallel_mod._run_point, raising=False)
        monkeypatch.setattr(parallel_mod, "_run_point",
                            _sigkill_once_run_point)
        run = dict(RUN, _sentinel_dir=str(tmp_path))
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05], workers=1, retries=0,
            retry_policy=self.policy(), mp_context=self.fork_ctx(),
            label="hard", **run,
        )
        assert list(results) == []
        assert len(results.errors) == 1
        err = results.errors[0]
        assert err.attempts == 1
        assert "Broken" in err.error or "abruptly" in err.error

    def test_journal_survives_sigkill_and_resume_completes(
            self, tmp_path, monkeypatch):
        from repro.sim.parallel import SweepJournal

        monkeypatch.setattr(parallel_mod, "_run_point_real",
                            parallel_mod._run_point, raising=False)
        monkeypatch.setattr(parallel_mod, "_run_point",
                            _sigkill_once_run_point)
        import os

        sweep_dir = str(tmp_path / "sweep")
        run = dict(RUN, _sentinel_dir=str(tmp_path))
        # Pre-arm 0.05's sentinel so only the 0.1 attempt SIGKILLs
        # itself: 0.05 completes and is journaled, 0.1 is lost (with
        # retries=0) but the sweep survives and the journal stays
        # intact.
        with open(os.path.join(str(tmp_path), "killed-j-0.05"), "w"):
            pass
        first = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05, 0.1], workers=1,
            retries=0, retry_policy=self.policy(),
            mp_context=self.fork_ctx(), journal_dir=sweep_dir,
            label="j", **run,
        )
        assert not first.complete
        done = SweepJournal(sweep_dir).completed()
        assert len(done) == 1
        # Resume: only the missing point re-runs; the sweep completes.
        monkeypatch.setattr(parallel_mod, "_run_point",
                            parallel_mod._run_point_real)
        resumed = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05, 0.1], workers=1,
            journal_dir=sweep_dir, resume=True, label="j", **RUN,
        )
        assert resumed.complete
        assert [r for r, _ in resumed] == [0.05, 0.1]
        assert len(SweepJournal(sweep_dir).completed()) == 2

    def test_timed_out_worker_is_dead_before_retry_runs(
            self, tmp_path, monkeypatch):
        """The orphaned-work fix: recycle kills the wedged worker.

        Without the recycle, the retry would queue behind (or run
        concurrently with) the first attempt's still-running worker.
        """
        import os

        monkeypatch.setattr(parallel_mod, "_run_point_real",
                            parallel_mod._run_point, raising=False)
        monkeypatch.setattr(parallel_mod, "_run_point",
                            _wedge_once_run_point)
        run = dict(RUN, _sentinel_dir=str(tmp_path))
        results = parallel_sweep(
            mesh_config(mesh_k=4), rates=[0.05], workers=1, retries=1,
            timeout=2.0, retry_policy=self.policy(),
            mp_context=self.fork_ctx(), label="wedge", **run,
        )
        assert results.complete
        assert results.timings[0].attempts == 2
        # The wedged first attempt's process must be confirmed dead.
        flag = os.path.join(str(tmp_path), "wedged-wedge-0.05")
        with open(flag) as fh:
            orphan_pid = int(fh.read())
        with pytest.raises(ProcessLookupError):
            os.kill(orphan_pid, 0)
