"""Shared test configuration."""

import os
import signal

import pytest
from hypothesis import HealthCheck, settings

# Simulation-backed property tests have irregular per-example runtimes
# (cycle loops, cache warmup); wall-clock deadlines only produce flakes
# on loaded machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

# Per-test wall-clock budget, so one hung simulation cannot wedge the
# whole suite (CI runs with a job timeout; this localizes the failure
# to the guilty test). SIGALRM only exists on POSIX; elsewhere the
# budget is simply not enforced.
TEST_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if TEST_TIMEOUT <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {TEST_TIMEOUT}s per-test timeout"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
