"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# Simulation-backed property tests have irregular per-example runtimes
# (cycle loops, cache warmup); wall-clock deadlines only produce flakes
# on loaded machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
