"""Integration tests for the assembled network.

These check end-to-end invariants: every injected flit is ejected
exactly once, packets arrive intact and in order, credits never go
negative or exceed buffer depth, and the network fully drains.
"""

import random

import pytest

from repro.core.chaining import ChainingScheme
from repro.network.config import fbfly_config, mesh_config
from repro.network.flit import Packet
from repro.network.network import Network


def drain(net, max_cycles=2000):
    for _ in range(max_cycles):
        if net.in_flight_flits() == 0 and net.backlog() == 0:
            return net.cycle
        net.step()
    raise AssertionError("network did not drain")


class RecordingSink:
    """Wraps the stats collector to capture per-terminal flit order."""

    def __init__(self, net):
        self.received = {t: [] for t in range(net.num_terminals)}
        for sink in net.sinks:
            sink.stats = self  # substitute ourselves

    def record_flit_ejected(self, flit, cycle):
        self.received[flit.packet.dest].append(flit)

    def record_ejected(self, packet, cycle):
        pass


def checked_network(cfg):
    net = Network(cfg)
    rec = RecordingSink(net)
    return net, rec


def send_packets(net, specs):
    """specs: list of (src, dest, size). Returns the packets."""
    packets = []
    for src, dest, size in specs:
        p = Packet(src, dest, size, net.cycle)
        net.inject(p)
        packets.append(p)
    return packets


@pytest.mark.parametrize(
    "cfg_factory",
    [
        lambda: mesh_config(mesh_k=4),
        lambda: mesh_config(mesh_k=4, chaining=ChainingScheme.ANY_INPUT),
        lambda: fbfly_config(fbfly_rows=2, fbfly_cols=2),
        lambda: fbfly_config(chaining=ChainingScheme.SAME_INPUT),
    ],
)
class TestDelivery:
    def test_single_packet_delivered(self, cfg_factory):
        net, rec = checked_network(cfg_factory())
        (pkt,) = send_packets(net, [(0, net.num_terminals - 1, 3)])
        drain(net)
        flits = rec.received[pkt.dest]
        assert [f.packet for f in flits] == [pkt] * 3
        assert [f.index for f in flits] == [0, 1, 2]
        assert pkt.time_ejected is not None

    def test_many_random_packets_all_delivered_intact(self, cfg_factory):
        net, rec = checked_network(cfg_factory())
        rng = random.Random(11)
        n = net.num_terminals
        specs = [
            (rng.randrange(n), rng.randrange(n), rng.choice([1, 1, 2, 5]))
            for _ in range(200)
        ]
        specs = [(s, d, z) for s, d, z in specs if s != d]
        packets = send_packets(net, specs)
        drain(net, 5000)
        total_flits = sum(len(v) for v in rec.received.values())
        assert total_flits == sum(p.size for p in packets)
        # Per-packet: flits arrive exactly once and in index order.
        seen = {}
        for dest, flits in rec.received.items():
            for f in flits:
                assert f.packet.dest == dest
                seen.setdefault(f.packet.pid, []).append(f.index)
        for p in packets:
            assert seen[p.pid] == list(range(p.size))

    def test_continuous_load_conserves_flits(self, cfg_factory):
        """Inject under sustained load; totals must balance after drain."""
        net, rec = checked_network(cfg_factory())
        rng = random.Random(5)
        n = net.num_terminals
        injected = 0
        for cycle in range(150):
            for src in range(n):
                if rng.random() < 0.3:
                    dest = rng.randrange(n)
                    if dest == src:
                        continue
                    net.inject(Packet(src, dest, rng.choice([1, 5]), net.cycle))
                    injected += 1
            net.step()
        drain(net, 8000)
        got = sum(len(v) for v in rec.received.values())
        want = sum(
            p.size
            for v in rec.received.values()
            for p in {f.packet for f in v}
        )
        assert got == want  # no duplicated or dropped flits


class TestCreditInvariants:
    def test_credits_bounded(self):
        """Credits never exceed buffer depth or go negative under load."""
        cfg = mesh_config(mesh_k=4, chaining=ChainingScheme.ANY_INPUT)
        net = Network(cfg)
        rng = random.Random(9)
        depth = cfg.vc_buf_depth
        for cycle in range(300):
            for src in range(net.num_terminals):
                if rng.random() < 0.5:
                    dest = rng.randrange(net.num_terminals)
                    if dest != src:
                        net.inject(Packet(src, dest, 1, net.cycle))
            net.step()
            for router in net.routers:
                for port_credits in router.credits:
                    for c in port_credits:
                        assert 0 <= c <= depth

    def test_buffers_never_overflow(self):
        """The push() OverflowError guard must never fire under load."""
        cfg = mesh_config(mesh_k=4, chaining=ChainingScheme.SAME_INPUT)
        net = Network(cfg)
        rng = random.Random(13)
        for cycle in range(400):
            for src in range(net.num_terminals):
                if rng.random() < 0.9:
                    dest = rng.randrange(net.num_terminals)
                    if dest != src:
                        net.inject(Packet(src, dest, rng.choice([1, 8]), net.cycle))
            net.step()  # OverflowError would propagate


class TestConnectionInvariants:
    def test_connection_registers_consistent(self):
        """conn_in and conn_out must always mirror each other."""
        cfg = mesh_config(mesh_k=4, chaining=ChainingScheme.ANY_INPUT)
        net = Network(cfg)
        rng = random.Random(21)
        for cycle in range(300):
            for src in range(net.num_terminals):
                if rng.random() < 0.8:
                    dest = rng.randrange(net.num_terminals)
                    if dest != src:
                        net.inject(Packet(src, dest, rng.choice([1, 2, 5]), net.cycle))
            net.step()
            for router in net.routers:
                for o, held in enumerate(router.conn_out):
                    if held is not None:
                        p, v = held
                        assert router.conn_in[p] == o
                for p, o in enumerate(router.conn_in):
                    if o is not None:
                        assert router.conn_out[o] is not None
                        assert router.conn_out[o][0] == p

    def test_at_most_one_connection_per_port(self):
        cfg = mesh_config(mesh_k=4, chaining=ChainingScheme.SAME_INPUT)
        net = Network(cfg)
        rng = random.Random(22)
        for cycle in range(200):
            for src in range(net.num_terminals):
                dest = rng.randrange(net.num_terminals)
                if dest != src:
                    net.inject(Packet(src, dest, 1, net.cycle))
            net.step()
            for router in net.routers:
                holders = [h for h in router.conn_out if h is not None]
                inputs = [h[0] for h in holders]
                assert len(inputs) == len(set(inputs))


class TestNetworkMisc:
    def test_step_advances_cycle(self):
        net = Network(mesh_config(mesh_k=4))
        net.run(10)
        assert net.cycle == 10

    def test_empty_network_stays_empty(self):
        net = Network(mesh_config(mesh_k=4))
        net.run(50)
        assert net.in_flight_flits() == 0

    def test_chain_stats_aggregation(self):
        cfg = mesh_config(mesh_k=4, chaining=ChainingScheme.ANY_INPUT)
        net = Network(cfg)
        rng = random.Random(1)
        for cycle in range(200):
            for src in range(net.num_terminals):
                dest = rng.randrange(net.num_terminals)
                if dest != src:
                    net.inject(Packet(src, dest, 1, net.cycle))
            net.step()
        assert net.chain_stats().total_chains > 0
