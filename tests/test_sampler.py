"""Periodic network-state sampler: snapshots, ring buffer, heatmaps."""

import gzip
import json

import pytest

from repro.network.config import fbfly_config, mesh_config
from repro.network.network import Network
from repro.obs import SAMPLE_FIELDS, NetworkSampler
from repro.sim.runner import run_simulation


def _sampled_run(period=50, capacity=1024, cycles=300, rate=0.4,
                 mesh_k=4, chaining="any_input"):
    sampler = NetworkSampler(period=period, capacity=capacity)
    cfg = mesh_config(mesh_k=mesh_k, chaining=chaining)
    result = run_simulation(
        cfg, rate=rate, warmup=0, measure=cycles, drain=0, seed=3,
        sampler=sampler,
    )
    return result, sampler


class TestSampling:
    def test_sample_cadence(self):
        _, sampler = _sampled_run(period=50, cycles=300)
        cycles = [s["cycle"] for s in sampler.samples]
        assert cycles == [0, 50, 100, 150, 200, 250]
        assert sampler.dropped == 0

    def test_sample_shape(self):
        _, sampler = _sampled_run(period=100, cycles=200, mesh_k=4)
        sample = sampler.samples[-1]
        assert len(sample["buffered"]) == 16
        assert len(sample["credits_free"]) == 16
        assert len(sample["conns_held"]) == 16
        assert len(sample["port_flits"]) == 16
        # Congested mesh mid-run: something is buffered somewhere.
        assert sum(sample["buffered"]) > 0
        assert all(len(p) == 5 for p in sample["port_flits"])

    def test_ring_buffer_bounds_and_counts_drops(self):
        _, sampler = _sampled_run(period=10, capacity=4, cycles=100)
        assert len(sampler.samples) == 4
        assert sampler.dropped == 6
        # Oldest dropped first: the retained window is the most recent.
        assert [s["cycle"] for s in sampler.samples] == [60, 70, 80, 90]

    def test_port_flits_are_deltas(self):
        _, sampler = _sampled_run(period=50, cycles=300)
        per_sample = [
            sum(sum(ports) for ports in s["port_flits"])
            for s in sampler.samples
        ]
        net_total = sum(per_sample)
        # Deltas, not cumulative counters: later samples don't dominate.
        assert max(per_sample) < net_total

    def test_unattached_network_has_no_sampler(self):
        net = Network(mesh_config(mesh_k=4))
        assert net.sampler is None

    def test_bind_mid_run_starts_at_current_cycle(self):
        net = Network(mesh_config(mesh_k=4))
        for _ in range(30):
            net.step()
        sampler = net.attach_sampler(NetworkSampler(period=100))
        for _ in range(10):
            net.step()
        assert [s["cycle"] for s in sampler.samples] == [30]

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkSampler(period=0)
        with pytest.raises(ValueError):
            NetworkSampler(capacity=0)


class TestDerivedViews:
    @pytest.fixture(scope="class")
    def sampled(self):
        return _sampled_run(period=50, cycles=300)

    def test_router_series_fields(self, sampled):
        _, sampler = sampled
        for field in SAMPLE_FIELDS:
            series = sampler.router_series(field)
            assert len(series) == len(sampler.samples)
            assert all(len(row) == 16 for row in series)

    def test_unknown_field_rejected(self, sampled):
        _, sampler = sampled
        with pytest.raises(ValueError):
            sampler.router_series("vibes")

    def test_link_utilization_totals(self, sampled):
        _, sampler = sampled
        util = sampler.link_utilization()
        total_flits = sum(
            sum(sum(ports) for ports in s["port_flits"])
            for s in sampler.samples
        )
        cycles = sampler.period * len(sampler.samples)
        assert sum(util.values()) == pytest.approx(total_flits / cycles)
        assert all(u >= 0 for u in util.values())

    def test_hottest_links_ranked(self, sampled):
        _, sampler = sampled
        hot = sampler.hottest_links(top=5)
        assert 0 < len(hot) <= 5
        rates = [u for _, _, u in hot]
        assert rates == sorted(rates, reverse=True)
        assert all(u > 0 for u in rates)

    def test_empty_sampler_views(self):
        sampler = NetworkSampler()
        assert sampler.link_utilization() == {}
        assert sampler.hottest_links() == []


class TestHeatmap:
    def test_mesh_heatmap_shape(self):
        _, sampler = _sampled_run(period=50, cycles=300, mesh_k=4)
        for reduce in ("mean", "last"):
            art = sampler.heatmap(field="buffered", reduce=reduce)
            rows = art.split("\n")
            assert len(rows) == 4
            assert all(len(row) == 4 for row in rows)

    def test_heatmap_no_samples(self):
        sampler = NetworkSampler()
        sampler.bind(Network(mesh_config(mesh_k=4)))
        assert sampler.heatmap() == "(no samples)"

    def test_heatmap_bad_reduce(self):
        _, sampler = _sampled_run(period=100, cycles=200)
        with pytest.raises(ValueError):
            sampler.heatmap(reduce="median")

    def test_heatmap_requires_grid(self):
        sampler = NetworkSampler(period=100)
        cfg = fbfly_config(fbfly_rows=2, fbfly_cols=2)
        run_simulation(
            cfg, rate=0.1, warmup=0, measure=100, drain=0, sampler=sampler,
        )
        with pytest.raises(TypeError):
            sampler.heatmap()


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        _, sampler = _sampled_run(period=100, cycles=300)
        path = tmp_path / "samples.jsonl"
        sampler.save_jsonl(str(path))
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(sampler.samples)
        assert json.loads(lines[0]) == sampler.to_dicts()[0]

    def test_jsonl_gzip(self, tmp_path):
        _, sampler = _sampled_run(period=100, cycles=300)
        path = tmp_path / "samples.jsonl.gz"
        sampler.save_jsonl(str(path))
        with gzip.open(path, "rt") as fh:
            rows = [json.loads(line) for line in fh]
        assert rows == sampler.to_dicts()
