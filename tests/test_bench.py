"""Tests for the continuous benchmark suite and trend gate (repro.bench)."""

import copy
import json

import pytest

from repro import bench

TINY = [
    bench.BenchCase("tiny-mesh4", "mesh", 4, "islip1", "any_input",
                    0.2, warmup=50, measure=100),
]


def entry_with(cases, calibration=2e6):
    """Synthetic history entry (no simulation)."""
    return {
        "schema": bench.SCHEMA,
        "time": 1000.0,
        "suite": "quick",
        "calibration": calibration,
        "host_info": {"host": "x"},
        "cases": {
            name: {"cycles_per_sec": raw, "normalized": norm,
                   "cycles": 150, "wall_seconds": 0.1, "repeats": 2}
            for name, (raw, norm) in cases.items()
        },
    }


class TestSuite:
    def test_default_suite_shapes(self):
        quick = bench.default_suite(quick=True)
        full = bench.default_suite()
        assert len(quick) < len(full)
        quick_names = {c.name for c in quick}
        assert quick_names <= {c.name for c in full}
        assert len({c.name for c in full}) == len(full)  # names unique

    def test_scale_shrinks_phases_with_floor(self):
        tiny = bench.default_suite(quick=True, scale=0.01)[0]
        assert (tiny.warmup, tiny.measure) == (50, 100)
        big = bench.default_suite(quick=True, scale=2.0)[0]
        assert big.measure == 1600

    def test_case_config_builds(self):
        for case in bench.default_suite():
            config = case.config()
            assert config.topology == case.topology
            assert config.allocator == case.allocator

    def test_run_case_measures(self):
        measured = bench.run_case(TINY[0], repeats=2)
        assert measured["cycles"] == 150
        assert measured["cycles_per_sec"] > 0
        assert measured["wall_seconds"] > 0
        assert measured["repeats"] == 2

    def test_run_suite_entry(self):
        seen = []
        entry = bench.run_suite(suite=TINY, repeats=1,
                                calibration_repeats=1,
                                progress=seen.append)
        assert seen == ["tiny-mesh4"]
        assert entry["schema"] == bench.SCHEMA
        assert entry["calibration"] > 0
        case = entry["cases"]["tiny-mesh4"]
        assert case["normalized"] == pytest.approx(
            case["cycles_per_sec"] / (entry["calibration"] / 1e6)
        )


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        first = entry_with({"a": (1000.0, 0.5)})
        second = entry_with({"a": (1100.0, 0.55)})
        bench.append_history(path, first)
        history = bench.append_history(path, second)
        assert len(history["entries"]) == 2
        assert bench.load_history(path) == history

    def test_missing_history_is_empty(self, tmp_path):
        history = bench.load_history(str(tmp_path / "nope.json"))
        assert history["entries"] == []

    def test_bare_entry_file_is_single_entry_history(self, tmp_path):
        # A checked-in baseline is one entry, not a {"entries": ...} file.
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(entry_with({"a": (1000.0, 0.5)})))
        history = bench.load_history(str(path))
        assert len(history["entries"]) == 1
        assert history["entries"][0]["cases"]["a"]["normalized"] == 0.5

    def test_reference_is_per_case_median(self):
        history = {"entries": [
            entry_with({"a": (0, 0.50), "b": (0, 1.0)}),
            entry_with({"a": (0, 0.52)}),
            entry_with({"a": (0, 9.99)}),  # outlier absorbed by median
        ]}
        reference = bench.reference_cases(history)
        assert reference == {"a": 0.52, "b": 1.0}


class TestGate:
    REFERENCE = {"a": 1.0, "b": 2.0}

    def test_ok_within_threshold(self):
        entry = entry_with({"a": (0, 0.90), "b": (0, 2.1)})
        comparison = bench.compare_entries(entry, self.REFERENCE,
                                           threshold=15.0)
        assert comparison.ok
        assert [r.case for r in comparison.rows] == ["a", "b"]
        assert comparison.rows[0].delta_pct == pytest.approx(-10.0)

    def test_regression_past_threshold(self):
        entry = entry_with({"a": (0, 0.80), "b": (0, 2.0)})
        comparison = bench.compare_entries(entry, self.REFERENCE,
                                           threshold=15.0)
        assert not comparison.ok
        assert [r.case for r in comparison.regressions] == ["a"]
        report = bench.format_comparison(comparison)
        assert "REGRESSION" in report
        assert "1 regression(s)" in report

    def test_improvement_never_trips(self):
        entry = entry_with({"a": (0, 5.0), "b": (0, 9.0)})
        assert bench.compare_entries(entry, self.REFERENCE).ok

    def test_unmatched_cases_skipped(self):
        entry = entry_with({"a": (0, 1.0), "new": (0, 0.001)})
        comparison = bench.compare_entries(entry, self.REFERENCE)
        assert comparison.ok
        assert sorted(comparison.unmatched) == ["b", "new"]

    def test_to_dict_round_trips_through_json(self):
        entry = entry_with({"a": (0, 0.5)})
        data = json.loads(json.dumps(
            bench.compare_entries(entry, self.REFERENCE).to_dict()
        ))
        assert data["ok"] is False
        assert data["rows"][0]["regression"] is True

    def test_zero_reference_is_not_a_regression(self):
        entry = entry_with({"a": (0, 0.0)})
        assert bench.compare_entries(entry, {"a": 0.0}).ok


class TestCLI:
    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def bench_args(self, tmp_path, *extra):
        return ("bench", "--quick", "--scale", "0.05", "--repeats", "1",
                "--history", str(tmp_path / "BENCH_t.json")) + extra

    def test_bench_appends_history(self, tmp_path, capsys):
        code, text = self.run_cli(*self.bench_args(tmp_path))
        assert code == 0
        assert "bench suite 'quick'" in text
        history = bench.load_history(str(tmp_path / "BENCH_t.json"))
        assert len(history["entries"]) == 1
        assert "mesh4-islip1-chain" in history["entries"][0]["cases"]

    def test_bench_compare_against_self_history(self, tmp_path):
        code, _ = self.run_cli(*self.bench_args(tmp_path))
        assert code == 0
        # Generous threshold: this asserts gate mechanics, not host noise.
        code, text = self.run_cli(
            *self.bench_args(tmp_path, "--compare", "--threshold", "95")
        )
        assert code == 0
        assert "trend gate" in text
        assert "gate: OK" in text

    def test_bench_compare_regression_exits_nonzero(self, tmp_path):
        code, _ = self.run_cli(*self.bench_args(tmp_path))
        assert code == 0
        # Inflate the recorded history so the fresh run looks like a
        # >15% regression against it.
        path = str(tmp_path / "BENCH_t.json")
        history = bench.load_history(path)
        inflated = copy.deepcopy(history["entries"][0])
        for case in inflated["cases"].values():
            case["normalized"] *= 100.0
            case["cycles_per_sec"] *= 100.0
        with open(path, "w") as fh:
            json.dump({"schema": bench.SCHEMA, "entries": [inflated]}, fh)
        code, text = self.run_cli(
            *self.bench_args(tmp_path, "--compare", "--no-append")
        )
        assert code == 1
        assert "REGRESSION" in text

    def test_bench_compare_missing_reference_exits_two(self, tmp_path):
        code, text = self.run_cli(
            *self.bench_args(tmp_path, "--no-append", "--compare",
                             str(tmp_path / "nope.json"))
        )
        assert code == 2
        assert "no reference entries" in text

    def test_bench_json_output(self, tmp_path):
        code, text = self.run_cli(
            *self.bench_args(tmp_path, "--json", "--no-append")
        )
        assert code == 0
        payload = json.loads(text)
        assert "entry" in payload
        assert payload["entry"]["suite"] == "quick"
        assert not (tmp_path / "BENCH_t.json").exists()
