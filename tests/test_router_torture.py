"""Randomized torture tests: drive a standalone router with random
arrivals and check structural invariants every cycle, for every
chaining scheme and VC-allocation mode."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.config import NetworkConfig
from repro.network.flit import Packet

from tests.test_router import Sim, make_router


def check_invariants(router):
    P = router.radix
    # Connection registers mirror each other.
    for o, held in enumerate(router.conn_out):
        if held is not None:
            p, v = held
            assert router.conn_in[p] == o
            assert 0 <= v < router.config.num_vcs
    inputs = [h[0] for h in router.conn_out if h is not None]
    assert len(inputs) == len(set(inputs))
    for p, o in enumerate(router.conn_in):
        if o is not None:
            assert router.conn_out[o] is not None
            assert router.conn_out[o][0] == p
    # Credits in range.
    for port_credits in router.credits:
        for c in port_credits:
            assert 0 <= c <= router.config.vc_buf_depth
    # A VC with an active packet has consistent allocation state.
    for p in range(P):
        for vcobj in router.in_vcs[p]:
            if vcobj.active_packet is not None:
                assert vcobj.active_out_port is not None
                assert vcobj.active_out_vc is not None


def _replenish(router, sim, rng, in_flight, probability=0.7):
    """Send credit returns without overshooting the buffer depth."""
    depth = router.config.vc_buf_depth
    # Purge in-flight credits already delivered. A credit due at cycle
    # C lands during the step for cycle C (which has not run yet when
    # the driver executes), so entries with c >= sim.cycle still count.
    for key in list(in_flight):
        in_flight[key] = [c for c in in_flight[key] if c >= sim.cycle]
    for o in range(router.radix):
        for w in range(router.config.num_vcs):
            key = (o, w)
            outstanding = len(in_flight.get(key, []))
            if (
                router.credits[o][w] + outstanding < depth
                and rng.random() < probability
            ):
                router.credit_return_channels[o].send(w, sim.cycle)
                in_flight.setdefault(key, []).append(
                    sim.cycle + router.config.credit_delay
                )


def drive(router, seed, cycles=120, inject_p=0.6):
    """Random single/multi-flit arrivals; replenish credits randomly."""
    rng = random.Random(seed)
    sim = Sim(router)
    cfg = router.config
    streams = {}
    in_flight_credits = {}
    for cycle in range(cycles):
        for p in range(router.radix):
            for v in range(cfg.num_vcs):
                key = (p, v)
                if key not in streams and rng.random() < inject_p:
                    pkt = Packet(0, 1, rng.choice([1, 1, 2, 4]), cycle)
                    flits = pkt.flits()
                    flits[0].out_port = rng.randrange(router.radix)
                    for f in flits:
                        f.vc = v
                    streams[key] = flits
                if key in streams:
                    vcobj = router.in_vcs[p][v]
                    if vcobj.free_slots > 0:
                        vcobj.push(streams[key].pop(0))
                        if not streams[key]:
                            del streams[key]
        # Random credit returns (emulating a downstream that drains).
        _replenish(router, sim, rng, in_flight_credits)
        sim.step(1)
        check_invariants(router)
    return sim, streams


MODES = [
    dict(),
    dict(chaining="same_vc"),
    dict(chaining="same_input", starvation_threshold=8),
    dict(chaining="any_input"),
    dict(chaining="any_input", starvation_threshold=4),
    dict(chaining="any_input", age_period=8),
    dict(vc_allocation="split"),
    dict(vc_allocation="speculative", chaining="same_input"),
    dict(allocator="wavefront", chaining="any_input"),
    dict(allocator="augmenting", chaining="any_input"),
    dict(allocator="oslip1"),
    dict(allocator="pim2", chaining="same_vc"),
]


@pytest.mark.parametrize("mode", MODES, ids=lambda m: "_".join(
    f"{k}={v}" for k, v in m.items()) or "baseline")
def test_torture_modes(mode):
    router = make_router(radix=4, **mode)
    drive(router, seed=hash(tuple(sorted(mode.items()))) & 0xFFFF)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_torture_random_seeds_any_input(seed):
    router = make_router(radix=4, chaining="any_input",
                         starvation_threshold=6)
    drive(router, seed=seed, cycles=80)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_torture_flits_eventually_drain(seed):
    """With credits replenished and injection stopped, the router
    drains completely: no stuck connections or lost flits."""
    router = make_router(radix=4, chaining="any_input")
    rng = random.Random(seed ^ 0xD12A)
    sim, streams = drive(router, seed=seed, cycles=60)
    # Finish delivering partially-sent packets (a truncated packet would
    # legitimately hold its output VC forever), stop injecting new ones,
    # keep credits flowing: everything must drain.
    in_flight = {}
    for _ in range(300):
        for (p, v), flits in list(streams.items()):
            vcobj = router.in_vcs[p][v]
            if vcobj.free_slots > 0:
                vcobj.push(flits.pop(0))
                if not flits:
                    del streams[(p, v)]
        _replenish(router, sim, rng, in_flight, probability=1.0)
        sim.step(1)
        if not streams and router.total_buffered_flits() == 0:
            break
    assert router.total_buffered_flits() == 0
    assert all(c is None for c in router.conn_out)
