"""Public-API stability tests: what README and examples rely on."""

import pathlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_symbols(self):
        """The names used in README's quickstart snippet."""
        from repro import ChainingScheme, mesh_config, run_simulation

        cfg = mesh_config(chaining=ChainingScheme.SAME_INPUT)
        result = run_simulation(cfg, pattern="uniform", rate=0.05,
                                packet_length=1, warmup=50, measure=100,
                                drain=100)
        assert result.avg_throughput >= 0.0
        assert hasattr(result, "chain_stats")

    def test_subpackage_imports(self):
        import repro.allocators
        import repro.arbiters
        import repro.cmp
        import repro.core
        import repro.network
        import repro.routing
        import repro.sim
        import repro.stats
        import repro.topology
        import repro.traffic

    def test_examples_exist_and_have_mains(self):
        examples = pathlib.Path(__file__).parent.parent / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 3
        for script in scripts:
            text = script.read_text()
            assert '__main__' in text, script
            assert text.startswith('"""'), f"{script} lacks a docstring"

    def test_docs_exist(self):
        root = pathlib.Path(__file__).parent.parent
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
            assert (root / doc).exists(), doc

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        missing = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, missing
