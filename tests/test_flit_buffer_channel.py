"""Unit tests for the network primitives: packets, flits, VCs, channels."""

import pytest
from hypothesis import given, strategies as st

from repro.network.buffer import VirtualChannel
from repro.network.channel import PipelinedChannel
from repro.network.flit import Flit, Packet


class TestPacket:
    def test_unique_pids(self):
        a = Packet(0, 1, 1, 0)
        b = Packet(0, 1, 1, 0)
        assert a.pid != b.pid

    def test_flits_cover_packet(self):
        p = Packet(0, 5, 4, 10)
        flits = p.flits()
        assert len(flits) == 4
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])
        assert [f.index for f in flits] == [0, 1, 2, 3]

    def test_single_flit_packet_is_head_and_tail(self):
        p = Packet(0, 5, 1, 0)
        (f,) = p.flits()
        assert f.is_head and f.is_tail

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(0, 1, 0, 0)

    def test_repr_smoke(self):
        p = Packet(3, 7, 2, 0)
        assert "3->7" in repr(p)
        assert "H" in repr(p.flits()[0])


class TestVirtualChannel:
    def _packet_flits(self, size=3):
        return Packet(0, 1, size, 0).flits()

    def test_push_pop_fifo(self):
        vc = VirtualChannel(4)
        flits = self._packet_flits(3)
        for f in flits:
            vc.push(f)
        assert vc.front() is flits[0]
        assert vc.pop() is flits[0]
        assert vc.front() is flits[1]

    def test_overflow_raises(self):
        vc = VirtualChannel(2)
        flits = self._packet_flits(3)
        vc.push(flits[0])
        vc.push(flits[1])
        with pytest.raises(OverflowError):
            vc.push(flits[2])

    def test_free_slots(self):
        vc = VirtualChannel(3)
        assert vc.free_slots == 3
        vc.push(self._packet_flits(1)[0])
        assert vc.free_slots == 2

    def test_start_packet_and_tail_clears_state(self):
        vc = VirtualChannel(4)
        flits = self._packet_flits(2)
        for f in flits:
            vc.push(f)
        vc.start_packet(flits[0].packet, out_port=2, out_vc=1)
        assert vc.in_service()
        assert vc.active_out_port == 2
        vc.pop()  # head
        assert vc.in_service()
        vc.pop()  # tail
        assert not vc.in_service()
        assert vc.active_out_port is None

    def test_front_out_port_head_vs_body(self):
        vc = VirtualChannel(4)
        flits = self._packet_flits(2)
        flits[0].out_port = 3
        for f in flits:
            vc.push(f)
        assert vc.front_out_port() == 3
        vc.start_packet(flits[0].packet, out_port=3, out_vc=0)
        vc.pop()
        # Body flit at front: the stored route applies.
        assert vc.front_out_port() == 3
        assert vc.front_is_parked_body()

    def test_empty_front_is_none(self):
        vc = VirtualChannel(2)
        assert vc.front() is None
        assert vc.front_out_port() is None

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            VirtualChannel(0)

    def test_pop_resets_wait_cycles(self):
        vc = VirtualChannel(4)
        f = self._packet_flits(1)[0]
        vc.push(f)
        vc.wait_cycles = 5
        vc.pop()
        assert vc.wait_cycles == 0


class TestPipelinedChannel:
    def test_delivery_after_delay(self):
        ch = PipelinedChannel(3)
        ch.send("a", now=10)
        assert ch.receive(12) == []
        assert ch.receive(13) == ["a"]
        assert ch.receive(14) == []

    def test_order_preserved(self):
        ch = PipelinedChannel(1)
        ch.send("a", 0)
        ch.send("b", 0)
        assert ch.receive(1) == ["a", "b"]

    def test_pipelining(self):
        ch = PipelinedChannel(2)
        ch.send("a", 0)
        ch.send("b", 1)
        assert ch.receive(2) == ["a"]
        assert ch.receive(3) == ["b"]

    def test_missed_delivery_detected(self):
        ch = PipelinedChannel(1)
        ch.send("a", 0)
        with pytest.raises(AssertionError):
            ch.receive(2)  # skipped cycle 1

    def test_bad_delay(self):
        with pytest.raises(ValueError):
            PipelinedChannel(0)

    def test_in_flight(self):
        ch = PipelinedChannel(5)
        assert ch.in_flight == 0
        ch.send("a", 0)
        assert ch.in_flight == 1
        ch.receive(5)
        assert ch.in_flight == 0

    @given(delay=st.integers(1, 8), items=st.lists(st.integers(), max_size=20))
    def test_property_everything_arrives_once(self, delay, items):
        ch = PipelinedChannel(delay)
        for i, item in enumerate(items):
            ch.send(item, i)
        received = []
        for cycle in range(len(items) + delay + 1):
            received.extend(ch.receive(cycle))
        assert received == items
