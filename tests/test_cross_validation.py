"""Cross-validation against independent reference implementations.

networkx provides textbook graph algorithms; we use them as oracles for
the hand-written allocator matching code.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.allocators import (
    AugmentingPathsAllocator,
    WavefrontAllocator,
    islip,
)


def nx_max_matching_size(pairs, n_in, n_out):
    graph = nx.Graph()
    graph.add_nodes_from((f"i{i}" for i in range(n_in)), bipartite=0)
    graph.add_nodes_from((f"o{o}" for o in range(n_out)), bipartite=1)
    graph.add_edges_from((f"i{i}", f"o{o}") for i, o in pairs)
    matching = nx.algorithms.matching.max_weight_matching(graph, maxcardinality=True)
    return len(matching)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 7),
    density=st.floats(0.1, 0.9),
    seed=st.integers(0, 999),
)
def test_augmenting_matches_networkx(n, density, seed):
    rng = random.Random(seed)
    pairs = {
        (i, o)
        for i in range(n)
        for o in range(n)
        if rng.random() < density
    }
    requests = {pair: 0 for pair in pairs}
    alloc = AugmentingPathsAllocator(n, n)
    grants = alloc.allocate(requests)
    assert len(grants) == nx_max_matching_size(pairs, n, n)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 7),
    density=st.floats(0.1, 0.9),
    seed=st.integers(0, 999),
)
def test_wavefront_within_2x_of_maximum(n, density, seed):
    """Any maximal matching is at least half the maximum (folklore)."""
    rng = random.Random(seed)
    pairs = {
        (i, o)
        for i in range(n)
        for o in range(n)
        if rng.random() < density
    }
    if not pairs:
        return
    requests = {pair: 0 for pair in pairs}
    grants = WavefrontAllocator(n, n).allocate(requests)
    maximum = nx_max_matching_size(pairs, n, n)
    assert 2 * len(grants) >= maximum


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 6),
    seed=st.integers(0, 999),
)
def test_islip_never_exceeds_maximum(n, seed):
    rng = random.Random(seed)
    pairs = {
        (i, o)
        for i in range(n)
        for o in range(n)
        if rng.random() < 0.5
    }
    requests = {pair: 0 for pair in pairs}
    grants = islip(n, n, iterations=3).allocate(requests)
    assert len(grants) <= nx_max_matching_size(pairs, n, n)
