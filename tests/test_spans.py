"""Per-packet span reconstruction and latency decomposition."""

import gzip
import json

import pytest

from repro.network.config import mesh_config
from repro.obs import (
    SPAN_COMPONENTS,
    MemorySink,
    MetricsRegistry,
    TraceBus,
    build_spans,
    format_spans_report,
)
from repro.sim.runner import run_simulation


def _synthetic_packet(pid=1, created=0, injected=2, grant=7, departed=7,
                      head_ejected=10, ejected=12, arrived=4, router=3,
                      chained=False, vc_cycle=None):
    """One packet's full lifecycle as hand-written trace events."""
    events = [
        {"ev": "packet_created", "cycle": created, "pid": pid,
         "src": 0, "dest": 5, "size": 3},
        {"ev": "flit_injected", "cycle": injected, "pid": pid, "idx": 0},
        {"ev": "head_arrived", "cycle": arrived, "pid": pid,
         "router": router, "in_port": 4, "vc": 0},
    ]
    if vc_cycle is not None:
        events.append(
            {"ev": "vc_alloc", "cycle": vc_cycle, "pid": pid,
             "router": router, "port": 1, "vc": 0}
        )
    events += [
        {"ev": "pc_chain" if chained else "sa_grant", "cycle": grant,
         "pid": pid, "router": router, "port": 1},
        {"ev": "flit_routed", "cycle": departed, "pid": pid,
         "router": router, "port": 1, "idx": 0},
        {"ev": "flit_ejected", "cycle": head_ejected, "pid": pid,
         "idx": 0, "tail": False, "terminal": 5},
        {"ev": "flit_ejected", "cycle": ejected, "pid": pid,
         "idx": 2, "tail": True, "terminal": 5},
    ]
    return events


class TestBuildSpans:
    def test_single_packet_decomposition(self):
        span_set = build_spans(_synthetic_packet())
        assert len(span_set) == 1
        assert span_set.incomplete == 0
        span = span_set.spans[0]
        # created 0, injected 2, arrived 4, grant 7, ejected head 10/tail 12
        assert span.source_queue == 2
        assert span.sa_wait == 3  # 7 - 4, no VC wait
        assert span.vc_wait == 0
        assert span.serialization == 2
        assert span.traversal == 5  # residual: 12 - 2 - 3 - 0 - 2
        assert span.latency == 12
        assert sum(span.components().values()) == span.latency

    def test_split_va_vc_wait_carved_out(self):
        # VC granted at cycle 5 (after arrival 4, before SA grant 7):
        # two of the three waiting cycles... no — vc_wait = 5-4 = 1,
        # sa_wait shrinks to 2 so the sum is unchanged.
        span_set = build_spans(_synthetic_packet(vc_cycle=5))
        span = span_set.spans[0]
        assert span.vc_wait == 1
        assert span.sa_wait == 2
        assert sum(span.components().values()) == span.latency

    def test_same_cycle_vc_alloc_is_free(self):
        # Combined VA emits vc_alloc in the grant cycle: no VC wait.
        span_set = build_spans(_synthetic_packet(vc_cycle=7))
        span = span_set.spans[0]
        assert span.vc_wait == 0
        assert span.sa_wait == 3

    def test_chained_hop_flagged(self):
        span_set = build_spans(_synthetic_packet(chained=True))
        assert span_set.spans[0].hops[0].chained is True
        decomp = span_set.decomposition()
        assert decomp["hops"]["chained"] == 1
        assert decomp["hops"]["chained_fraction"] == 1.0

    def test_incomplete_packet_excluded(self):
        events = _synthetic_packet()[:-1]  # tail never ejects
        span_set = build_spans(events)
        assert len(span_set) == 0
        assert span_set.incomplete == 1

    def test_grantless_hop_marks_packet_incomplete(self):
        # Filtered trace: the head departs but no grant was recorded.
        events = [
            e for e in _synthetic_packet()
            if e["ev"] not in ("sa_grant", "pc_chain")
        ]
        span_set = build_spans(events)
        assert len(span_set) == 0
        assert span_set.incomplete == 1

    def test_body_flit_events_ignored(self):
        events = _synthetic_packet()
        events.append(
            {"ev": "flit_routed", "cycle": 8, "pid": 1, "router": 3,
             "port": 1, "idx": 1}
        )
        span_set = build_spans(events)
        assert len(span_set.spans[0].hops) == 1

    def test_mid_packet_regrant_after_departure_ignored(self):
        # A parked body re-wins SA after the head left: the hop is
        # closed, so the event must not corrupt the span.
        events = _synthetic_packet()
        events.append(
            {"ev": "sa_grant", "cycle": 9, "pid": 1, "router": 3, "port": 1}
        )
        span_set = build_spans(events)
        span = span_set.spans[0]
        assert span.sa_wait == 3
        assert len(span.hops) == 1

    def test_events_without_pid_skipped(self):
        events = _synthetic_packet()
        events.append({"ev": "starvation_tick", "cycle": 5, "router": 0})
        assert len(build_spans(events)) == 1


class TestSpanSetExports:
    def test_publish_metrics_histograms(self):
        span_set = build_spans(
            _synthetic_packet(pid=1) + _synthetic_packet(
                pid=2, created=1, injected=3, arrived=5, grant=6,
                departed=6, head_ejected=9, ejected=11, chained=True,
            )
        )
        reg = MetricsRegistry()
        span_set.publish_metrics(reg)
        d = reg.to_dict()
        assert d["counters"]["span_packets"] == 2
        assert d["counters"]["span_hops"] == 2
        assert d["counters"]["span_hops_chained"] == 1
        for name in SPAN_COMPONENTS:
            assert d["histograms"][f"span_{name}_cycles"]["count"] == 2

    def test_chrome_trace_slices(self):
        trace = build_spans(_synthetic_packet()).to_chrome_trace()
        events = trace["traceEvents"]
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert "source_queue" in names
        assert "sa_wait" in names
        assert "serialization" in names
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"].startswith("packet 1")
        # Slices tile the packet's lifetime exactly.
        total = sum(e["dur"] for e in events if e["ph"] == "X")
        assert total == 12

    def test_chrome_trace_chained_label_and_limit(self):
        span_set = build_spans(
            _synthetic_packet(pid=1, chained=True)
            + _synthetic_packet(pid=2, created=20, injected=21, arrived=23,
                                grant=24, departed=24, head_ejected=27,
                                ejected=29)
        )
        full = span_set.to_chrome_trace()
        names = {e["name"] for e in full["traceEvents"] if e["ph"] == "X"}
        assert "pc_chain" in names
        limited = span_set.to_chrome_trace(limit=1)
        tids = {e["tid"] for e in limited["traceEvents"]}
        assert tids == {1}

    def test_save_chrome_trace_gz(self, tmp_path):
        path = tmp_path / "spans.json.gz"
        build_spans(_synthetic_packet()).save_chrome_trace(str(path))
        with gzip.open(path, "rt") as fh:
            data = json.load(fh)
        assert data["traceEvents"]

    def test_report_handles_empty_trace(self):
        text = format_spans_report(build_spans([]))
        assert "0 complete packets" in text
        assert "filtered" in text

    def test_report_sections(self):
        text = format_spans_report(build_spans(_synthetic_packet()))
        assert "latency decomposition" in text
        assert "sa_wait" in text
        assert "allocation wait/hop" in text


def _traced_decomposition(chaining, seed=9, mesh_k=8, rate=0.7,
                          warmup=50, measure=150, drain=1500):
    bus = TraceBus()
    sink = bus.attach(MemorySink())
    cfg = mesh_config(mesh_k=mesh_k, chaining=chaining)
    result = run_simulation(
        cfg, rate=rate, warmup=warmup, measure=measure, drain=drain,
        seed=seed, trace=bus,
    )
    return result, build_spans(sink.events)


class TestSpansFromSimulation:
    @pytest.fixture(scope="class")
    def chained(self):
        return _traced_decomposition("any_input")

    @pytest.fixture(scope="class")
    def unchained(self):
        return _traced_decomposition("disabled")

    def test_components_telescope_exactly(self, chained):
        _, span_set = chained
        assert len(span_set) > 0
        for span in span_set:
            comps = span.components()
            assert sum(comps.values()) == span.latency
            assert all(v >= 0 for v in comps.values()), (span.pid, comps)

    def test_every_drained_packet_has_a_span(self, chained):
        result, span_set = chained
        assert result.drained is True
        assert span_set.incomplete == 0

    def test_chained_hops_match_chain_stats(self, chained):
        result, span_set = chained
        decomp = span_set.decomposition()
        assert decomp["hops"]["chained"] == result.chain_stats.total_chains

    def test_chaining_shrinks_allocation_wait(self, chained, unchained):
        """The paper's claim, measured: on a saturated 8x8 mesh,
        enabling packet chaining reduces the allocation-wait component
        of packet latency (everything else about the runs is equal)."""
        _, span_on = chained
        _, span_off = unchained
        on = span_on.decomposition()
        off = span_off.decomposition()
        assert on["hops"]["chained"] > 0
        assert off["hops"]["chained"] == 0
        # Per-packet mean sa_wait and per-hop mean allocation wait both
        # move the direction the paper predicts.
        assert on["mean"]["sa_wait"] < off["mean"]["sa_wait"]
        assert on["hops"]["mean_wait"] < off["hops"]["mean_wait"]
