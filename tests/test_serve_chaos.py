"""End-to-end crash-tolerance acceptance tests for ``repro serve``.

The contract under test: with >= 12 jobs in flight, SIGKILL any single
worker — and, separately, SIGKILL the whole server and restart it —
and in both cases every job still completes, every result is
bit-identical to an uninterrupted run of the same experiment, and no
config hash is ever simulated more than once per cache miss. The last
invariant is audited from the two durable records the service keeps:
the job journal (at most one non-cached ``done`` per hash) and the
cache index (exactly one line per hash).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.checkpoint import canonical_sha256, lengths_from_spec
from repro.network.config import NetworkConfig, mesh_config
from repro.serve import (
    RetryPolicy,
    job_records,
    load_result,
    submit_spec,
)
from repro.serve.cache import ResultCache
from repro.serve.spec import spec_for
from repro.serve.store import JOURNAL, read_events
from repro.sim.runner import run_simulation

#: Large enough that a server SIGKILL lands mid-queue (~0.35 s/job),
#: small enough that the whole file stays in tier-1 territory.
PHASES = dict(warmup=300, measure=600, drain=100)
RATES = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40]
FAST = RetryPolicy(base=0.001, factor=2.0, cap=0.01, jitter=0.0)

CONFIG = mesh_config(mesh_k=4)


def make_specs():
    """12 jobs over 8 distinct experiments: rates + 4 duplicates."""
    specs = [spec_for(CONFIG, rate=rate, label=f"r{rate:g}", **PHASES)
             for rate in RATES]
    specs += [spec_for(CONFIG, rate=rate, label=f"dup{rate:g}", **PHASES)
              for rate in RATES[:4]]
    return specs


@pytest.fixture(scope="module")
def baseline():
    """Uninterrupted ground truth: result hash per distinct spec hash."""
    hashes = {}
    for spec in make_specs():
        key = spec.spec_hash()
        if key in hashes:
            continue
        result = run_simulation(
            NetworkConfig.from_dict(spec.config), pattern=spec.pattern,
            rate=spec.rate, lengths=lengths_from_spec(spec.lengths),
            warmup=spec.warmup, measure=spec.measure, drain=spec.drain,
        )
        hashes[key] = canonical_sha256(result.to_dict())
    return hashes


def assert_no_duplicate_simulation(root):
    """Journal + cache index audit: one simulation per cache miss."""
    events = read_events(os.path.join(root, JOURNAL))
    fresh_by_hash = {}
    for rec in job_records(root).values():
        assert rec.hash is not None
    for ev in events:
        if ev["ev"] == "done" and not ev.get("cached"):
            job_hash = job_records(root)[ev["job"]].hash
            fresh_by_hash[job_hash] = fresh_by_hash.get(job_hash, 0) + 1
    assert all(n <= 1 for n in fresh_by_hash.values()), fresh_by_hash
    index = ResultCache(root).read_index()
    hashes = [entry["hash"] for entry in index]
    assert len(hashes) == len(set(hashes)), "cache index has duplicates"


def assert_bit_identical(root, job_ids, baseline):
    records = job_records(root)
    for job_id in job_ids:
        rec = records[job_id]
        assert rec.state == "done", (job_id, rec.state, rec.error)
        result = load_result(root, rec)
        assert canonical_sha256(result.to_dict()) == baseline[rec.hash], \
            f"{job_id} ({rec.label}) diverged from the uninterrupted run"


class TestWorkerSigkill:
    def test_killed_worker_fleet_still_completes(self, tmp_path, baseline):
        from repro.serve import ExperimentService

        root = str(tmp_path)
        specs = make_specs()
        # Any single worker: arm the hard-death chaos hook on one job's
        # first attempt. The hook fires inside the worker process, so
        # this IS a SIGKILLed worker mid-fleet, not a simulated error.
        specs[5].chaos = {"sigkill_attempts": 1}
        job_ids = [submit_spec(root, spec) for spec in specs]
        assert len(job_ids) == 12
        with ExperimentService(root, workers=2, lease_timeout=30.0,
                               retry_policy=FAST) as svc:
            svc.run(once=True, max_seconds=300, install_signals=False)
            counters = svc.metrics.to_dict()["counters"]
        assert counters["serve_retries_total"] >= 1
        assert_bit_identical(root, job_ids, baseline)
        assert_no_duplicate_simulation(root)
        # 8 distinct experiments -> exactly 8 cache entries, and the 4
        # duplicates all hit.
        assert len(ResultCache(root).read_index()) == 8
        assert counters["serve_cache_hits_total"] >= 4


def _serve_proc(root, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", root, "--workers", "2",
         "--poll", "0.02", "--lease-timeout", "60", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def _wait_for_done(root, n, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done = sum(1 for rec in job_records(root).values() if rec.terminal)
        if done >= n:
            return done
        time.sleep(0.05)
    raise AssertionError(f"fewer than {n} jobs terminal after {timeout}s")


class TestServerSigkill:
    def test_kill_dash_nine_the_server_and_restart(self, tmp_path,
                                                   baseline):
        root = str(tmp_path)
        job_ids = [submit_spec(root, spec) for spec in make_specs()]
        assert len(job_ids) == 12

        server = _serve_proc(root)
        try:
            # Let it get properly mid-queue, then kill it dead.
            _wait_for_done(root, 2)
            os.kill(server.pid, signal.SIGKILL)
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
        interrupted = job_records(root)
        survivors = [j for j in job_ids
                     if j in interrupted and interrupted[j].terminal]
        assert survivors, "server died before finishing anything"
        assert len(survivors) < 12, "server finished before the kill"

        # PDEATHSIG: the dead server's workers must not linger.
        time.sleep(0.5)
        for rec in interrupted.values():
            if rec.worker is not None and rec.state == "running":
                with pytest.raises(ProcessLookupError):
                    os.kill(rec.worker, 0)

        # Restart over the same root: the journal is the queue.
        restarted = _serve_proc(root, "--once")
        stdout, stderr = restarted.communicate(timeout=300)
        assert restarted.returncode == 0, stderr.decode()

        records = job_records(root)
        assert all(records[j].state == "done" for j in job_ids)
        assert_bit_identical(root, job_ids, baseline)
        assert_no_duplicate_simulation(root)
        # Jobs orphaned by the kill were requeued, not restarted ad hoc.
        events = read_events(os.path.join(root, JOURNAL))
        assert any(ev["ev"] == "requeued" for ev in events)

    def test_resubmission_after_restart_is_all_cache_hits(self, tmp_path,
                                                          baseline):
        root = str(tmp_path)
        first = [submit_spec(root, spec) for spec in make_specs()[:4]]
        server = _serve_proc(root, "--once")
        stdout, stderr = server.communicate(timeout=300)
        assert server.returncode == 0, stderr.decode()

        # Same specs again, fresh job ids: every one must come from the
        # cache without simulating.
        second = [submit_spec(root, spec) for spec in make_specs()[:4]]
        server = _serve_proc(root, "--once")
        stdout, stderr = server.communicate(timeout=300)
        assert server.returncode == 0, stderr.decode()

        records = job_records(root)
        assert all(records[j].state == "done" for j in first + second)
        assert all(records[j].cached for j in second)
        assert_bit_identical(root, first + second, baseline)
        assert_no_duplicate_simulation(root)
