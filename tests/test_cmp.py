"""Tests for the CMP substrate: caches, coherence, cores, system."""

import random

import pytest

from repro.cmp.cache import SetAssociativeCache
from repro.cmp.coherence import (
    Directory,
    DirectoryState,
    Message,
    MessageType,
)
from repro.cmp.core_model import Core
from repro.cmp.system import CMPConfig, CMPSystem, run_application
from repro.cmp.workloads import WORKLOADS, WorkloadProfile
from repro.network.config import mesh_config


class TestCache:
    def test_miss_then_hit(self):
        c = SetAssociativeCache(1024, 4, 32)
        assert not c.lookup(5)
        c.insert(5)
        assert c.lookup(5)

    def test_lru_eviction(self):
        c = SetAssociativeCache(4 * 32, 4, 32)  # one set, 4 ways
        for line in range(4):
            c.insert(line * c.num_sets)
        c.lookup(0)  # refresh line 0
        victim = c.insert(100 * c.num_sets)
        assert victim[0] == 1 * c.num_sets  # LRU was line 1

    def test_dirty_tracking(self):
        c = SetAssociativeCache(1024, 4, 32)
        c.insert(7)
        assert not c.is_dirty(7)
        c.mark_dirty(7)
        assert c.is_dirty(7)
        c2 = SetAssociativeCache(4 * 32, 4, 32)
        c2.insert(1, dirty=True)
        for line in range(2, 6):
            c2.insert(line)
        # the dirty line was evicted at some point with dirty=True
        assert not c2.lookup(1)

    def test_eviction_reports_dirty_flag(self):
        c = SetAssociativeCache(4 * 32, 4, 32)
        c.insert(0, dirty=True)
        for line in range(1, 4):
            c.insert(line * c.num_sets if c.num_sets > 1 else line)
        victim = c.insert(99)
        assert victim == (0, True)

    def test_invalidate(self):
        c = SetAssociativeCache(1024, 4, 32)
        c.insert(3)
        assert c.invalidate(3)
        assert not c.lookup(3)
        assert not c.invalidate(3)

    def test_paper_l1_geometry(self):
        """8KB, 4-way, 32B lines -> 64 sets, 256 lines."""
        c = SetAssociativeCache(8 * 1024, 4, 32)
        assert c.num_sets == 64

    def test_reinsert_updates_dirty(self):
        c = SetAssociativeCache(1024, 4, 32)
        c.insert(3)
        c.insert(3, dirty=True)
        assert c.is_dirty(3)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 32)


def make_directory(node=0):
    l2 = SetAssociativeCache(32 * 1024, 4, 32)
    return Directory(node, l2, mem_controller_of=lambda line: 99, num_nodes=64)


class TestDirectory:
    def test_gets_cold_goes_to_memory(self):
        d = make_directory()
        out = d.handle(Message(MessageType.GETS, 100, 5, 0))
        assert [m.mtype for m in out] == [MessageType.MEMREQ]
        assert out[0].dest == 99
        assert out[0].requester == 5
        assert d.entry(100).state is DirectoryState.SHARED
        assert 5 in d.entry(100).sharers

    def test_gets_l2_hit_serves_data(self):
        d = make_directory()
        d.l2_insert(100)
        out = d.handle(Message(MessageType.GETS, 100, 5, 0))
        assert [m.mtype for m in out] == [MessageType.DATA]
        assert out[0].dest == 5

    def test_gets_from_modified_forwards_to_owner(self):
        d = make_directory()
        d.l2_insert(100)
        d.handle(Message(MessageType.GETX, 100, 3, 0))  # 3 becomes owner
        out = d.handle(Message(MessageType.GETS, 100, 5, 0))
        assert [m.mtype for m in out] == [MessageType.FWD_GETS]
        assert out[0].dest == 3
        assert out[0].requester == 5
        e = d.entry(100)
        assert e.state is DirectoryState.SHARED
        assert e.sharers == {3, 5}

    def test_getx_invalidates_sharers(self):
        d = make_directory()
        d.l2_insert(100)
        d.handle(Message(MessageType.GETS, 100, 3, 0))
        d.handle(Message(MessageType.GETS, 100, 4, 0))
        out = d.handle(Message(MessageType.GETX, 100, 5, 0))
        invs = [m for m in out if m.mtype is MessageType.INV]
        assert {m.dest for m in invs} == {3, 4}
        assert all(m.requester == 5 for m in invs)
        data = [m for m in out if m.mtype is MessageType.DATA]
        assert len(data) == 1 and data[0].exclusive
        assert d.entry(100).state is DirectoryState.MODIFIED
        assert d.entry(100).owner == 5

    def test_getx_from_modified_forwards(self):
        d = make_directory()
        d.l2_insert(100)
        d.handle(Message(MessageType.GETX, 100, 3, 0))
        out = d.handle(Message(MessageType.GETX, 100, 5, 0))
        assert [m.mtype for m in out] == [MessageType.FWD_GETX]
        assert out[0].dest == 3
        assert d.entry(100).owner == 5

    def test_getx_upgrade_by_owner(self):
        d = make_directory()
        d.l2_insert(100)
        d.handle(Message(MessageType.GETX, 100, 3, 0))
        out = d.handle(Message(MessageType.GETX, 100, 3, 0))
        assert [m.mtype for m in out] == [MessageType.DATA]

    def test_writeback_clears_owner_and_fills_l2(self):
        d = make_directory()
        d.l2_insert(100)
        d.handle(Message(MessageType.GETX, 100, 3, 0))
        out = d.handle(Message(MessageType.WB, 100, 3, 0))
        assert out == []
        assert d.entry(100).state is DirectoryState.INVALID
        assert d.l2_lookup(100)

    def test_slice_indexing_uses_high_bits(self):
        """Home-interleaved lines must not collapse onto a few sets."""
        d = make_directory(node=0)
        lines = [64 * k for k in range(200)]  # all homed to node 0
        for line in lines:
            d.l2_insert(line)
        hits = sum(d.l2_lookup(line, touch=False) for line in lines)
        assert hits == 200  # raw-line indexing would have evicted most


class TestCore:
    def _core(self, profile=None):
        profile = profile or WORKLOADS["canneal"]
        core = Core(0, profile, random.Random(3))
        core._home = lambda line: line % 64
        return core

    def test_issues_instructions(self):
        core = self._core()
        for _ in range(100):
            core.step_core_cycle()
        assert core.instructions > 0
        assert core.core_cycles == 100

    def test_misses_generate_requests(self):
        profile = WorkloadProfile(
            name="stress", mem_fraction=1.0, working_set=10_000,
            shared_fraction=0.0, shared_lines=1, write_fraction=0.0,
            dependency_fraction=0.0,
        )
        core = self._core(profile)
        reqs = []
        for _ in range(50):
            reqs.extend(core.step_core_cycle())
        assert reqs
        assert all(m.mtype is MessageType.GETS for m in reqs)

    def test_dependent_miss_blocks_thread(self):
        profile = WorkloadProfile(
            name="dep", mem_fraction=1.0, working_set=10_000,
            shared_fraction=0.0, shared_lines=1, write_fraction=0.0,
            dependency_fraction=1.0,
        )
        core = self._core(profile)
        core.step_core_cycle()
        assert all(t.blocked_on is not None for t in core.threads)
        before = core.instructions
        core.step_core_cycle()
        assert core.instructions == before  # both threads stalled

    def test_data_reply_unblocks(self):
        profile = WorkloadProfile(
            name="dep", mem_fraction=1.0, working_set=10_000,
            shared_fraction=0.0, shared_lines=1, write_fraction=0.0,
            dependency_fraction=1.0,
        )
        core = self._core(profile)
        reqs = core.step_core_cycle()
        line = reqs[0].line
        core.receive(Message(MessageType.DATA, line, 9, 0, requester=0))
        blocked = [t for t in core.threads if t.blocked_on == line]
        assert not blocked
        assert core.l1.lookup(line)

    def test_mshr_cap_stalls(self):
        profile = WorkloadProfile(
            name="mlp", mem_fraction=1.0, working_set=100_000,
            shared_fraction=0.0, shared_lines=1, write_fraction=0.0,
            dependency_fraction=0.0,
        )
        core = Core(0, profile, random.Random(3), max_outstanding=2)
        core._home = lambda line: 0
        for _ in range(10):
            core.step_core_cycle()
        for t in core.threads:
            assert len(t.outstanding) <= 2

    def test_inv_ack_generated(self):
        core = self._core()
        core.l1.insert(42)
        out = core.receive(Message(MessageType.INV, 42, 9, 0, requester=7))
        assert [m.mtype for m in out] == [MessageType.INV_ACK]
        assert out[0].dest == 7
        assert not core.l1.lookup(42)

    def test_fwd_gets_produces_data_and_wb(self):
        core = self._core()
        out = core.receive(Message(MessageType.FWD_GETS, 42, 9, 0, requester=7))
        assert {m.mtype for m in out} == {MessageType.DATA, MessageType.WB}

    def test_dirty_eviction_writes_back(self):
        profile = WORKLOADS["canneal"]
        core = self._core(profile)
        # Fill one L1 set with dirty lines, then insert once more.
        lines = [k * core.l1.num_sets for k in range(5)]
        out = []
        for line in lines:
            out.extend(
                core.receive(
                    Message(MessageType.DATA, line, 9, 0, requester=0,
                            exclusive=True)
                )
            )
        wbs = [m for m in out if m.mtype is MessageType.WB]
        assert len(wbs) == 1


class TestCMPConfig:
    def test_64bit_datapath_flit_counts(self):
        """Paper: single-flit control, 5-flit data for 32B lines."""
        cfg = CMPConfig(datapath_bytes=8)
        assert cfg.control_flits == 1
        assert cfg.data_flits == 5

    def test_32bit_datapath_flit_counts(self):
        """Paper: with a 32-bit datapath the minimum packet is 2 flits."""
        cfg = CMPConfig(datapath_bytes=4)
        assert cfg.control_flits == 2
        assert cfg.data_flits == 10

    def test_message_flits(self):
        cfg = CMPConfig()
        assert cfg.message_flits(MessageType.GETS) == 1
        assert cfg.message_flits(MessageType.DATA) == 5
        assert cfg.message_flits(MessageType.WB) == 5


class TestCMPSystem:
    def test_all_workloads_defined(self):
        assert set(WORKLOADS) == {
            "blackscholes", "canneal", "dedup", "fft", "fluidanimate",
            "swaptions",
        }

    def test_runs_and_makes_progress(self):
        system = CMPSystem("canneal", mesh_config())
        system.run(100)
        assert system.aggregate_ipc() > 0
        assert sum(system.messages_sent.values()) > 0

    def test_local_home_skips_network(self):
        """Messages to the local slice never become packets."""
        system = CMPSystem("canneal", mesh_config())
        from repro.cmp.coherence import Message

        injected_before = system.network.backlog()
        system.send(Message(MessageType.GETS, 0, 0, 0))  # home of line 0 is 0
        system._flush_outbox()
        assert system.network.backlog() == injected_before

    def test_memory_latency_applied(self):
        system = CMPSystem("canneal", mesh_config())
        from repro.cmp.coherence import Message

        # A MEMREQ delivered now must not reply before mem_latency.
        system.deliver(
            Message(MessageType.MEMREQ, 123456, 0,
                    system.mem_controllers[0], requester=7)
        )
        assert system._mem_queue
        ready, _, _ = system._mem_queue[0]
        assert ready == system.network.cycle + system.cmp.mem_latency_net_cycles

    def test_single_flit_fraction_near_paper(self):
        """Paper: 53% of packets are single-flit on average."""
        system = CMPSystem("dedup", mesh_config(), seed=2)
        system.run(400)
        frac = system.single_flit_fraction()
        assert 0.35 < frac < 0.75

    def test_run_application_measures_window(self):
        system = run_application("canneal", mesh_config(), warmup=50, measure=100)
        assert system.network.cycle == 150
        assert system.aggregate_ipc() > 0

    def test_prewarm_populates_l2(self):
        system = CMPSystem("canneal", mesh_config())
        occ = sum(d.l2.occupancy() for d in system.directories)
        assert occ > 10_000  # working sets resident

    def test_non_mesh_rejected(self):
        from repro.network.config import fbfly_config

        with pytest.raises(ValueError):
            CMPSystem("canneal", fbfly_config())

    def test_ipc_reset(self):
        system = CMPSystem("canneal", mesh_config())
        system.run(50)
        system.reset_ipc_counters()
        assert system.aggregate_ipc() == 0.0


class TestProtocolLiveness:
    def test_no_thread_blocks_forever(self):
        """Every outstanding miss is eventually served (no protocol
        deadlock): a snapshot of blocked (thread, line) pairs must be
        fully resolved within a bounded number of cycles."""
        system = CMPSystem("blackscholes", mesh_config(), seed=5)
        system.run(300)
        # blocked_on is a line address (int) for dependent-miss stalls;
        # the MSHR-cap sentinel is excluded (it resolves independently).
        snapshot = {
            (core.node, t.tid, t.blocked_on)
            for core in system.cores
            for t in core.threads
            if isinstance(t.blocked_on, int)
        }
        system.run(600)
        still = {
            (core.node, t.tid, t.blocked_on)
            for core in system.cores
            for t in core.threads
            if isinstance(t.blocked_on, int)
        }
        assert not (snapshot & still), "threads stuck on the same miss"

    def test_chained_network_is_also_live(self):
        cfg = mesh_config(chaining="same_input", starvation_threshold=8)
        system = CMPSystem("fft", cfg, seed=6)
        system.run(300)
        before = system.aggregate_ipc()
        system.run(300)
        # Instructions keep committing: the system is making progress.
        assert system.cores[0].core_cycles == 600 * 4
        assert system.aggregate_ipc() > 0


class TestWorkloadProfiles:
    def test_burst_modulation(self):
        p = WORKLOADS["blackscholes"]
        probs = {p.mem_probability(c) for c in range(p.burst_period)}
        assert len(probs) == 2  # hot and cold phases
        assert max(probs) > p.mem_fraction
        assert min(probs) < p.mem_fraction

    def test_steady_profiles_flat(self):
        p = WORKLOADS["canneal"]
        assert p.mem_probability(0) == p.mem_probability(123) == p.mem_fraction

    def test_blackscholes_heaviest(self):
        """The paper's ordering driver: blackscholes loads the NoC most."""
        bs, cn = WORKLOADS["blackscholes"], WORKLOADS["canneal"]
        assert bs.mem_fraction > cn.mem_fraction
        assert bs.working_set > cn.working_set
