"""Tests for terminal source/sink behavior and time-series sampling."""

import pytest

from repro.network.channel import PipelinedChannel
from repro.network.config import fbfly_config, mesh_config
from repro.network.flit import Packet
from repro.network.terminal import Sink, Source
from repro.routing import DORMesh
from repro.stats import StatsCollector, TimeSeries
from repro.stats.timeseries import attach
from repro.topology import Mesh2D


def make_source(config=None):
    config = config or mesh_config(mesh_k=4)
    topo = Mesh2D(config.mesh_k)
    routing = DORMesh(topo)
    flit_ch = PipelinedChannel(1)
    credit_ch = PipelinedChannel(2)
    return Source(0, config, routing, flit_ch, credit_ch), flit_ch, credit_ch


class TestSource:
    def test_sends_one_flit_per_cycle(self):
        source, flit_ch, _ = make_source()
        source.enqueue(Packet(0, 5, 3, 0))
        for cycle in range(3):
            source.step(cycle)
        flits = []
        for cycle in range(1, 4):
            flits.extend(flit_ch.receive(cycle))
        assert [f.index for f in flits] == [0, 1, 2]

    def test_head_flit_has_lookahead_route(self):
        source, flit_ch, _ = make_source()
        source.enqueue(Packet(0, 5, 1, 0))
        source.step(0)
        (head,) = flit_ch.receive(1)
        assert head.out_port is not None
        assert head.vc is not None

    def test_stalls_without_credits(self):
        source, flit_ch, _ = make_source()
        source.credits = [0] * len(source.credits)
        source.enqueue(Packet(0, 5, 1, 0))
        source.step(0)
        assert flit_ch.receive(1) == []
        assert source.backlog == 1

    def test_resumes_on_credit_return(self):
        source, flit_ch, credit_ch = make_source()
        source.credits = [0] * len(source.credits)
        source.enqueue(Packet(0, 5, 1, 0))
        source.step(0)
        credit_ch.send(0, 0)  # credit for VC 0, arrives at cycle 2
        for cycle in range(1, 4):
            source.receive_credits(cycle)
            source.step(cycle)
        arrived = []
        for cycle in range(1, 5):
            arrived.extend(flit_ch.receive(cycle))
        assert len(arrived) == 1

    def test_mid_packet_credit_stall(self):
        """Body flits wait for credits without interleaving packets."""
        source, flit_ch, _ = make_source()
        source.credits = [2] + [8] * (len(source.credits) - 1)
        source.enqueue(Packet(0, 5, 3, 0))
        source.enqueue(Packet(0, 6, 1, 0))
        for cycle in range(4):
            source.step(cycle)
        got = []
        for cycle in range(1, 6):
            got.extend(flit_ch.receive(cycle))
        # Only the first two flits of packet 1 fit in VC 0's credits;
        # packet 2 must NOT jump ahead on another VC.
        assert [f.index for f in got] == [0, 1]
        assert got[0].packet.dest == 5

    def test_time_injected_recorded(self):
        source, _, _ = make_source()
        packet = Packet(0, 5, 1, 0)
        source.enqueue(packet)
        source.step(7)
        assert packet.time_injected == 7

    def test_vc_selection_respects_class(self):
        cfg = fbfly_config()
        from repro.topology import FlattenedButterfly
        from repro.routing import UGALFbfly
        import random

        topo = FlattenedButterfly(4, 4, 4)
        routing = UGALFbfly(topo, random.Random(1))
        source = Source(0, cfg, routing, PipelinedChannel(1), PipelinedChannel(2))
        # Force minimal (class 1) by removing congestion: prepare will
        # pick class 1 for minimal routes; VC must be in class-1 range.
        source.enqueue(Packet(0, 63, 1, 0))
        source.step(0)
        (flit,) = source.flit_channel.receive(1)
        assert flit.vc in cfg.vc_class_range(flit.packet.vc_class)


class TestSink:
    def test_returns_credit_per_flit(self):
        flit_ch = PipelinedChannel(1)
        credit_ch = PipelinedChannel(2)
        stats = StatsCollector(4)
        sink = Sink(0, flit_ch, credit_ch, stats)
        packet = Packet(1, 0, 2, 0)
        flits = packet.flits()
        for f in flits:
            f.vc = 3
        flit_ch.send(flits[0], 0)
        flit_ch.send(flits[1], 1)
        sink.step(1)
        sink.step(2)
        assert credit_ch.receive(3) == [3]
        assert credit_ch.receive(4) == [3]

    def test_records_packet_on_tail(self):
        flit_ch = PipelinedChannel(1)
        stats = StatsCollector(4)
        stats.set_window(0, 100)
        sink = Sink(0, flit_ch, PipelinedChannel(2), stats)
        packet = Packet(1, 0, 2, 5)
        flits = packet.flits()
        for f in flits:
            f.vc = 0
        flit_ch.send(flits[0], 0)
        flit_ch.send(flits[1], 1)
        sink.step(1)
        assert packet.time_ejected is None  # head only
        sink.step(2)
        assert packet.time_ejected == 2
        assert len(stats.packet_latencies) == 1


class TestTimeSeries:
    def test_window_accumulation(self):
        ts = TimeSeries(window=10, num_terminals=2)
        for cycle in (0, 3, 9):
            ts.on_flit(cycle)
        ts.on_flit(15)
        assert len(ts.samples) == 2
        assert ts.samples[0].flits == 3
        assert ts.samples[1].flits == 1
        assert ts.throughput_series() == [3 / 10 / 2, 1 / 10 / 2]

    def test_gap_filling(self):
        ts = TimeSeries(window=10, num_terminals=1)
        ts.on_flit(5)
        ts.on_flit(45)
        assert [s.start for s in ts.samples] == [0, 10, 20, 30, 40]
        assert ts.throughput_series()[1:4] == [0.0, 0.0, 0.0]

    def test_latency_series(self):
        ts = TimeSeries(window=10, num_terminals=1)
        ts.on_packet(1, 4.0)
        ts.on_packet(2, 6.0)
        assert ts.latency_series() == [5.0]

    def test_stability_ratio(self):
        ts = TimeSeries(window=10, num_terminals=1)
        for c in range(10):
            ts.on_flit(c)  # window 0: 10 flits
        ts.on_flit(10)  # window 1: 1 flit
        assert ts.stability_ratio() == pytest.approx(0.1)

    def test_empty_series_stable(self):
        assert TimeSeries(10, 1).stability_ratio() == 1.0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            TimeSeries(0, 1)

    def test_attach_to_collector(self):
        stats = StatsCollector(2)
        stats.set_window(0, 100)
        series = attach(stats, window=10)

        class F:
            def __init__(self):
                self.packet = Packet(0, 1, 1, 0)

        f = F()
        stats.record_flit_ejected(f, 5)
        stats.record_ejected(f.packet, 5)
        # Both the collector and the series saw the events.
        assert stats.flits_ejected == 1
        assert series.samples[0].flits == 1
        assert series.samples[0].packets == 1

    def test_attach_end_to_end(self):
        """Time series of a real simulation shows ramp-up then traffic."""
        import random

        from repro.network.network import Network

        net = Network(mesh_config(mesh_k=4))
        series = attach(net.stats, window=50)
        net.stats.set_window(0, 400)
        rng = random.Random(3)
        for _ in range(400):
            for src in range(net.num_terminals):
                if rng.random() < 0.2:
                    dest = rng.randrange(net.num_terminals)
                    if dest != src:
                        net.inject(Packet(src, dest, 1, net.cycle))
            net.step()
        tps = series.throughput_series()
        assert len(tps) >= 6
        assert max(tps) > 0.1
