"""Tests for pseudo-circuit semantics (Ahn & Kim; the paper's §5).

Pseudo-circuits reuse a switch connection for the next same-VC packet
only when no other VC wants the output; packet chaining keeps the
connection regardless, trading latency-priority for allocation
efficiency under load.
"""

import pytest

from repro.core.chaining import ChainingScheme
from repro.network.config import mesh_config
from repro.network.flit import Packet
from repro.sim.runner import run_simulation

from tests.test_router import Sim, make_router, put


def pseudo_router(**kw):
    return make_router(chaining=ChainingScheme.SAME_VC,
                       pseudo_circuit_release=True, **kw)


class TestPseudoCircuitRouter:
    def test_reuses_connection_without_competition(self):
        router = pseudo_router()
        sim = Sim(router)
        a = put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        b = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
        sim.step(4)
        # No competitor: behaves exactly like SAME_VC chaining.
        assert sim.departed(b)[0] == sim.departed(a[1])[0] + 1
        assert router.chain_stats.same_input_same_vc == 1

    def test_releases_when_another_vc_competes(self):
        router = pseudo_router()
        sim = Sim(router)
        put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
        follower = put(router, 0, 0, Packet(0, 1, 1, 0), out_port=2)[0]
        competitor = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
        sim.step(6)
        # The connection was NOT reused past the tail: no chain formed
        # on the held connection, and the competitor got the output via
        # regular switch allocation.
        assert sim.departed(competitor) is not None
        assert sim.departed(follower) is not None

    def test_plain_chaining_holds_despite_competition(self):
        """Contrast case: SAME_VC chaining without pseudo release."""
        results = {}
        for pseudo in (True, False):
            router = make_router(chaining=ChainingScheme.SAME_VC,
                                 pseudo_circuit_release=pseudo)
            sim = Sim(router)
            put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
            follower = put(router, 0, 0, Packet(0, 1, 2, 0), out_port=2)
            competitor = put(router, 1, 0, Packet(2, 1, 1, 0), out_port=2)[0]
            sim.step(8)
            results[pseudo] = sim.departed(competitor)[0]
        # Chaining makes the competitor wait for the whole chain; the
        # pseudo-circuit lets it in at the first packet boundary.
        assert results[True] < results[False]


class TestPseudoCircuitNetwork:
    def test_throughput_between_baseline_and_chaining(self):
        run = dict(pattern="uniform", rate=1.0, packet_length=1,
                   warmup=250, measure=500, drain=0)
        base = run_simulation(mesh_config(mesh_k=4), **run)
        pseudo = run_simulation(
            mesh_config(mesh_k=4, chaining="same_vc",
                        pseudo_circuit_release=True), **run,
        )
        chained = run_simulation(
            mesh_config(mesh_k=4, chaining="same_vc"), **run,
        )
        assert pseudo.avg_throughput >= 0.97 * base.avg_throughput
        assert chained.avg_throughput >= 0.97 * pseudo.avg_throughput

    def test_config_flag_default_off(self):
        assert mesh_config().pseudo_circuit_release is False
