"""Deadlock/livelock watchdog with diagnostic dumps.

A :class:`HangWatchdog` attaches to a network and watches two progress
signals: flits *moving* (switched by any router or consumed by any
sink) and flits *ejecting*. With flits in flight,

- no movement for ``window`` cycles is a **deadlock** — every flit in
  the network is stuck behind a dependency cycle or exhausted
  resource;
- movement without a single ejection for ``window * livelock_factor``
  cycles is a **livelock** — flits circulate (misrouted around faults,
  for example) but never arrive.

On detection the watchdog assembles a diagnostic bundle — the
held-connection table (exactly the state packet chaining manipulates),
per-router buffer occupancy, the longest-waiting VC fronts, the
sampler's buffered-flits heatmap when a sampler is attached, the most
recent trace events when tracing is on, and the fault summary when a
controller is bound — writes it to ``dump_path`` (JSON) if given, and
raises :class:`WatchdogError` (``strict`` mode) or records the bundle
and disarms (``report`` mode).
"""

import json

from repro.obs.trace import NULL_TRACE, RingSink


class WatchdogError(RuntimeError):
    """The watchdog detected a hang; ``bundle`` holds the diagnostics."""

    def __init__(self, bundle):
        self.bundle = bundle
        super().__init__(
            f"{bundle['kind']} detected at cycle {bundle['cycle']}: no "
            f"{'flit movement' if bundle['kind'] == 'deadlock' else 'ejection'}"
            f" since cycle {bundle['last_progress_cycle']} with "
            f"{bundle['in_flight']} flits in flight"
        )


class HangWatchdog:
    """Detects simulations that stop making forward progress."""

    MODES = ("strict", "report")

    def __init__(self, window=1000, check_period=None, mode="strict",
                 dump_path=None, livelock_factor=8, ring_capacity=256):
        if window < 1:
            raise ValueError("watchdog window must be >= 1")
        if mode not in self.MODES:
            raise ValueError(f"unknown watchdog mode {mode!r} "
                             f"(expected one of {self.MODES})")
        self.window = window
        self.check_period = check_period or max(1, window // 4)
        self.mode = mode
        self.dump_path = dump_path
        self.livelock_factor = livelock_factor
        self.ring_capacity = ring_capacity
        self.network = None
        self.hangs = []  # bundles recorded in report mode
        self._ring = None
        self._armed = True
        self._next_cycle = 0
        self._last_moved = -1
        self._last_ejected = -1
        self._moved_cycle = 0
        self._ejected_cycle = 0

    def bind(self, network):
        self.network = network
        self._next_cycle = network.cycle
        self._moved_cycle = network.cycle
        self._ejected_cycle = network.cycle
        # Keep a bounded tail of trace events for the diagnostic bundle
        # when the run is traced at all (never touch the shared
        # NULL_TRACE: it must stay inert).
        if network.trace is not NULL_TRACE:
            self._ring = RingSink(self.ring_capacity)
            network.trace.attach(self._ring)
        return self

    # --- per-cycle hook ---------------------------------------------------

    def maybe_check(self, cycle):
        if cycle < self._next_cycle or not self._armed:
            return
        self._next_cycle = cycle + self.check_period
        net = self.network
        moved = sum(sum(r.port_flits) for r in net.routers)
        ejected = sum(k.flits_consumed for k in net.sinks)
        if moved != self._last_moved:
            self._last_moved = moved
            self._moved_cycle = cycle
        if ejected != self._last_ejected:
            self._last_ejected = ejected
            self._ejected_cycle = cycle
        in_flight = net.in_flight_flits()
        if in_flight == 0:
            return
        if cycle - self._moved_cycle >= self.window:
            self._hang("deadlock", cycle, in_flight, self._moved_cycle)
        elif cycle - self._ejected_cycle >= self.window * self.livelock_factor:
            self._hang("livelock", cycle, in_flight, self._ejected_cycle)

    # --- diagnostics ------------------------------------------------------

    def _hang(self, kind, cycle, in_flight, last_progress):
        bundle = self.diagnose(kind, cycle, in_flight, last_progress)
        if self.dump_path:
            with open(self.dump_path, "w") as fh:
                json.dump(bundle, fh, indent=2, sort_keys=True)
                fh.write("\n")
        tr = self.network.trace
        if tr.active:
            tr.emit("watchdog_hang", cycle, kind=kind, in_flight=in_flight)
        if self.mode == "strict":
            raise WatchdogError(bundle)
        self.hangs.append(bundle)
        self._armed = False  # one report per run; re-arm explicitly

    def rearm(self):
        self._armed = True
        self._moved_cycle = self.network.cycle
        self._ejected_cycle = self.network.cycle

    def diagnose(self, kind, cycle, in_flight, last_progress):
        """Assemble the diagnostic bundle (JSON-serializable)."""
        net = self.network
        held = []
        waiters = []
        for r, router in enumerate(net.routers):
            for o, conn in enumerate(router.conn_out):
                if conn is None:
                    continue
                p, v = conn
                active = router.in_vcs[p][v].active_packet
                held.append({
                    "router": r, "out_port": o, "in_port": p, "vc": v,
                    "age": router.conn_age[o],
                    "pid": active.pid if active is not None else None,
                })
            for p in range(router.radix):
                for v, vcobj in enumerate(router.in_vcs[p]):
                    flit = vcobj.front()
                    if flit is None or vcobj.wait_cycles == 0:
                        continue
                    waiters.append({
                        "router": r, "in_port": p, "vc": v,
                        "pid": flit.packet.pid,
                        "wait_cycles": vcobj.wait_cycles,
                        "out_port": vcobj.front_out_port(),
                    })
        waiters.sort(key=lambda w: w["wait_cycles"], reverse=True)
        heatmap = None
        if net.sampler is not None and net.sampler.samples:
            try:
                heatmap = net.sampler.heatmap("buffered", reduce="last")
            except TypeError:
                heatmap = None  # non-grid topology
        bundle = {
            "kind": kind,
            "cycle": cycle,
            "window": self.window,
            "last_progress_cycle": last_progress,
            "in_flight": in_flight,
            "backlog": net.backlog(),
            "held_connections": held,
            "stalled_fronts": waiters[:20],
            "buffered_per_router": [
                r.total_buffered_flits() for r in net.routers
            ],
            "heatmap": heatmap,
            "recent_events": list(self._ring.events) if self._ring else [],
        }
        if net.faults is not None:
            bundle["faults"] = net.faults.summary()
        return bundle

    def summary(self):
        return {
            "window": self.window,
            "mode": self.mode,
            "hangs": len(self.hangs),
        }
