"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` is the declarative description of everything that
goes wrong during a run: scheduled link failures (permanent or
transient), router failures, and a background per-flit transient error
process (drop/corrupt probabilities over a cycle window). Plans are
plain JSON so they can be checked into a repo and replayed exactly::

    {
      "seed": 7,
      "links": [
        {"router": 9, "port": 0, "cycle": 500},
        {"router": 3, "port": 2, "cycle": 200, "duration": 300}
      ],
      "routers": [{"router": 27, "cycle": 800}],
      "flit_errors": {"drop": 0.0005, "corrupt": 0.0002,
                      "start": 0, "end": null}
    }

``seed`` drives the single RNG behind the per-flit error process, so a
plan plus a network config reproduces the identical fault sequence.
The :class:`~repro.faults.controller.FaultController` interprets the
plan against a live network.
"""

import json
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class LinkFault:
    """Failure of the bidirectional link on ``(router, port)``.

    ``duration=None`` is a permanent failure; otherwise the link is
    repaired ``duration`` cycles after ``cycle``. The data path drops
    every flit crossing the link while it is down; the credit/control
    plane is modeled as reliable (see DESIGN.md's fault model) so
    dropped flits still return their buffer credit upstream.
    """

    router: int
    port: int
    cycle: int
    duration: Optional[int] = None

    def __post_init__(self):
        if self.cycle < 0:
            raise ValueError("link fault cycle must be >= 0")
        if self.duration is not None and self.duration < 1:
            raise ValueError("link fault duration must be >= 1 (or null)")

    @property
    def permanent(self):
        return self.duration is None


@dataclass(frozen=True)
class RouterFault:
    """Permanent failure of a whole router at ``cycle``.

    All links touching the router go down, its buffered flits are lost
    (credits are returned upstream), and its terminal stops injecting.
    """

    router: int
    cycle: int

    def __post_init__(self):
        if self.cycle < 0:
            raise ValueError("router fault cycle must be >= 0")


@dataclass(frozen=True)
class FlitErrors:
    """Background per-flit transient error process.

    Every flit delivery inside ``[start, end)`` (``end=None`` = forever)
    independently drops with probability ``drop`` or corrupts with
    probability ``corrupt``, decided by the plan's seeded RNG. A drop
    kills the whole packet (partial packets cannot be reassembled); a
    corruption travels on and is discarded at the sink, like a failed
    end-to-end CRC check.
    """

    drop: float = 0.0
    corrupt: float = 0.0
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self):
        if not (0.0 <= self.drop <= 1.0 and 0.0 <= self.corrupt <= 1.0):
            raise ValueError("flit error probabilities must be in [0, 1]")
        if self.drop + self.corrupt > 1.0:
            raise ValueError("drop + corrupt probability exceeds 1")
        if self.end is not None and self.end <= self.start:
            raise ValueError("flit error window end must be > start")

    def active(self, cycle):
        return cycle >= self.start and (self.end is None or cycle < self.end)

    @property
    def enabled(self):
        return self.drop > 0.0 or self.corrupt > 0.0


@dataclass
class FaultPlan:
    """A complete, JSON-serializable fault schedule."""

    seed: int = 0
    links: List[LinkFault] = field(default_factory=list)
    routers: List[RouterFault] = field(default_factory=list)
    flit_errors: Optional[FlitErrors] = None

    @property
    def empty(self):
        return not self.links and not self.routers and (
            self.flit_errors is None or not self.flit_errors.enabled
        )

    # --- (de)serialization ------------------------------------------------

    def to_dict(self):
        data = {
            "seed": self.seed,
            "links": [
                {"router": f.router, "port": f.port, "cycle": f.cycle,
                 "duration": f.duration}
                for f in self.links
            ],
            "routers": [
                {"router": f.router, "cycle": f.cycle} for f in self.routers
            ],
        }
        if self.flit_errors is not None:
            fe = self.flit_errors
            data["flit_errors"] = {
                "drop": fe.drop, "corrupt": fe.corrupt,
                "start": fe.start, "end": fe.end,
            }
        return data

    @classmethod
    def from_dict(cls, data):
        known = {"seed", "links", "routers", "flit_errors"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        links = [LinkFault(**entry) for entry in data.get("links", ())]
        routers = [RouterFault(**entry) for entry in data.get("routers", ())]
        fe = data.get("flit_errors")
        return cls(
            seed=data.get("seed", 0),
            links=links,
            routers=routers,
            flit_errors=FlitErrors(**fe) if fe is not None else None,
        )

    def save(self, path):
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # --- validation -------------------------------------------------------

    def validate(self, topology):
        """Check every fault names a real link/router of ``topology``.

        Raises ValueError on out-of-range routers or ports without a
        wired link (terminal ports are legal targets: the terminal
        becomes unreachable).
        """
        n = topology.num_routers
        for f in self.routers:
            if not 0 <= f.router < n:
                raise ValueError(f"router fault names router {f.router} "
                                 f"but the topology has {n}")
        for f in self.links:
            if not 0 <= f.router < n:
                raise ValueError(f"link fault names router {f.router} "
                                 f"but the topology has {n}")
            radix = topology.radix(f.router)
            if not 0 <= f.port < radix:
                raise ValueError(
                    f"link fault names port {f.port} on router {f.router} "
                    f"(radix {radix})"
                )
            if (topology.link(f.router, f.port) is None
                    and not topology.is_terminal_port(f.router, f.port)):
                raise ValueError(
                    f"link fault names unwired port {f.port} on router "
                    f"{f.router}"
                )
        return self
