"""Runtime invariant checking for the simulation core.

An :class:`InvariantChecker` attaches to a live
:class:`~repro.network.network.Network` and, every ``period`` cycles,
sweeps the whole network for violations of the properties the credit
protocol and allocator are supposed to guarantee:

- **credit conservation** — for every directed link (router→router,
  source→router, router→sink) and every VC: sender credits + flits on
  the forward channel + flits buffered at the receiver + credits on
  the return channel == buffer depth, at every cycle boundary, even
  while faults drop flits mid-link;
- **flit conservation** — flits injected == flits delivered + flits
  in flight + flits dropped by fault injection, network-wide;
- **buffer bounds** — no VC holds more flits than its capacity, no
  credit counter leaves [0, depth];
- **connection-table consistency** — at most one connection per output
  port, and ``conn_in``/``conn_out`` always agree (one connection per
  input, too).

``strict`` mode raises :class:`InvariantViolation` on the first bad
sweep (CI, tests); ``report`` mode records violations, emits
``invariant_violation`` trace events, and keeps simulating (forensics
on faulted runs). Detached networks pay nothing; an attached checker
costs one sweep every ``period`` cycles and nothing in between.
"""


class InvariantViolation(AssertionError):
    """One or more runtime invariants failed; ``violations`` lists them."""

    def __init__(self, cycle, violations):
        self.cycle = cycle
        self.violations = list(violations)
        lines = "\n  ".join(self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s) at cycle "
            f"{cycle}:\n  {lines}"
        )


class InvariantChecker:
    """Periodic network-wide invariant sweeps (strict or report mode)."""

    MODES = ("strict", "report")

    def __init__(self, period=64, mode="strict", max_reports=100):
        if period < 1:
            raise ValueError("invariant check period must be >= 1")
        if mode not in self.MODES:
            raise ValueError(f"unknown invariant mode {mode!r} "
                             f"(expected one of {self.MODES})")
        self.period = period
        self.mode = mode
        self.max_reports = max_reports
        self.network = None
        self.checks_run = 0
        self.violations = []  # (cycle, message) accumulated in report mode
        self._next_cycle = 0
        self._loops = []

    def bind(self, network):
        """Precompute the credit loops of the wired network."""
        self.network = network
        self._next_cycle = network.cycle
        self._loops = []
        topo = network.topology
        for r, router in enumerate(network.routers):
            for o in range(router.radix):
                fwd = router.out_flit_channels[o]
                if fwd is None:
                    continue
                link = topo.link(r, o)
                buffers = None
                if link is not None:
                    buffers = network.routers[link.dest_router].in_vcs[
                        link.dest_port
                    ]
                self._loops.append((
                    f"router {r} port {o}",
                    router.credits[o], fwd, buffers,
                    router.credit_return_channels[o],
                ))
        for t, source in enumerate(network.sources):
            r, port = topo.terminal_attachment(t)
            self._loops.append((
                f"source {t}",
                source.credits, source.flit_channel,
                network.routers[r].in_vcs[port], source.credit_channel,
            ))
        return self

    # --- per-cycle hook (Network.step, after all routers stepped) --------

    def maybe_check(self, cycle):
        if cycle >= self._next_cycle:
            self.check(cycle)
            self._next_cycle = cycle + self.period

    def check(self, cycle):
        """One full sweep; returns the violations found (possibly [])."""
        found = []
        self._check_buffers(found)
        self._check_connections(found)
        self._check_credit_conservation(found)
        self._check_flit_conservation(found)
        self.checks_run += 1
        if found:
            self._handle(cycle, found)
        return found

    def _handle(self, cycle, found):
        if self.mode == "strict":
            raise InvariantViolation(cycle, found)
        tr = self.network.trace
        for message in found:
            if len(self.violations) < self.max_reports:
                self.violations.append((cycle, message))
            if tr.active:
                tr.emit("invariant_violation", cycle, message=message)

    # --- individual invariants -------------------------------------------

    def _check_buffers(self, found):
        depth = self.network.config.vc_buf_depth
        for r, router in enumerate(self.network.routers):
            for p in range(router.radix):
                for v, vcobj in enumerate(router.in_vcs[p]):
                    if len(vcobj.queue) > vcobj.capacity:
                        found.append(
                            f"buffer overflow: router {r} in_vc[{p}][{v}] "
                            f"holds {len(vcobj.queue)} > {vcobj.capacity}"
                        )
                for v, credit in enumerate(router.credits[p]):
                    if not 0 <= credit <= depth:
                        found.append(
                            f"credit out of range: router {r} "
                            f"credits[{p}][{v}] = {credit} (depth {depth})"
                        )
        for t, source in enumerate(self.network.sources):
            for v, credit in enumerate(source.credits):
                if not 0 <= credit <= depth:
                    found.append(
                        f"credit out of range: source {t} credits[{v}] "
                        f"= {credit} (depth {depth})"
                    )

    def _check_connections(self, found):
        for r, router in enumerate(self.network.routers):
            seen_inputs = {}
            for o, held in enumerate(router.conn_out):
                if held is None:
                    continue
                p, v = held
                if p in seen_inputs:
                    found.append(
                        f"input connected twice: router {r} input {p} holds "
                        f"outputs {seen_inputs[p]} and {o}"
                    )
                seen_inputs[p] = o
                if router.conn_in[p] != o:
                    found.append(
                        f"connection tables disagree: router {r} "
                        f"conn_out[{o}]=({p},{v}) but conn_in[{p}]="
                        f"{router.conn_in[p]}"
                    )
            for p, o in enumerate(router.conn_in):
                if o is None:
                    continue
                held = router.conn_out[o]
                if held is None or held[0] != p:
                    found.append(
                        f"connection tables disagree: router {r} "
                        f"conn_in[{p}]={o} but conn_out[{o}]={held}"
                    )

    def _check_credit_conservation(self, found):
        depth = self.network.config.vc_buf_depth
        num_vcs = self.network.config.num_vcs
        for label, credits, fwd, buffers, credit_chan in self._loops:
            in_flight = [0] * num_vcs
            for flit in fwd.items():
                in_flight[flit.vc] += 1
            returning = [0] * num_vcs
            for vc in credit_chan.items():
                returning[vc] += 1
            for v in range(num_vcs):
                total = credits[v] + in_flight[v] + returning[v]
                if buffers is not None:
                    total += len(buffers[v])
                if total != depth:
                    found.append(
                        f"credit leak: {label} vc {v} accounts for {total} "
                        f"slots, expected {depth} (credits {credits[v]}, "
                        f"in-flight {in_flight[v]}, buffered "
                        f"{len(buffers[v]) if buffers is not None else 0}, "
                        f"returning {returning[v]})"
                    )

    def _check_flit_conservation(self, found):
        net = self.network
        sent = sum(s.flits_sent for s in net.sources)
        consumed = sum(k.flits_consumed for k in net.sinks)
        dropped = net.faults.dropped_flits if net.faults is not None else 0
        in_flight = net.in_flight_flits() + sum(
            s.flit_channel.in_flight for s in net.sources
        )
        if sent != consumed + dropped + in_flight:
            found.append(
                f"flit conservation broken: injected {sent} != delivered "
                f"{consumed} + in-flight {in_flight} + dropped {dropped}"
            )

    # --- reporting --------------------------------------------------------

    def summary(self):
        return {
            "mode": self.mode,
            "period": self.period,
            "checks_run": self.checks_run,
            "violations": len(self.violations),
        }

    def publish_metrics(self, registry):
        registry.counter(
            "invariant_checks", help="Invariant sweeps executed"
        ).inc(self.checks_run)
        registry.counter(
            "invariant_violations",
            help="Invariant violations recorded (report mode)",
        ).inc(len(self.violations))
        return registry
