"""End-to-end reliable delivery over a faulty network.

A :class:`ReliableTransport` gives terminals transport-layer recovery
on top of the lossy data path fault injection creates: every packet
carries a per-flow (source, dest) sequence number, the destination
acknowledges complete, uncorrupted packets, and the source retransmits
a fresh copy after a timeout, with exponential backoff and a bounded
retry budget.

Modeling choices (documented, deliberately simple):

- Acks travel **out of band** with a fixed ``ack_delay`` instead of as
  network packets, so reliability does not perturb the traffic pattern
  under study; ``ack_delay`` only delays when the source learns about
  a delivery.
- A retransmission is a brand-new :class:`~repro.network.flit.Packet`
  (new pid, fresh statistics identity) carrying the same flow/sequence
  tag; duplicate deliveries are counted and suppressed at the
  transport level.
- The retry timer starts when the packet is offered to the source
  (``Network.inject``), so the timeout must cover source queueing plus
  network latency.
"""

import heapq
from collections import deque

from repro.network.flit import Packet


class ReliabilityTag:
    """Transport header: flow id, sequence number, attempt count."""

    __slots__ = ("flow", "seq", "attempt")

    def __init__(self, flow, seq, attempt=0):
        self.flow = flow
        self.seq = seq
        self.attempt = attempt

    def __repr__(self):
        return (f"ReliabilityTag(flow={self.flow}, seq={self.seq}, "
                f"attempt={self.attempt})")


class ReliableTransport:
    """Sequence numbers, acks, timeouts, and bounded retransmission."""

    def __init__(self, timeout=512, max_retries=4, backoff=2.0, ack_delay=8):
        if timeout < 1:
            raise ValueError("reliability timeout must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.ack_delay = ack_delay
        self.network = None
        self._seq = {}  # flow -> next sequence number
        self.pending = {}  # (flow, seq) -> (packet, attempt)
        self._deadlines = []  # heap of (deadline, flow, seq, attempt)
        self._acks = deque()  # (due_cycle, key) FIFO (constant ack delay)
        self.delivered_keys = set()
        # Counters.
        self.tracked = 0
        self.delivered = 0
        self.duplicates = 0
        self.retransmissions = 0
        self.failed = []  # (flow, seq) given up after max_retries

    def bind(self, network):
        self.network = network
        # Sinks report complete uncorrupted packets through the stats
        # listener API; that callback is our (out-of-band) ack source.
        network.stats.add_listener(self)
        return self

    # --- injection hook (Network.inject) ---------------------------------

    def on_inject(self, packet, cycle):
        tag = packet.rtag
        if tag is None:
            flow = (packet.src, packet.dest)
            seq = self._seq.get(flow, 0)
            self._seq[flow] = seq + 1
            tag = packet.rtag = ReliabilityTag(flow, seq)
            self.tracked += 1
        key = (tag.flow, tag.seq)
        if key in self.delivered_keys:
            return  # a late retransmission of an already-delivered packet
        deadline = cycle + int(self.timeout * self.backoff ** tag.attempt)
        self.pending[key] = (packet, tag.attempt)
        heapq.heappush(
            self._deadlines, (deadline, tag.flow, tag.seq, tag.attempt)
        )

    # --- delivery hook (StatsCollector listener) --------------------------

    def on_packet_ejected(self, packet, cycle):
        tag = packet.rtag
        if tag is None:
            return
        key = (tag.flow, tag.seq)
        if key in self.delivered_keys:
            self.duplicates += 1
            return
        self.delivered_keys.add(key)
        self.delivered += 1
        self._acks.append((cycle + self.ack_delay, key))

    # --- per-cycle hook (Network.step) ------------------------------------

    def step(self, cycle):
        acks = self._acks
        while acks and acks[0][0] <= cycle:
            _, key = acks.popleft()
            self.pending.pop(key, None)
        heap = self._deadlines
        while heap and heap[0][0] <= cycle:
            _, flow, seq, attempt = heapq.heappop(heap)
            key = (flow, seq)
            entry = self.pending.get(key)
            if entry is None or entry[1] != attempt:
                continue  # acked, or superseded by a newer attempt
            if key in self.delivered_keys:
                continue  # delivered; the ack is still in flight
            packet, _ = entry
            if attempt >= self.max_retries:
                del self.pending[key]
                self.failed.append(key)
                tr = self.network.trace
                if tr.active:
                    tr.emit(
                        "delivery_failed", cycle, pid=packet.pid,
                        src=packet.src, dest=packet.dest, seq=seq,
                        attempts=attempt + 1,
                    )
                continue
            clone = Packet(
                packet.src, packet.dest, packet.size, cycle,
                vc_class=packet.vc_class, priority=packet.priority,
            )
            clone.rtag = ReliabilityTag(flow, seq, attempt + 1)
            self.retransmissions += 1
            tr = self.network.trace
            if tr.active:
                tr.emit(
                    "retransmit", cycle, pid=clone.pid, src=packet.src,
                    dest=packet.dest, seq=seq, attempt=attempt + 1,
                )
            self.network.inject(clone)

    # --- reporting --------------------------------------------------------

    def idle(self):
        """True when no packet is awaiting delivery or retransmission."""
        return not self.pending

    def summary(self):
        return {
            "tracked": self.tracked,
            "delivered": self.delivered,
            "duplicates": self.duplicates,
            "retransmissions": self.retransmissions,
            "failed": len(self.failed),
            "pending": len(self.pending),
        }

    def publish_metrics(self, registry):
        registry.counter(
            "reliable_tracked", help="Packets tracked by the transport"
        ).inc(self.tracked)
        registry.counter(
            "reliable_delivered",
            help="Unique packets delivered end to end",
        ).inc(self.delivered)
        registry.counter(
            "retransmissions", help="Timeout-driven retransmissions"
        ).inc(self.retransmissions)
        registry.counter(
            "duplicate_deliveries",
            help="Deliveries suppressed as duplicates",
        ).inc(self.duplicates)
        registry.counter(
            "delivery_failures",
            help="Packets abandoned after the retry budget",
        ).inc(len(self.failed))
        return registry
