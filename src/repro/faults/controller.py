"""Fault injection against a live network.

A :class:`FaultController` interprets a
:class:`~repro.faults.plan.FaultPlan` cycle by cycle: it flips links
and routers dead (and transient links back alive) at their scheduled
cycles, decides per-flit drops/corruptions with the plan's seeded RNG,
and keeps the counters (``failed_links``, ``dropped_flits``, ...) the
metrics registry and ``repro faults`` report.

Fault model (see DESIGN.md):

- The **data path** of a dead link drops every flit; the **credit /
  control plane is reliable**, so every dropped flit still returns its
  buffer credit upstream. This is the standard simplification that
  lets the network degrade without leaking flow-control state.
- A dropped flit kills its whole packet (partial packets cannot be
  reassembled); the remains are purged wherever they are buffered,
  with credits returned, and held/chained switch connections carrying
  the packet are torn down (``Router._fault_prepass``).
- A corrupted flit travels on and is discarded at the sink with its
  packet, like a failed end-to-end CRC; end-to-end recovery is the
  :class:`~repro.faults.reliability.ReliableTransport`'s business.
- A dead router loses its buffered flits (credits returned), all its
  links go down, and its terminal stops injecting. Channels into a
  dead router are drained every cycle so in-flight flits are accounted
  as dropped, not leaked.
"""

import random


class RouterFaultView:
    """Per-router window onto the controller's fault state.

    Routers hold one of these (``router.faults``) whenever a controller
    is bound; it answers the two hot-path questions — "is this output
    dead?" and "does this arriving flit survive?" — with set lookups.
    """

    __slots__ = ("controller", "router_id", "dead_in", "dead_out")

    def __init__(self, controller, router_id):
        self.controller = controller
        self.router_id = router_id
        self.dead_in = set()  # input ports whose feeding link is down
        self.dead_out = set()  # output ports whose outgoing link is down

    def is_dead_out(self, port):
        return port in self.dead_out

    def kill(self, packet, cycle, reason):
        self.controller.kill_packet(packet, cycle, reason)

    def flit_purged(self, router, port, flit, cycle, reason="killed"):
        """Account a flit the router popped and discarded (credit sent
        by the router itself)."""
        self.controller.count_drop(router.router_id, port, flit, cycle, reason)

    def intercept(self, router, p, flit, cycle):
        """Receive-side fault filter; True if the flit was consumed.

        Dropped flits return their credit upstream here (reliable
        control plane), so credit conservation holds through any drop.
        """
        ctrl = self.controller
        packet = flit.packet
        if packet.killed:
            self._drop(router, p, flit, cycle, "killed")
            return True
        if p in self.dead_in:
            ctrl.kill_packet(packet, cycle, "link_down")
            self._drop(router, p, flit, cycle, "link_down")
            return True
        if ctrl.dead_routers:
            dest_router, _ = ctrl.network.topology.terminal_attachment(
                packet.dest
            )
            if dest_router in ctrl.dead_routers:
                # The destination can never eject; without this the
                # packet would detour around the dead router forever.
                ctrl.kill_packet(packet, cycle, "dest_dead")
                self._drop(router, p, flit, cycle, "dest_dead")
                return True
        fe = ctrl.flit_errors
        if fe is not None and fe.active(cycle):
            roll = ctrl.rng.random()
            if roll < fe.drop:
                ctrl.kill_packet(packet, cycle, "flit_drop")
                self._drop(router, p, flit, cycle, "flit_drop")
                return True
            if roll < fe.drop + fe.corrupt and not packet.corrupted:
                ctrl.corrupt_packet(router.router_id, p, flit, cycle)
        return False

    def _drop(self, router, p, flit, cycle, reason):
        up = router.credit_up_channels[p]
        if up is not None:
            up.send(flit.vc, cycle)
        self.controller.count_drop(router.router_id, p, flit, cycle, reason)


class FaultController:
    """Schedules and applies a fault plan; owns the fault counters."""

    def __init__(self, plan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.flit_errors = (
            plan.flit_errors
            if plan.flit_errors is not None and plan.flit_errors.enabled
            else None
        )
        self.network = None
        self.views = []
        #: Live set of dead (router, port) sides, shared with routing
        #: so DOR can detour around dead links.
        self.dead_ports = set()
        self.dead_routers = set()
        self._down_count = {}  # canonical link key -> active fault count
        self._events = []  # (cycle, seq, kind, fault), sorted
        self._next_event = 0
        # Counters (the ISSUE's metric set).
        self.failed_links = 0
        self.repaired_links = 0
        self.failed_routers = 0
        self.dropped_flits = 0
        self.corrupted_flits = 0
        self.killed_packets = 0
        self.detours = 0

    # --- binding ----------------------------------------------------------

    def bind(self, network):
        """Validate the plan against ``network`` and arm the schedule."""
        self.network = network
        self.plan.validate(network.topology)
        events = []
        for lf in self.plan.links:
            events.append((lf.cycle, len(events), "link_down", lf))
            if not lf.permanent:
                events.append(
                    (lf.cycle + lf.duration, len(events), "link_up", lf)
                )
        for rf in self.plan.routers:
            events.append((rf.cycle, len(events), "router_down", rf))
        self._events = sorted(events)
        self._next_event = 0
        self.views = [
            RouterFaultView(self, r.router_id) for r in network.routers
        ]
        for router, view in zip(network.routers, self.views):
            router.faults = view
        network.routing.attach_faults(self.dead_ports, on_detour=self._detour)
        return self

    def _detour(self, router, preferred, taken, packet):
        self.detours += 1
        tr = self.network.trace
        if tr.active:
            tr.emit(
                "detour", self.network.cycle, router=router,
                port=taken, dead_port=preferred, pid=packet.pid,
            )

    # --- per-cycle hook (Network.step, before arrivals) -------------------

    def begin_cycle(self, cycle):
        events = self._events
        while self._next_event < len(events) and events[self._next_event][0] <= cycle:
            _, _, kind, fault = events[self._next_event]
            self._next_event += 1
            if kind == "link_down":
                self._link_down(fault.router, fault.port, cycle,
                                permanent=fault.permanent, explicit=True)
            elif kind == "link_up":
                self._link_up(fault.router, fault.port, cycle)
            else:
                self._router_down(fault.router, cycle)
        if self.dead_routers:
            self._drain_dead_routers(cycle)

    # --- link lifecycle ---------------------------------------------------

    def _link_sides(self, router, port):
        """Both (router, port) sides of a link, canonically ordered."""
        link = self.network.topology.link(router, port)
        if link is None:  # terminal port: single-sided
            return ((router, port),)
        return tuple(sorted(((router, port), (link.dest_router, link.dest_port))))

    def _link_down(self, router, port, cycle, permanent, explicit):
        sides = self._link_sides(router, port)
        count = self._down_count.get(sides, 0)
        self._down_count[sides] = count + 1
        if explicit:
            self.failed_links += 1
        if count == 0:
            for r, p in sides:
                self.views[r].dead_in.add(p)
                self.views[r].dead_out.add(p)
                self.dead_ports.add((r, p))
            tr = self.network.trace
            if tr.active:
                tr.emit(
                    "link_failed", cycle, router=router, port=port,
                    permanent=permanent,
                )

    def _link_up(self, router, port, cycle):
        sides = self._link_sides(router, port)
        count = self._down_count.get(sides, 0) - 1
        self._down_count[sides] = count
        self.repaired_links += 1
        if count == 0:
            for r, p in sides:
                if r in self.dead_routers:
                    continue  # dead routers never come back
                self.views[r].dead_in.discard(p)
                self.views[r].dead_out.discard(p)
                self.dead_ports.discard((r, p))
            tr = self.network.trace
            if tr.active:
                tr.emit("link_repaired", cycle, router=router, port=port)

    # --- router death -----------------------------------------------------

    def _router_down(self, router_id, cycle):
        if router_id in self.dead_routers:
            return
        self.dead_routers.add(router_id)
        self.failed_routers += 1
        net = self.network
        router = net.routers[router_id]
        view = self.views[router_id]
        # Every wired port goes down, both sides, forever.
        for port in range(router.radix):
            if net.topology.link(router_id, port) is not None:
                self._link_down(router_id, port, cycle,
                                permanent=True, explicit=False)
            view.dead_in.add(port)
            view.dead_out.add(port)
            self.dead_ports.add((router_id, port))
        # Buffered flits are lost; their credits go back upstream so the
        # senders' flow-control state stays conserved.
        for p in range(router.radix):
            up = router.credit_up_channels[p]
            for v, vcobj in enumerate(router.in_vcs[p]):
                for flit in vcobj.queue:
                    self.kill_packet(flit.packet, cycle, "router_down")
                    if up is not None:
                        up.send(v, cycle)
                    self.count_drop(router_id, p, flit, cycle, "router_down")
                vcobj.queue.clear()
                vcobj.active_packet = None
                vcobj.active_out_port = None
                vcobj.active_out_vc = None
        router.conn_in = [None] * router.radix
        router.conn_out = [None] * router.radix
        # Stop simulating the router and silence its terminals.
        net.retire_router(router_id)
        tr = net.trace
        if tr.active:
            tr.emit("router_failed", cycle, router=router_id)

    def _drain_dead_routers(self, cycle):
        """Swallow flits still flowing into dead routers, with credits."""
        net = self.network
        for router_id in self.dead_routers:
            router = net.routers[router_id]
            for p in range(router.radix):
                chan = router.in_flit_channels[p]
                if chan is None:
                    continue
                for flit in chan.receive(cycle):
                    self.kill_packet(flit.packet, cycle, "router_down")
                    up = router.credit_up_channels[p]
                    if up is not None:
                        up.send(flit.vc, cycle)
                    self.count_drop(router_id, p, flit, cycle, "router_down")

    # --- accounting -------------------------------------------------------

    def kill_packet(self, packet, cycle, reason):
        if packet.killed:
            return
        packet.killed = True
        self.killed_packets += 1
        tr = self.network.trace
        if tr.active:
            tr.emit("packet_killed", cycle, pid=packet.pid, reason=reason)

    def corrupt_packet(self, router_id, port, flit, cycle):
        flit.packet.corrupted = True
        self.corrupted_flits += 1
        tr = self.network.trace
        if tr.active:
            tr.emit(
                "flit_corrupted", cycle, router=router_id, port=port,
                pid=flit.packet.pid, idx=flit.index,
            )

    def count_drop(self, router_id, port, flit, cycle, reason):
        self.dropped_flits += 1
        tr = self.network.trace
        if tr.active:
            tr.emit(
                "flit_dropped", cycle, router=router_id, port=port,
                pid=flit.packet.pid, idx=flit.index, reason=reason,
            )

    # --- reporting --------------------------------------------------------

    def summary(self):
        return {
            "failed_links": self.failed_links,
            "repaired_links": self.repaired_links,
            "failed_routers": self.failed_routers,
            "dropped_flits": self.dropped_flits,
            "corrupted_flits": self.corrupted_flits,
            "killed_packets": self.killed_packets,
            "detours": self.detours,
            "dead_links_now": len(self._active_links()),
            "dead_routers_now": len(self.dead_routers),
        }

    def _active_links(self):
        return [key for key, count in self._down_count.items() if count > 0]

    def publish_metrics(self, registry):
        registry.counter(
            "failed_links", help="Link faults activated"
        ).inc(self.failed_links)
        registry.counter(
            "repaired_links", help="Transient link faults repaired"
        ).inc(self.repaired_links)
        registry.counter(
            "failed_routers", help="Router faults activated"
        ).inc(self.failed_routers)
        registry.counter(
            "dropped_flits", help="Flits lost to faults (credits returned)"
        ).inc(self.dropped_flits)
        registry.counter(
            "corrupted_flits", help="Flits corrupted in flight"
        ).inc(self.corrupted_flits)
        registry.counter(
            "killed_packets", help="Packets killed by fault injection"
        ).inc(self.killed_packets)
        registry.counter(
            "detours", help="Routing decisions diverted around dead links"
        ).inc(self.detours)
        return registry
