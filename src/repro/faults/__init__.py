"""Fault injection, runtime invariants, and graceful degradation.

The resilience layer for the simulation core:

- :mod:`repro.faults.plan` — :class:`FaultPlan`: a deterministic,
  JSON-loadable schedule of link failures (permanent or transient),
  router failures, and per-flit transient errors (``--faults``);
- :mod:`repro.faults.controller` — :class:`FaultController`: applies a
  plan to a live network, kills packets hit by faults, returns their
  credits, and counts drops/corruptions/detours;
- :mod:`repro.faults.invariants` — :class:`InvariantChecker`: periodic
  credit-conservation, flit-conservation, buffer-bound, and
  connection-table sweeps in ``strict`` or ``report`` mode;
- :mod:`repro.faults.watchdog` — :class:`HangWatchdog`:
  deadlock/livelock detection with a diagnostic bundle (held
  connections, stalled fronts, sampler heatmap, recent trace events);
- :mod:`repro.faults.reliability` — :class:`ReliableTransport`:
  end-to-end sequence numbers, acks, and bounded exponential-backoff
  retransmission so applications survive a lossy network.

All of it is opt-in: a network without a controller/checker/watchdog
attached pays one ``is None`` branch per cycle per instrument.
"""

from repro.faults.controller import FaultController, RouterFaultView
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import FaultPlan, FlitErrors, LinkFault, RouterFault
from repro.faults.reliability import ReliabilityTag, ReliableTransport
from repro.faults.watchdog import HangWatchdog, WatchdogError

__all__ = [
    "FaultPlan",
    "LinkFault",
    "RouterFault",
    "FlitErrors",
    "FaultController",
    "RouterFaultView",
    "InvariantChecker",
    "InvariantViolation",
    "HangWatchdog",
    "WatchdogError",
    "ReliableTransport",
    "ReliabilityTag",
]
