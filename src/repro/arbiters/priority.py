"""Priority-class filtering for arbiters.

The paper's allocators "take into account priorities" (Section 3): a
request in a higher priority class always beats any request in a lower
class; fairness policies (round-robin pointers, matrix state) only break
ties within a class. ``highest_priority_subset`` implements the filter
and :class:`PriorityArbiter` composes it with any base arbiter.
"""

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.arbiters.base import Arbiter


def highest_priority_subset(priorities: Mapping[int, int]) -> Tuple[list, int]:
    """Return (indices in the highest priority class, that priority).

    ``priorities`` maps request index -> priority (higher wins). Raises
    :class:`ValueError` on an empty mapping.
    """
    if not priorities:
        raise ValueError("no requests")
    best = max(priorities.values())
    return [idx for idx, p in priorities.items() if p == best], best


class PriorityArbiter:
    """Wraps a base arbiter with strict priority classes.

    ``select`` takes a mapping of request index -> priority and
    arbitrates only among the highest class present. State updates are
    forwarded to the base arbiter.
    """

    def __init__(self, base: Arbiter) -> None:
        self.base = base
        self.size = base.size

    def select(self, priorities: Mapping[int, int]) -> Optional[int]:
        if not priorities:
            return None
        subset, _ = highest_priority_subset(priorities)
        return self.base.select(subset)

    def update(self, granted: int) -> None:
        self.base.update(granted)
