"""Hardware-style arbiters used by the allocators and routers.

An arbiter selects at most one winner among a set of requesters. The
round-robin arbiter implements iSLIP pointer semantics (the pointer is
only advanced by an explicit :meth:`~repro.arbiters.round_robin.RoundRobinArbiter.update`
call so callers can implement "update only on accepted grants"). The
matrix arbiter implements a least-recently-served policy. The priority
filter restricts arbitration to the highest priority class present.
"""

from repro.arbiters.base import Arbiter
from repro.arbiters.round_robin import RoundRobinArbiter
from repro.arbiters.matrix import MatrixArbiter
from repro.arbiters.priority import highest_priority_subset, PriorityArbiter

__all__ = [
    "Arbiter",
    "RoundRobinArbiter",
    "MatrixArbiter",
    "PriorityArbiter",
    "highest_priority_subset",
]
