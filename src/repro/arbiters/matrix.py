"""Matrix (least-recently-served) arbiter."""

from typing import Iterable, Optional

from repro.arbiters.base import Arbiter


class MatrixArbiter(Arbiter):
    """Least-recently-served arbiter.

    Maintains a priority matrix ``w`` where ``w[i][j]`` means requester
    ``i`` beats requester ``j``. The winner is the requester that beats
    every other active requester. On :meth:`update` the winner yields
    priority to everyone else, which yields an exact least-recently-served
    order (Dally & Towles, 2003, section 18.5).
    """

    def __init__(self, size: int) -> None:
        super().__init__(size)
        # Initially, lower indices beat higher indices.
        self._beats = [[i < j for j in range(size)] for i in range(size)]

    def select(self, requests: Iterable[int]) -> Optional[int]:
        reqs = self._validate(requests)
        if not reqs:
            return None
        req_set = set(reqs)
        for i in req_set:
            if all(self._beats[i][j] for j in req_set if j != i):
                return i
        # The beats relation restricted to any subset always has a unique
        # maximal element, so this is unreachable.
        raise AssertionError("matrix arbiter found no winner")

    def update(self, granted: int) -> None:
        if not 0 <= granted < self.size:
            raise ValueError(f"granted index {granted} out of range [0, {self.size})")
        for j in range(self.size):
            if j != granted:
                self._beats[granted][j] = False
                self._beats[j][granted] = True

    def state_dict(self) -> dict:
        return {"beats": [list(row) for row in self._beats]}

    def load_state(self, state: dict) -> None:
        self._beats = [[bool(cell) for cell in row] for row in state["beats"]]
