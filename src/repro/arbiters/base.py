"""Common arbiter interface."""

from abc import ABC, abstractmethod
from typing import Iterable, Optional


class Arbiter(ABC):
    """Selects at most one winner among integer request indices.

    The request space is the half-open range ``[0, size)``. Arbiters are
    stateful: the selection policy may depend on the history of previous
    grants. State updates are explicit (:meth:`update`) so that callers
    can implement policies such as iSLIP's "update pointers only on
    accepted grants".
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"arbiter size must be positive, got {size}")
        self.size = size

    @abstractmethod
    def select(self, requests: Iterable[int]) -> Optional[int]:
        """Return the winning request index, or ``None`` if no requests.

        ``requests`` is an iterable of requesting indices; indices outside
        ``[0, size)`` raise :class:`ValueError`. The arbiter state is NOT
        modified; call :meth:`update` with the winner to commit.
        """

    @abstractmethod
    def update(self, granted: int) -> None:
        """Commit a grant, updating the arbitration state."""

    def _validate(self, requests: Iterable[int]) -> list:
        reqs = list(requests)
        for r in reqs:
            if not 0 <= r < self.size:
                raise ValueError(f"request index {r} out of range [0, {self.size})")
        return reqs
