"""Round-robin arbiter with iSLIP pointer semantics."""

from typing import Iterable, Optional

from repro.arbiters.base import Arbiter


class RoundRobinArbiter(Arbiter):
    """Round-robin arbiter.

    The pointer designates the highest-priority request index. On
    :meth:`update`, the pointer moves to one beyond the granted index,
    which is the iSLIP priority-update rule (McKeown, 1999): the granted
    requester becomes the lowest priority for the next allocation.
    """

    def __init__(self, size: int, start: int = 0) -> None:
        super().__init__(size)
        if not 0 <= start < size:
            raise ValueError(f"start pointer {start} out of range [0, {size})")
        self.pointer = start

    def select(self, requests: Iterable[int]) -> Optional[int]:
        reqs = self._validate(requests)
        if not reqs:
            return None
        req_set = set(reqs)
        for offset in range(self.size):
            idx = (self.pointer + offset) % self.size
            if idx in req_set:
                return idx
        return None

    def update(self, granted: int) -> None:
        if not 0 <= granted < self.size:
            raise ValueError(f"granted index {granted} out of range [0, {self.size})")
        self.pointer = (granted + 1) % self.size

    def reset(self) -> None:
        """Return the pointer to index 0."""
        self.pointer = 0

    def state_dict(self) -> dict:
        return {"pointer": self.pointer}

    def load_state(self, state: dict) -> None:
        self.pointer = state["pointer"]
