"""Wavefront allocator (Tamir & Chi, 1993).

The wavefront allocator sweeps anti-diagonal "waves" across the request
matrix starting from a rotating priority diagonal. All cells on one
anti-diagonal touch distinct rows and columns, so every requesting cell
whose row and column are still free is granted simultaneously. After n
waves every request either got its row/column or lost it to someone, so
the matching is maximal.

Fairness: with a fixed row/column order, the relative diagonal distance
between two conflicting requests is invariant under diagonal rotation,
giving persistent pairwise bias (e.g. 4:1 for adjacent diagonals in a
5-port allocator) that starves multi-hop flows at network level. Tamir
& Chi's *symmetric* crossbar arbiters exist precisely to avoid such
bias, so we follow their intent by additionally permuting the row and
column index mappings pseudo-randomly each allocation (deterministic
per instance), which equalizes pairwise win rates while preserving
maximality.

Priority classes are handled the way a priority-augmented hardware
wavefront does: a first sweep considers only the highest priority class
present, and subsequent sweeps fill remaining rows/columns with lower
classes. This guarantees strict priority while keeping the matching
maximal over the full request set.
"""

import itertools
import random
from typing import Dict, Optional

from repro.allocators.base import Allocator, RequestMatrix
from repro.core.serialization import rng_state_to_json, set_rng_state

_instance_counter = itertools.count()


class WavefrontAllocator(Allocator):
    """Maximal-matching wavefront allocator with symmetric fairness.

    ``seed`` makes the instance fully deterministic from its arguments
    (the router derives it from the config seed and router id); without
    one, a process-global instance counter staggers diagonals and RNG
    streams, which varies with construction history and is therefore
    not reproducible across processes.
    """

    def __init__(self, num_inputs: int, num_outputs: int,
                 seed: Optional[int] = None) -> None:
        super().__init__(num_inputs, num_outputs)
        self._n = max(num_inputs, num_outputs)
        if seed is None:
            self._priority_diagonal = next(_instance_counter) % self._n
            self._rng = random.Random(0xFA1A + next(_instance_counter))
        else:
            self._priority_diagonal = seed % self._n
            self._rng = random.Random(0xFA1A ^ (seed * 0x9E3779B1))
        self._row_perm = list(range(self._n))
        self._col_perm = list(range(self._n))

    def state_dict(self):
        return {
            "diagonal": self._priority_diagonal,
            "rng": rng_state_to_json(self._rng),
            "row_perm": list(self._row_perm),
            "col_perm": list(self._col_perm),
        }

    def load_state(self, state):
        self._priority_diagonal = state["diagonal"]
        set_rng_state(self._rng, state["rng"])
        self._row_perm = list(state["row_perm"])
        self._col_perm = list(state["col_perm"])

    def allocate(self, requests: RequestMatrix) -> Dict[int, int]:
        self._validate(requests)
        grants: Dict[int, int] = {}
        if requests:
            self._rng.shuffle(self._row_perm)
            self._rng.shuffle(self._col_perm)
            matched_outputs = set()
            classes = sorted({p for p in requests.values()}, reverse=True)
            for prio in classes:
                self._sweep(
                    {pair for pair, p in requests.items() if p == prio},
                    grants,
                    matched_outputs,
                )
        # The priority diagonal also rotates every cycle, as in the
        # hardware implementation.
        self._priority_diagonal = (self._priority_diagonal + 1) % self._n
        return grants

    def _sweep(self, pairs, grants, matched_outputs) -> None:
        n = self._n
        row, col = self._row_perm, self._col_perm
        for wave in range(n):
            diag = (self._priority_diagonal + wave) % n
            for vi in range(n):
                i = row[vi]
                if i >= self.num_inputs:
                    continue
                o = col[(diag - vi) % n]
                if o >= self.num_outputs:
                    continue
                if i in grants or o in matched_outputs:
                    continue
                if (i, o) in pairs:
                    grants[i] = o
                    matched_outputs.add(o)
