"""Input-first separable allocation with iSLIP round-robin arbiters.

This is the paper's baseline switch allocator (Section 3): "iSLIP
separable allocators use round-robin arbiters and update the priorities
of each arbiter when it generates a winning grant. ... All separable
allocators in our study perform input arbitration before output
arbitration."

With input-first allocation, each input arbiter first selects one
request per input (among the outputs that input is requesting), then
each output arbiter selects one surviving request per output. Multiple
iterations repeat the process among still-unmatched ports; following
McKeown's iSLIP, arbiter pointers are only updated for grants produced
in the *first* iteration, which preserves the desynchronization property
that gives iSLIP its 100%-throughput guarantee under uniform traffic.
"""

from collections import defaultdict
from typing import Dict

from repro.allocators.base import Allocator, RequestMatrix
from repro.arbiters import RoundRobinArbiter


class SeparableInputFirstAllocator(Allocator):
    """iSLIP-style separable allocator with ``iterations`` passes."""

    def __init__(self, num_inputs: int, num_outputs: int, iterations: int = 1) -> None:
        super().__init__(num_inputs, num_outputs)
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.iterations = iterations
        self._input_arbiters = [RoundRobinArbiter(num_outputs) for _ in range(num_inputs)]
        self._output_arbiters = [RoundRobinArbiter(num_inputs) for _ in range(num_outputs)]

    def allocate(self, requests: RequestMatrix) -> Dict[int, int]:
        self._validate(requests)
        grants: Dict[int, int] = {}
        matched_outputs = set()

        # Group requests by input for the input-arbitration stage.
        by_input: Dict[int, Dict[int, int]] = defaultdict(dict)
        for (i, o), prio in requests.items():
            existing = by_input[i].get(o)
            if existing is None or prio > existing:
                by_input[i][o] = prio

        for iteration in range(self.iterations):
            survivors = self._input_stage(by_input, grants, matched_outputs)
            new_grants = self._output_stage(survivors, update=iteration == 0)
            for i, o in new_grants.items():
                grants[i] = o
                matched_outputs.add(o)
            if not new_grants:
                break
        return grants

    def state_dict(self):
        return {
            "input_arbiters": [a.state_dict() for a in self._input_arbiters],
            "output_arbiters": [a.state_dict() for a in self._output_arbiters],
        }

    def load_state(self, state):
        for arb, s in zip(self._input_arbiters, state["input_arbiters"]):
            arb.load_state(s)
        for arb, s in zip(self._output_arbiters, state["output_arbiters"]):
            arb.load_state(s)

    def _input_stage(self, by_input, grants, matched_outputs):
        """Each unmatched input selects one request to an unmatched output.

        Returns ``{output: {input: priority}}`` of surviving requests.
        """
        survivors: Dict[int, Dict[int, int]] = defaultdict(dict)
        for i, outputs in by_input.items():
            if i in grants:
                continue
            candidates = {o: p for o, p in outputs.items() if o not in matched_outputs}
            if not candidates:
                continue
            best = max(candidates.values())
            top = [o for o, p in candidates.items() if p == best]
            choice = self._input_arbiters[i].select(top)
            survivors[choice][i] = best
        return survivors

    def _output_stage(self, survivors, update: bool) -> Dict[int, int]:
        """Each output selects one surviving input; optionally update pointers."""
        new_grants: Dict[int, int] = {}
        for o, inputs in survivors.items():
            best = max(inputs.values())
            top = [i for i, p in inputs.items() if p == best]
            winner = self._output_arbiters[o].select(top)
            new_grants[winner] = o
            if update:
                # iSLIP rule: a winning grant rotates both the output
                # arbiter's pointer and the input arbiter's pointer.
                self._output_arbiters[o].update(winner)
                self._input_arbiters[winner].update(o)
        return new_grants


def islip(num_inputs: int, num_outputs: int, iterations: int = 1) -> SeparableInputFirstAllocator:
    """Convenience constructor mirroring the paper's iSLIP-k naming."""
    return SeparableInputFirstAllocator(num_inputs, num_outputs, iterations=iterations)
