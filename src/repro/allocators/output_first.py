"""Output-first separable allocation.

The mirror image of the input-first allocator the paper uses: each
output arbiter first selects one request per output among the inputs
requesting it, then each input arbiter picks one surviving grant per
input. Becker & Dally (SC 2009) evaluate both orders; matching quality
is statistically equivalent under symmetric traffic, but the two differ
on skewed request matrices, so the ablation bench compares them.
"""

from collections import defaultdict
from typing import Dict

from repro.allocators.base import Allocator, RequestMatrix
from repro.arbiters import RoundRobinArbiter


class SeparableOutputFirstAllocator(Allocator):
    """iSLIP-style separable allocator, output arbitration first."""

    def __init__(self, num_inputs: int, num_outputs: int, iterations: int = 1) -> None:
        super().__init__(num_inputs, num_outputs)
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.iterations = iterations
        self._input_arbiters = [RoundRobinArbiter(num_outputs) for _ in range(num_inputs)]
        self._output_arbiters = [RoundRobinArbiter(num_inputs) for _ in range(num_outputs)]

    def allocate(self, requests: RequestMatrix) -> Dict[int, int]:
        self._validate(requests)
        grants: Dict[int, int] = {}
        matched_outputs = set()

        by_output: Dict[int, Dict[int, int]] = defaultdict(dict)
        for (i, o), prio in requests.items():
            existing = by_output[o].get(i)
            if existing is None or prio > existing:
                by_output[o][i] = prio

        for iteration in range(self.iterations):
            survivors = self._output_stage(by_output, grants, matched_outputs)
            new_grants = self._input_stage(survivors, update=iteration == 0)
            for i, o in new_grants.items():
                grants[i] = o
                matched_outputs.add(o)
            if not new_grants:
                break
        return grants

    def state_dict(self):
        return {
            "input_arbiters": [a.state_dict() for a in self._input_arbiters],
            "output_arbiters": [a.state_dict() for a in self._output_arbiters],
        }

    def load_state(self, state):
        for arb, s in zip(self._input_arbiters, state["input_arbiters"]):
            arb.load_state(s)
        for arb, s in zip(self._output_arbiters, state["output_arbiters"]):
            arb.load_state(s)

    def _output_stage(self, by_output, grants, matched_outputs):
        """Each unmatched output grants one unmatched input.

        Returns ``{input: {output: priority}}`` of surviving grants.
        """
        survivors: Dict[int, Dict[int, int]] = defaultdict(dict)
        for o, inputs in by_output.items():
            if o in matched_outputs:
                continue
            candidates = {i: p for i, p in inputs.items() if i not in grants}
            if not candidates:
                continue
            best = max(candidates.values())
            top = [i for i, p in candidates.items() if p == best]
            choice = self._output_arbiters[o].select(top)
            survivors[choice][o] = best
        return survivors

    def _input_stage(self, survivors, update: bool) -> Dict[int, int]:
        """Each input accepts one of the outputs that granted it."""
        new_grants: Dict[int, int] = {}
        for i, outputs in survivors.items():
            best = max(outputs.values())
            top = [o for o, p in outputs.items() if p == best]
            winner = self._input_arbiters[i].select(top)
            new_grants[i] = winner
            if update:
                self._input_arbiters[i].update(winner)
                self._output_arbiters[winner].update(i)
        return new_grants
