"""Maximum-matching allocator via augmenting paths (Ford-Fulkerson).

The paper's most expensive comparison point: "Augmenting paths
allocators generate maximum matchings but are too costly for
single-cycle implementations. They locate all paths from unmatched
inputs to unmatched outputs in the directed bipartite allocation graph."
As the paper notes, this allocator "optimizes throughput only locally
and does not take into account fairness" — inputs can be passed over
indefinitely if matching them would prevent a maximum matching. We
rotate the order in which unmatched inputs start their searches so ties
between equally-sized matchings do not permanently favor low indices,
but no fairness is guaranteed (faithful to the paper's characterization).

Priority classes are strict: a maximum matching is first built over the
highest class, then augmented with lower classes. Augmenting never
unmatches a matched vertex, so higher-class grants are preserved.
"""

from collections import defaultdict
from typing import Dict

from repro.allocators.base import Allocator, RequestMatrix


class AugmentingPathsAllocator(Allocator):
    """Maximum-cardinality bipartite matching allocator."""

    def __init__(self, num_inputs: int, num_outputs: int) -> None:
        super().__init__(num_inputs, num_outputs)
        self._rotation = 0

    def state_dict(self):
        return {"rotation": self._rotation}

    def load_state(self, state):
        self._rotation = state["rotation"]

    def allocate(self, requests: RequestMatrix) -> Dict[int, int]:
        self._validate(requests)
        match_of_output: Dict[int, int] = {}  # output -> input
        match_of_input: Dict[int, int] = {}  # input -> output

        classes = sorted({p for p in requests.values()}, reverse=True)
        adjacency: Dict[int, list] = defaultdict(list)
        frozen: set = set()
        for prio in classes:
            for (i, o), p in requests.items():
                if p == prio:
                    adjacency[i].append(o)
            order = self._input_order(adjacency)
            for i in order:
                if i not in match_of_input:
                    self._augment(
                        i, adjacency, match_of_input, match_of_output, set(), frozen
                    )
            # Matches made in a higher class may not be rerouted by
            # augmenting paths of a lower class: strict priority.
            frozen.update(match_of_input)
        self._rotation += 1
        return dict(match_of_input)

    def _input_order(self, adjacency) -> list:
        inputs = sorted(adjacency)
        if not inputs:
            return inputs
        k = self._rotation % len(inputs)
        return inputs[k:] + inputs[:k]

    def _augment(
        self, i, adjacency, match_of_input, match_of_output, visited, frozen
    ) -> bool:
        """DFS for an augmenting path from unmatched input ``i``."""
        for o in adjacency[i]:
            if o in visited:
                continue
            visited.add(o)
            holder = match_of_output.get(o)
            if holder is not None and holder in frozen:
                continue
            if holder is None or self._augment(
                holder, adjacency, match_of_input, match_of_output, visited, frozen
            ):
                match_of_output[o] = i
                match_of_input[i] = o
                return True
        return False
