"""PIM: parallel iterative matching (Anderson et al., 1993).

The randomized ancestor of iSLIP: each iteration, every unmatched
output grants a *uniformly random* requesting input, and every input
accepts a uniformly random grant. Randomization avoids the pointer
synchronization that costs a single-iteration round-robin allocator
matching quality, at the price of needing hardware random numbers and
giving no fairness guarantee. Included as an ablation comparison point
for the separable allocators; PIM converges to a maximal matching in
O(log N) expected iterations.
"""

import itertools
import random
from collections import defaultdict
from typing import Dict

from repro.allocators.base import Allocator, RequestMatrix
from repro.core.serialization import rng_state_to_json, set_rng_state

_instance_counter = itertools.count()


class PIMAllocator(Allocator):
    """Randomized separable (output-first) allocator."""

    def __init__(self, num_inputs: int, num_outputs: int, iterations: int = 1,
                 seed: int = None) -> None:
        super().__init__(num_inputs, num_outputs)
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.iterations = iterations
        if seed is None:
            # Process-global stagger: not reproducible across processes;
            # the router passes an explicit seed for determinism.
            seed = 0x9146 + next(_instance_counter)
        self._rng = random.Random(seed)

    def state_dict(self):
        return {"rng": rng_state_to_json(self._rng)}

    def load_state(self, state):
        set_rng_state(self._rng, state["rng"])

    def allocate(self, requests: RequestMatrix) -> Dict[int, int]:
        self._validate(requests)
        grants: Dict[int, int] = {}
        matched_outputs = set()

        by_output: Dict[int, Dict[int, int]] = defaultdict(dict)
        for (i, o), prio in requests.items():
            existing = by_output[o].get(i)
            if existing is None or prio > existing:
                by_output[o][i] = prio

        for _ in range(self.iterations):
            offers: Dict[int, Dict[int, int]] = defaultdict(dict)
            for o, inputs in by_output.items():
                if o in matched_outputs:
                    continue
                candidates = {i: p for i, p in inputs.items() if i not in grants}
                if not candidates:
                    continue
                best = max(candidates.values())
                top = [i for i, p in candidates.items() if p == best]
                choice = self._rng.choice(top)
                offers[choice][o] = best
            if not offers:
                break
            for i, outputs in offers.items():
                best = max(outputs.values())
                top = [o for o, p in outputs.items() if p == best]
                o = self._rng.choice(top)
                grants[i] = o
                matched_outputs.add(o)
        return grants
