"""Switch/VC allocators.

All allocators operate on an OR-reduced P_in x P_out request matrix
(Section 4.9 of the paper: "requests for the PC allocator are OR-reduced
to a PxP set of requests", matching the combined switch allocator of
Kumar et al.). A request matrix maps ``(input_port, output_port)`` to a
priority (higher wins); an allocation is a conflict-free assignment
``input_port -> output_port``.

Available allocators:

- :class:`~repro.allocators.separable.SeparableInputFirstAllocator` —
  input-first separable allocation with round-robin (iSLIP) arbiters and
  a configurable iteration count (iSLIP-1, iSLIP-2, ...).
- :class:`~repro.allocators.wavefront.WavefrontAllocator` — maximal
  matchings via the Tamir & Chi wavefront scheme with a rotating
  priority diagonal.
- :class:`~repro.allocators.augmenting.AugmentingPathsAllocator` —
  maximum matchings via Ford-Fulkerson augmenting paths.
"""

from repro.allocators.base import Allocator, RequestMatrix, is_conflict_free
from repro.allocators.separable import SeparableInputFirstAllocator, islip
from repro.allocators.output_first import SeparableOutputFirstAllocator
from repro.allocators.pim import PIMAllocator
from repro.allocators.wavefront import WavefrontAllocator
from repro.allocators.augmenting import AugmentingPathsAllocator

__all__ = [
    "Allocator",
    "RequestMatrix",
    "is_conflict_free",
    "SeparableInputFirstAllocator",
    "SeparableOutputFirstAllocator",
    "PIMAllocator",
    "islip",
    "WavefrontAllocator",
    "AugmentingPathsAllocator",
]


def make_allocator(kind: str, num_inputs: int, num_outputs: int,
                   seed: int = None) -> Allocator:
    """Construct an allocator by name.

    Recognized kinds: ``islip1``/``islip2``/... (input-first separable
    round-robin with k iterations), ``oslip1``/``oslip2``/...
    (output-first), ``pim1``/``pim2``/... (randomized PIM),
    ``wavefront``, ``augmenting``. Used by router/network configuration.

    ``seed`` pins the randomized allocators (PIM's grant RNG, the
    wavefront's starting diagonal and permutation RNG) so instances are
    reproducible across processes; without it they fall back to a
    process-global instance counter, which depends on construction
    history. Deterministic allocators ignore it.
    """
    kind = kind.lower()
    if kind.startswith("islip"):
        iterations = int(kind[len("islip"):] or "1")
        return SeparableInputFirstAllocator(num_inputs, num_outputs, iterations=iterations)
    if kind.startswith("oslip"):
        iterations = int(kind[len("oslip"):] or "1")
        return SeparableOutputFirstAllocator(num_inputs, num_outputs, iterations=iterations)
    if kind.startswith("pim"):
        iterations = int(kind[len("pim"):] or "1")
        return PIMAllocator(num_inputs, num_outputs, iterations=iterations, seed=seed)
    if kind == "wavefront":
        return WavefrontAllocator(num_inputs, num_outputs, seed=seed)
    if kind == "augmenting":
        return AugmentingPathsAllocator(num_inputs, num_outputs)
    raise ValueError(f"unknown allocator kind: {kind!r}")
