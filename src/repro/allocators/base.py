"""Allocator interface and shared helpers."""

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Tuple

# (input_port, output_port) -> priority; higher priority wins.
RequestMatrix = Mapping[Tuple[int, int], int]


class Allocator(ABC):
    """Computes a conflict-free input->output assignment each cycle.

    Allocators are stateful (round-robin pointers, wavefront priority
    diagonal) and are meant to be called once per simulated cycle.
    """

    def __init__(self, num_inputs: int, num_outputs: int) -> None:
        if num_inputs <= 0 or num_outputs <= 0:
            raise ValueError("allocator dimensions must be positive")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs

    @abstractmethod
    def allocate(self, requests: RequestMatrix) -> Dict[int, int]:
        """Return grants as ``{input_port: output_port}``.

        The grant set is conflict-free: no input or output appears twice.
        Requests with higher priority always beat lower-priority requests
        at any arbitration point they share.
        """

    def state_dict(self) -> dict:
        """Serializable allocation state; stateless subclasses return {}."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""

    def _validate(self, requests: RequestMatrix) -> None:
        for (i, o) in requests:
            if not 0 <= i < self.num_inputs:
                raise ValueError(f"input port {i} out of range [0, {self.num_inputs})")
            if not 0 <= o < self.num_outputs:
                raise ValueError(f"output port {o} out of range [0, {self.num_outputs})")


def is_conflict_free(grants: Mapping[int, int]) -> bool:
    """True if no output port is granted to two inputs.

    Inputs are dict keys and therefore unique by construction.
    """
    outputs = list(grants.values())
    return len(outputs) == len(set(outputs))
