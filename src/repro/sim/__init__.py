"""Simulation harness: runs, sweeps and saturation search."""

from repro.sim.runner import SimulationRun, resume_simulation, run_simulation
from repro.sim.sweep import rate_sweep, find_saturation, average_results
from repro.sim.parallel import (
    MatrixResults,
    PointError,
    SweepResults,
    parallel_matrix,
    parallel_sweep,
)

__all__ = [
    "SimulationRun",
    "run_simulation",
    "resume_simulation",
    "rate_sweep",
    "find_saturation",
    "average_results",
    "parallel_sweep",
    "parallel_matrix",
    "SweepResults",
    "MatrixResults",
    "PointError",
]
