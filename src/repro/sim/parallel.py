"""Multiprocess parameter sweeps.

Simulations are independent, CPU-bound, pure-Python — ideal for a
process pool. Work items carry a NetworkConfig (picklable dataclass)
plus run_simulation keyword arguments; each worker builds its own
Network so no simulator state crosses process boundaries.

Sweeps are fault-tolerant at point granularity: every point gets its
own future with an optional ``timeout``, and a point that crashes or
times out is retried (``retries`` attempts, default one) before being
recorded in the result's ``errors`` list. A bad point costs that point,
not the sweep — the caller still receives every result that succeeded.
Retries wait out a deterministic jittered exponential backoff (seeded
from the point identity; see :mod:`repro.serve.backoff`) and never
overlap the attempt they replace: after a timeout or a hard worker
death, the pool is recycled with every worker process confirmed dead
before the retry is submitted.

Sweeps are also crash-tolerant at *sweep* granularity: pass
``journal_dir`` and every completed point is appended to an
append-only ``journal.jsonl`` (flushed and fsynced per point). If the
sweep process itself dies — OOM killer, SIGKILL, power loss — rerunning
with ``resume=True`` replays finished points from the journal and only
simulates the missing ones. ``watchdog_window`` arms a fresh
:class:`~repro.faults.watchdog.HangWatchdog` inside each worker so a
deadlocked point fails fast instead of eating its timeout.
"""

import copy
import dataclasses
import json
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.telemetry import (
    RunTelemetry,
    init_telemetry_dir,
    point_heartbeat_path,
)
from repro.serve.backoff import DEFAULT_RETRY_POLICY
from repro.sim.runner import run_simulation
from repro.stats.summary import SimResult


@dataclass
class SweepPoint:
    """One (configuration, rate) simulation request."""

    config: Any  # NetworkConfig
    rate: float
    run_kwargs: Dict[str, Any]
    label: str = ""
    #: When set, each worker profiles its run with this epoch length
    #: and the resulting SimResult carries a ``timing`` summary, so
    #: sweeps double as cycles/sec regression probes.
    profile_epoch: Optional[int] = None
    #: When set, each worker arms a strict HangWatchdog with this
    #: window, so a deadlocked point raises instead of hanging.
    watchdog_window: Optional[int] = None
    #: When set, the worker writes heartbeat records here
    #: (obs.telemetry) so ``repro watch`` can render live progress.
    telemetry_path: Optional[str] = None
    heartbeat_every: int = 1000


@dataclass
class PointError:
    """Why one sweep point produced no result, after all retries."""

    label: str
    rate: float
    error: str
    attempts: int


@dataclass
class PointTiming:
    """Host-side cost of one completed sweep point.

    ``wall_time`` is the worker-measured seconds for the whole
    ``run_simulation`` call; ``worker`` is the worker process id (the
    parent's pid for inline runs). Points replayed from a pre-timing
    journal carry ``None`` for both. ``attempts`` counts executions
    including the successful one, and ``retry_delays`` the backoff
    seconds slept before each retry (empty for first-try successes) —
    deterministic per point, so a resumed sweep reports the same
    timeline.
    """

    label: str
    rate: float
    wall_time: Optional[float] = None
    worker: Optional[int] = None
    attempts: int = 1
    retry_delays: List[float] = field(default_factory=list)


def _timing_rows(timings):
    return [dataclasses.asdict(t) for t in timings]


class SweepResults(list):
    """``[(rate, SimResult)]`` plus per-point failures in ``errors``.

    A plain list to existing callers; ``errors`` holds a
    :class:`PointError` for each point that failed every attempt, and
    ``timings`` a :class:`PointTiming` (wall time + worker id) for each
    successful point, in result order.
    """

    def __init__(self, items=(), errors=(), timings=()):
        super().__init__(items)
        self.errors = list(errors)
        self.timings = list(timings)

    @property
    def complete(self):
        return not self.errors

    def total_wall_time(self):
        """Summed per-point worker seconds (None entries excluded)."""
        return sum(t.wall_time for t in self.timings
                   if t.wall_time is not None)

    def to_dict(self):
        """JSON-serializable dict; inverse is :meth:`from_dict`."""
        return {
            "results": [
                {"rate": rate, "result": result.to_dict()}
                for rate, result in self
            ],
            "errors": [dataclasses.asdict(e) for e in self.errors],
            "timings": _timing_rows(self.timings),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            (
                (item["rate"], SimResult.from_dict(item["result"]))
                for item in data["results"]
            ),
            (PointError(**e) for e in data["errors"]),
            (PointTiming(**t) for t in data.get("timings", [])),
        )


class MatrixResults(dict):
    """``{label: [(rate, SimResult)]}`` plus failures in ``errors``.

    ``timings`` holds one :class:`PointTiming` per successful point
    across all labels, in completion order.
    """

    def __init__(self, items=(), errors=(), timings=()):
        super().__init__(items)
        self.errors = list(errors)
        self.timings = list(timings)

    @property
    def complete(self):
        return not self.errors

    def total_wall_time(self):
        """Summed per-point worker seconds (None entries excluded)."""
        return sum(t.wall_time for t in self.timings
                   if t.wall_time is not None)

    def to_dict(self):
        """JSON-serializable dict; inverse is :meth:`from_dict`."""
        return {
            "series": {
                label: [
                    {"rate": rate, "result": result.to_dict()}
                    for rate, result in series
                ]
                for label, series in self.items()
            },
            "errors": [dataclasses.asdict(e) for e in self.errors],
            "timings": _timing_rows(self.timings),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            {
                label: [
                    (item["rate"], SimResult.from_dict(item["result"]))
                    for item in series
                ]
                for label, series in data["series"].items()
            },
            (PointError(**e) for e in data["errors"]),
            (PointTiming(**t) for t in data.get("timings", [])),
        )


# ---------------------------------------------------------------------------
# completion journal


class SweepJournal:
    """Append-only JSONL record of completed sweep points.

    One line per finished point: ``{"key", "label", "rate", "result"}``.
    Appends are flushed and fsynced so a completed point survives the
    sweep process dying the very next instant. A torn final line (crash
    mid-append) is detected by its JSON parse failure and discarded
    along with anything after it — the corresponding points simply
    re-run.
    """

    FILENAME = "journal.jsonl"

    def __init__(self, directory):
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, self.FILENAME)

    def completed(self):
        """``{key: journal entry}`` for every intact line."""
        done = {}
        if not os.path.exists(self.path):
            return done
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from a crash mid-append
                if isinstance(entry, dict) and "key" in entry:
                    done[entry["key"]] = entry
        return done

    def truncate(self):
        """Start a fresh journal (non-resume sweeps drop stale entries)."""
        with open(self.path, "w"):
            pass

    def record(self, key, label, rate, result, timing=None):
        entry = {
            "key": key, "label": label, "rate": rate,
            "result": result.to_dict(),
        }
        if timing is not None:
            entry["wall_time"] = timing.wall_time
            entry["worker"] = timing.worker
            entry["attempts"] = timing.attempts
            entry["retry_delays"] = timing.retry_delays
        with open(self.path, "a") as fh:
            fh.write(json.dumps(entry, separators=(",", ":")))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())


def _point_key(point, index):
    """Stable identity of a point within its sweep.

    The index disambiguates repeated (label, rate) pairs; ``repr`` of
    the rate is exact for floats, so resumed sweeps match reliably.
    """
    return f"{point.label}|{index}|{point.rate!r}"


# ---------------------------------------------------------------------------
# execution


def _run_point(point: SweepPoint):
    profiler = None
    if point.profile_epoch is not None:
        from repro.obs.profiler import PhaseProfiler

        profiler = PhaseProfiler(point.profile_epoch)
    watchdog = None
    if point.watchdog_window is not None:
        from repro.faults.watchdog import HangWatchdog

        watchdog = HangWatchdog(window=point.watchdog_window, mode="strict")
    telemetry = None
    if point.telemetry_path is not None:
        telemetry = RunTelemetry(
            path=point.telemetry_path, every=point.heartbeat_every,
            label=point.label, rate=point.rate,
        )
    start = time.perf_counter()
    result = run_simulation(
        point.config, rate=point.rate, profiler=profiler, watchdog=watchdog,
        telemetry=telemetry, **point.run_kwargs
    )
    timing = PointTiming(
        point.label, point.rate,
        wall_time=time.perf_counter() - start, worker=os.getpid(),
    )
    return point.label, point.rate, result, timing


def _describe(exc):
    return f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__


def _new_pool(workers, mp_context):
    if mp_context is not None:
        return ProcessPoolExecutor(max_workers=workers,
                                   mp_context=mp_context)
    return ProcessPoolExecutor(max_workers=workers)


def _drain_pool(pool):
    """Shut ``pool`` down and confirm every worker process is dead.

    Escalates terminate → SIGKILL → blocking join, so after this
    returns no orphaned worker can still be executing a point.
    ``pool._processes`` is private but has been the stable home of the
    worker ``Process`` objects since 3.7; fall back to a plain
    shutdown if it ever moves.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(2.0)
        if proc.is_alive():
            proc.kill()  # SIGKILL cannot be caught
            proc.join()


def _execute(points, workers, timeout, retries, on_result=None,
             retry_policy=None, mp_context=None, sleep=time.sleep):
    """Run every point; returns (outcomes aligned with ``points``, errors).

    ``outcomes[i]`` is ``(label, rate, SimResult, PointTiming)`` or
    ``None`` if point ``i`` failed every attempt.
    ``on_result(i, point, outcome)`` fires in the parent process after
    each success (the journal hook).

    ``workers=0`` runs inline (no timeout enforcement — there is no
    other process to bound). Pool mode submits one future per point;
    ``timeout`` bounds the wait for each point's result.

    Retries wait out a deterministic jittered exponential backoff
    (seeded from the point's identity, so reruns reproduce the exact
    timeline) rather than hammering the pool immediately. Before any
    retry runs after a timeout or a pool-breaking worker death, the
    pool is *recycled*: shut down with every worker process confirmed
    dead (:func:`_drain_pool`), then rebuilt — so a timed-out attempt
    can never still be executing while its retry runs, and a retry can
    never queue behind the very worker that wedged. Recycling is safe
    at that moment because retries only start once the initial
    collection pass has consumed every other future.
    """
    outcomes = [None] * len(points)
    errors = []
    policy = retry_policy if retry_policy is not None else \
        DEFAULT_RETRY_POLICY

    def success(i, point, outcome, attempts=1, delays=()):
        outcome[3].attempts = attempts
        outcome[3].retry_delays = list(delays)
        outcomes[i] = outcome
        if on_result is not None:
            on_result(i, point, outcome)

    if workers == 0:
        for i, point in enumerate(points):
            key = _point_key(point, i)
            attempts, exc, delays = 0, None, []
            while attempts <= retries:
                if attempts:  # back off before every retry
                    delay = policy.delay(key, attempts)
                    delays.append(delay)
                    sleep(delay)
                attempts += 1
                try:
                    success(i, point, _run_point(point), attempts, delays)
                    exc = None
                    break
                except Exception as err:  # noqa: BLE001 - per-point record
                    exc = err
            if exc is not None:
                errors.append(
                    PointError(point.label, point.rate, _describe(exc),
                               attempts)
                )
        return outcomes, errors
    pool = _new_pool(workers, mp_context)
    # Set when an attempt timed out (its worker may still be running
    # the point) or the pool broke (a worker died hard): the next
    # retry must not share a pool with either.
    needs_recycle = False
    try:
        futures = [
            (i, point, pool.submit(_run_point, point))
            for i, point in enumerate(points)
        ]
        failed = []
        for i, point, fut in futures:
            try:
                success(i, point, fut.result(timeout=timeout))
            except Exception as exc:  # noqa: BLE001 - includes TimeoutError
                fut.cancel()
                if isinstance(exc, (FutureTimeoutError, TimeoutError,
                                    BrokenExecutor)):
                    needs_recycle = True
                failed.append((i, point, 1, exc))
        for i, point, attempts, exc in failed:
            key = _point_key(point, i)
            delays = []
            while attempts <= retries:
                delay = policy.delay(key, attempts)
                delays.append(delay)
                sleep(delay)
                if needs_recycle:
                    _drain_pool(pool)
                    pool = _new_pool(workers, mp_context)
                    needs_recycle = False
                attempts += 1
                try:
                    fut = pool.submit(_run_point, point)
                    success(i, point, fut.result(timeout=timeout),
                            attempts, delays)
                    exc = None
                    break
                except Exception as err:  # noqa: BLE001
                    fut.cancel()
                    if isinstance(err, (FutureTimeoutError, TimeoutError,
                                        BrokenExecutor)):
                        needs_recycle = True
                    exc = err
            if exc is not None:
                errors.append(
                    PointError(point.label, point.rate, _describe(exc),
                               attempts)
                )
    finally:
        if needs_recycle:
            # Leftover orphans from the final attempt: confirm them
            # dead rather than letting them linger past the sweep.
            _drain_pool(pool)
        else:
            # wait=False so a hung worker cannot wedge the sweep's exit.
            pool.shutdown(wait=False, cancel_futures=True)
    return outcomes, errors


def _execute_journaled(points, workers, timeout, retries, journal_dir,
                       resume, retry_policy=None, mp_context=None):
    """Run points, replaying finished ones from the journal on resume.

    Returns (outcomes aligned with ``points``, errors). Without a
    journal directory this is plain :func:`_execute`.
    """
    if journal_dir is None:
        if resume:
            raise ValueError("resume=True requires journal_dir")
        return _execute(points, workers, timeout, retries,
                        retry_policy=retry_policy, mp_context=mp_context)
    journal = SweepJournal(journal_dir)
    keys = [_point_key(point, i) for i, point in enumerate(points)]
    cached = {}
    if resume:
        done = journal.completed()
        for i, key in enumerate(keys):
            if key in done:
                entry = done[key]
                cached[i] = (
                    points[i].label,
                    entry["rate"],
                    SimResult.from_dict(entry["result"]),
                    PointTiming(
                        points[i].label, entry["rate"],
                        wall_time=entry.get("wall_time"),
                        worker=entry.get("worker"),
                        attempts=entry.get("attempts", 1),
                        retry_delays=entry.get("retry_delays") or [],
                    ),
                )
    else:
        # A fresh (non-resume) sweep must not inherit a stale journal:
        # its entries would lie about which points this sweep finished.
        journal.truncate()
    pending = [(i, point) for i, point in enumerate(points) if i not in cached]

    def on_result(j, point, outcome):
        i = pending[j][0]
        journal.record(keys[i], point.label, outcome[1], outcome[2],
                       timing=outcome[3])

    raw, errors = _execute(
        [point for _, point in pending], workers, timeout, retries,
        on_result=on_result, retry_policy=retry_policy,
        mp_context=mp_context,
    )
    outcomes = [None] * len(points)
    for i, outcome in cached.items():
        outcomes[i] = outcome
    for j, (i, _) in enumerate(pending):
        outcomes[i] = raw[j]
    return outcomes, errors


def _arm_telemetry(points, telemetry_dir, heartbeat_every):
    """Assign per-point heartbeat paths and write the sweep manifest."""
    if telemetry_dir is None:
        return
    init_telemetry_dir(
        telemetry_dir,
        [{"label": p.label, "rate": p.rate} for p in points],
    )
    for i, point in enumerate(points):
        point.telemetry_path = point_heartbeat_path(telemetry_dir, i)
        point.heartbeat_every = heartbeat_every


def parallel_sweep(config, rates, workers: Optional[int] = None,
                   label: str = "", profile_epoch: Optional[int] = None,
                   timeout: Optional[float] = None, retries: int = 1,
                   journal_dir: Optional[str] = None, resume: bool = False,
                   watchdog_window: Optional[int] = None,
                   telemetry_dir: Optional[str] = None,
                   heartbeat_every: int = 1000,
                   retry_policy=None, mp_context=None,
                   **run_kwargs):
    """Run one simulation per rate across a process pool.

    Returns a :class:`SweepResults` (a list of ``(rate, SimResult)`` in
    input rate order) whose ``errors`` records points that failed every
    attempt. ``workers=None`` lets the pool pick; ``workers=0`` runs
    inline (useful under debuggers and on platforms without fork).
    ``timeout`` bounds the wait per point in pool mode; ``retries`` is
    the extra attempts a crashed or timed-out point gets, each waiting
    out a deterministic jittered exponential backoff (``retry_policy``,
    a :class:`repro.serve.backoff.RetryPolicy`; default
    ``DEFAULT_RETRY_POLICY``) and recorded in the point's
    :class:`PointTiming`. A retry never overlaps its predecessor: after
    a timeout or hard worker death the pool is recycled with every
    worker confirmed dead first. ``mp_context`` picks the
    multiprocessing start method (tests use ``fork`` so monkeypatches
    reach workers). ``profile_epoch`` enables per-run pipeline
    profiling (see SweepPoint).

    ``journal_dir`` makes the sweep crash-tolerant: each completed
    point is appended to ``journal_dir/journal.jsonl`` as it finishes,
    and ``resume=True`` skips points already journaled by a previous
    (killed) invocation of the same sweep. ``watchdog_window`` arms a
    strict HangWatchdog per point.

    ``telemetry_dir`` makes the sweep observable while it runs: each
    worker writes fsynced heartbeat records (cycle, cycles/sec, ETA,
    RSS) into one file per point under the directory, which ``repro
    watch telemetry_dir`` renders as a live dashboard.
    """
    points = [
        SweepPoint(copy.deepcopy(config), rate, dict(run_kwargs), label,
                   profile_epoch, watchdog_window)
        for rate in rates
    ]
    _arm_telemetry(points, telemetry_dir, heartbeat_every)
    outcomes, errors = _execute_journaled(
        points, workers, timeout, retries, journal_dir, resume,
        retry_policy=retry_policy, mp_context=mp_context,
    )
    live = [o for o in outcomes if o is not None]
    return SweepResults(
        ((o[1], o[2]) for o in live), errors, (o[3] for o in live)
    )


def parallel_matrix(configs, rates, workers: Optional[int] = None,
                    profile_epoch: Optional[int] = None,
                    timeout: Optional[float] = None, retries: int = 1,
                    journal_dir: Optional[str] = None, resume: bool = False,
                    watchdog_window: Optional[int] = None,
                    telemetry_dir: Optional[str] = None,
                    heartbeat_every: int = 1000,
                    retry_policy=None, mp_context=None,
                    **run_kwargs):
    """Sweep a {label: NetworkConfig} matrix of configurations.

    Returns a :class:`MatrixResults` (``{label: [(rate, SimResult)]}``)
    whose ``errors`` records per-point failures; a failed point leaves
    a gap in its label's series rather than killing the sweep. All
    points across all configurations share one pool so the pool stays
    saturated. ``journal_dir``/``resume``/``watchdog_window``,
    ``telemetry_dir``/``heartbeat_every`` and
    ``retry_policy``/``mp_context`` behave as in
    :func:`parallel_sweep`.
    """
    points = []
    for label, config in configs.items():
        for rate in rates:
            points.append(
                SweepPoint(copy.deepcopy(config), rate, dict(run_kwargs),
                           label, profile_epoch, watchdog_window)
            )
    _arm_telemetry(points, telemetry_dir, heartbeat_every)
    raw, errors = _execute_journaled(
        points, workers, timeout, retries, journal_dir, resume,
        retry_policy=retry_policy, mp_context=mp_context,
    )
    out = MatrixResults({label: [] for label in configs}, errors)
    for outcome in raw:
        if outcome is None:
            continue
        label, rate, result, timing = outcome
        out[label].append((rate, result))
        out.timings.append(timing)
    for series in out.values():
        series.sort(key=lambda pair: pair[0])
    return out
