"""Multiprocess parameter sweeps.

Simulations are independent, CPU-bound, pure-Python — ideal for a
process pool. Work items carry a NetworkConfig (picklable dataclass)
plus run_simulation keyword arguments; each worker builds its own
Network so no simulator state crosses process boundaries.

Sweeps are fault-tolerant at point granularity: every point gets its
own future with an optional ``timeout``, and a point that crashes or
times out is retried (``retries`` attempts, default one) before being
recorded in the result's ``errors`` list. A bad point costs that point,
not the sweep — the caller still receives every result that succeeded.
"""

import copy
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.sim.runner import run_simulation


@dataclass
class SweepPoint:
    """One (configuration, rate) simulation request."""

    config: Any  # NetworkConfig
    rate: float
    run_kwargs: Dict[str, Any]
    label: str = ""
    #: When set, each worker profiles its run with this epoch length
    #: and the resulting SimResult carries a ``timing`` summary, so
    #: sweeps double as cycles/sec regression probes.
    profile_epoch: Optional[int] = None


@dataclass
class PointError:
    """Why one sweep point produced no result, after all retries."""

    label: str
    rate: float
    error: str
    attempts: int


class SweepResults(list):
    """``[(rate, SimResult)]`` plus per-point failures in ``errors``.

    A plain list to existing callers; ``errors`` holds a
    :class:`PointError` for each point that failed every attempt.
    """

    def __init__(self, items=(), errors=()):
        super().__init__(items)
        self.errors = list(errors)

    @property
    def complete(self):
        return not self.errors


class MatrixResults(dict):
    """``{label: [(rate, SimResult)]}`` plus failures in ``errors``."""

    def __init__(self, items=(), errors=()):
        super().__init__(items)
        self.errors = list(errors)

    @property
    def complete(self):
        return not self.errors


def _run_point(point: SweepPoint):
    profiler = None
    if point.profile_epoch is not None:
        from repro.obs.profiler import PhaseProfiler

        profiler = PhaseProfiler(point.profile_epoch)
    result = run_simulation(
        point.config, rate=point.rate, profiler=profiler, **point.run_kwargs
    )
    return point.label, point.rate, result


def _describe(exc):
    return f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__


def _execute(points, workers, timeout, retries):
    """Run every point; returns (outcomes-in-input-order, errors).

    ``workers=0`` runs inline (no timeout enforcement — there is no
    other process to bound). Pool mode submits one future per point;
    ``timeout`` bounds the wait for each point's result. A timed-out
    worker process may linger until it finishes its run, but the sweep
    moves on without it.
    """
    outcomes = [None] * len(points)
    errors = []
    if workers == 0:
        for i, point in enumerate(points):
            attempts, exc = 0, None
            while attempts <= retries:
                attempts += 1
                try:
                    outcomes[i] = _run_point(point)
                    exc = None
                    break
                except Exception as err:  # noqa: BLE001 - per-point record
                    exc = err
            if exc is not None:
                errors.append(
                    PointError(point.label, point.rate, _describe(exc),
                               attempts)
                )
        return [o for o in outcomes if o is not None], errors
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [
            (i, point, pool.submit(_run_point, point))
            for i, point in enumerate(points)
        ]
        failed = []
        for i, point, fut in futures:
            try:
                outcomes[i] = fut.result(timeout=timeout)
            except Exception as exc:  # noqa: BLE001 - includes TimeoutError
                fut.cancel()
                failed.append((i, point, 1, exc))
        for i, point, attempts, exc in failed:
            while attempts <= retries:
                attempts += 1
                try:
                    fut = pool.submit(_run_point, point)
                    outcomes[i] = fut.result(timeout=timeout)
                    exc = None
                    break
                except Exception as err:  # noqa: BLE001
                    exc = err
            if exc is not None:
                errors.append(
                    PointError(point.label, point.rate, _describe(exc),
                               attempts)
                )
    finally:
        # wait=False so a hung worker cannot wedge the sweep's exit.
        pool.shutdown(wait=False, cancel_futures=True)
    return [o for o in outcomes if o is not None], errors


def parallel_sweep(config, rates, workers: Optional[int] = None,
                   label: str = "", profile_epoch: Optional[int] = None,
                   timeout: Optional[float] = None, retries: int = 1,
                   **run_kwargs):
    """Run one simulation per rate across a process pool.

    Returns a :class:`SweepResults` (a list of ``(rate, SimResult)`` in
    input rate order) whose ``errors`` records points that failed every
    attempt. ``workers=None`` lets the pool pick; ``workers=0`` runs
    inline (useful under debuggers and on platforms without fork).
    ``timeout`` bounds the wait per point in pool mode; ``retries`` is
    the extra attempts a crashed or timed-out point gets.
    ``profile_epoch`` enables per-run pipeline profiling (see
    SweepPoint).
    """
    points = [
        SweepPoint(copy.deepcopy(config), rate, dict(run_kwargs), label,
                   profile_epoch)
        for rate in rates
    ]
    results, errors = _execute(points, workers, timeout, retries)
    return SweepResults(
        ((rate, result) for _, rate, result in results), errors
    )


def parallel_matrix(configs, rates, workers: Optional[int] = None,
                    profile_epoch: Optional[int] = None,
                    timeout: Optional[float] = None, retries: int = 1,
                    **run_kwargs):
    """Sweep a {label: NetworkConfig} matrix of configurations.

    Returns a :class:`MatrixResults` (``{label: [(rate, SimResult)]}``)
    whose ``errors`` records per-point failures; a failed point leaves
    a gap in its label's series rather than killing the sweep. All
    points across all configurations share one pool so the pool stays
    saturated.
    """
    points = []
    for label, config in configs.items():
        for rate in rates:
            points.append(
                SweepPoint(copy.deepcopy(config), rate, dict(run_kwargs),
                           label, profile_epoch)
            )
    raw, errors = _execute(points, workers, timeout, retries)
    out = MatrixResults({label: [] for label in configs}, errors)
    for label, rate, result in raw:
        out[label].append((rate, result))
    for series in out.values():
        series.sort(key=lambda pair: pair[0])
    return out
