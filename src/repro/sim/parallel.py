"""Multiprocess parameter sweeps.

Simulations are independent, CPU-bound, pure-Python — ideal for a
process pool. Work items carry a NetworkConfig (picklable dataclass)
plus run_simulation keyword arguments; each worker builds its own
Network so no simulator state crosses process boundaries.
"""

import copy
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.sim.runner import run_simulation


@dataclass
class SweepPoint:
    """One (configuration, rate) simulation request."""

    config: Any  # NetworkConfig
    rate: float
    run_kwargs: Dict[str, Any]
    label: str = ""
    #: When set, each worker profiles its run with this epoch length
    #: and the resulting SimResult carries a ``timing`` summary, so
    #: sweeps double as cycles/sec regression probes.
    profile_epoch: Optional[int] = None


def _run_point(point: SweepPoint):
    profiler = None
    if point.profile_epoch is not None:
        from repro.obs.profiler import PhaseProfiler

        profiler = PhaseProfiler(point.profile_epoch)
    result = run_simulation(
        point.config, rate=point.rate, profiler=profiler, **point.run_kwargs
    )
    return point.label, point.rate, result


def parallel_sweep(config, rates, workers: Optional[int] = None,
                   label: str = "", profile_epoch: Optional[int] = None,
                   **run_kwargs):
    """Run one simulation per rate across a process pool.

    Returns [(rate, SimResult)] in rate order. ``workers=None`` lets the
    pool pick; ``workers=0`` runs inline (useful under debuggers and on
    platforms without fork). ``profile_epoch`` enables per-run pipeline
    profiling (see SweepPoint).
    """
    points = [
        SweepPoint(copy.deepcopy(config), rate, dict(run_kwargs), label,
                   profile_epoch)
        for rate in rates
    ]
    if workers == 0:
        results = [_run_point(p) for p in points]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_point, points))
    return [(rate, result) for _, rate, result in results]


def parallel_matrix(configs, rates, workers: Optional[int] = None,
                    profile_epoch: Optional[int] = None, **run_kwargs):
    """Sweep a {label: NetworkConfig} matrix of configurations.

    Returns {label: [(rate, SimResult)]}. All points across all
    configurations share one pool so the pool stays saturated.
    """
    points = []
    for label, config in configs.items():
        for rate in rates:
            points.append(
                SweepPoint(copy.deepcopy(config), rate, dict(run_kwargs),
                           label, profile_epoch)
            )
    if workers == 0:
        raw = [_run_point(p) for p in points]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            raw = list(pool.map(_run_point, points))
    out = {label: [] for label in configs}
    for label, rate, result in raw:
        out[label].append((rate, result))
    for series in out.values():
        series.sort(key=lambda pair: pair[0])
    return out
