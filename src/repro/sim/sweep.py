"""Injection-rate sweeps and saturation search."""

from repro.sim.runner import run_simulation


def rate_sweep(config_factory, rates, metrics_factory=None,
               telemetry_dir=None, heartbeat_every=1000, **run_kwargs):
    """Run one simulation per injection rate.

    ``config_factory`` is a zero-argument callable returning a *fresh*
    NetworkConfig (router/allocator state must not leak between runs).
    Returns a list of (rate, SimResult).

    ``metrics_factory``, if given, is called once per rate and must
    return a fresh :class:`~repro.obs.metrics.MetricsRegistry` the run
    publishes into; the sweep then returns (rate, SimResult, registry)
    triples instead. (Registries hold end-of-run snapshots, so each
    rate needs its own — sharing one would sum counters across rates.)

    ``telemetry_dir`` writes one fsynced heartbeat file per rate into
    the directory (obs.telemetry) so ``repro watch`` can follow even a
    serial sweep live; ``heartbeat_every`` is the sampling period in
    cycles.
    """
    telemetry_paths = {}
    if telemetry_dir is not None:
        from repro.obs.telemetry import init_telemetry_dir, point_heartbeat_path

        init_telemetry_dir(
            telemetry_dir, [{"label": "", "rate": rate} for rate in rates]
        )
        telemetry_paths = {
            i: point_heartbeat_path(telemetry_dir, i)
            for i in range(len(rates))
        }
    results = []
    for i, rate in enumerate(rates):
        registry = metrics_factory() if metrics_factory is not None else None
        telemetry = None
        if i in telemetry_paths:
            from repro.obs.telemetry import RunTelemetry

            telemetry = RunTelemetry(
                path=telemetry_paths[i], every=heartbeat_every, rate=rate
            )
        result = run_simulation(
            config_factory(), rate=rate, metrics=registry,
            telemetry=telemetry, **run_kwargs
        )
        if metrics_factory is not None:
            results.append((rate, result, registry))
        else:
            results.append((rate, result))
    return results


def find_saturation(config_factory, lo=0.05, hi=1.0, tol=0.02, **run_kwargs):
    """Binary-search the saturation injection rate.

    Saturation is declared when accepted throughput falls short of the
    offered rate by more than 5% (the network cannot absorb the load).
    Returns (saturation_rate, accepted_throughput_at_saturation).
    """
    best_rate, best_tp = lo, 0.0
    while hi - lo > tol:
        mid = (lo + hi) / 2
        result = run_simulation(config_factory(), rate=mid, **run_kwargs)
        if result.avg_throughput >= 0.95 * mid:
            best_rate, best_tp = mid, result.avg_throughput
            lo = mid
        else:
            hi = mid
    return best_rate, best_tp


def average_results(results, metric):
    """Mean of a SimResult attribute over a list of (rate, result)."""
    values = [getattr(result, metric) for _, result in results]
    return sum(values) / len(values) if values else 0.0
