"""Injection-rate sweeps and saturation search."""

from repro.sim.runner import run_simulation


def rate_sweep(config_factory, rates, metrics_factory=None, **run_kwargs):
    """Run one simulation per injection rate.

    ``config_factory`` is a zero-argument callable returning a *fresh*
    NetworkConfig (router/allocator state must not leak between runs).
    Returns a list of (rate, SimResult).

    ``metrics_factory``, if given, is called once per rate and must
    return a fresh :class:`~repro.obs.metrics.MetricsRegistry` the run
    publishes into; the sweep then returns (rate, SimResult, registry)
    triples instead. (Registries hold end-of-run snapshots, so each
    rate needs its own — sharing one would sum counters across rates.)
    """
    results = []
    for rate in rates:
        registry = metrics_factory() if metrics_factory is not None else None
        result = run_simulation(
            config_factory(), rate=rate, metrics=registry, **run_kwargs
        )
        if metrics_factory is not None:
            results.append((rate, result, registry))
        else:
            results.append((rate, result))
    return results


def find_saturation(config_factory, lo=0.05, hi=1.0, tol=0.02, **run_kwargs):
    """Binary-search the saturation injection rate.

    Saturation is declared when accepted throughput falls short of the
    offered rate by more than 5% (the network cannot absorb the load).
    Returns (saturation_rate, accepted_throughput_at_saturation).
    """
    best_rate, best_tp = lo, 0.0
    while hi - lo > tol:
        mid = (lo + hi) / 2
        result = run_simulation(config_factory(), rate=mid, **run_kwargs)
        if result.avg_throughput >= 0.95 * mid:
            best_rate, best_tp = mid, result.avg_throughput
            lo = mid
        else:
            hi = mid
    return best_rate, best_tp


def average_results(results, metric):
    """Mean of a SimResult attribute over a list of (rate, result)."""
    values = [getattr(result, metric) for _, result in results]
    return sum(values) / len(values) if values else 0.0
