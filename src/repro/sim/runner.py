"""Warmup / measurement / drain simulation driver.

The driver is resumable: a :class:`SimulationRun` tracks which phase it
is in (``init`` → ``main`` → ``drain`` → ``done``) and how many drain
cycles have run, so a run restored from a checkpoint continues exactly
where the snapshot was taken. ``run_simulation`` wires the checkpoint
machinery through: ``checkpoint_path``/``checkpoint_every`` write
periodic snapshots, ``resume_from`` restores one (refused on config
mismatch), and ``kill_at`` is the chaos switch that aborts the run at a
given cycle so tests and CI can prove kill/resume equivalence.
"""

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.checkpoint import (
    Checkpointer,
    CheckpointError,
    SimulationKilled,
    canonical_run_spec,
    lengths_from_spec,
    lengths_spec,
    load_checkpoint,
    restore_run,
    verify_resumable,
)
from repro.network.config import NetworkConfig
from repro.network.network import Network, build_network
from repro.stats.summary import summarize
from repro.traffic.injection import BernoulliInjector, FixedLength
from repro.traffic.patterns import build_pattern


@dataclass
class SimulationRun:
    """One simulation: a network, an injector and its phase schedule."""

    network: Network
    injector: BernoulliInjector
    warmup: int
    measure: int
    drain: int
    #: Optional MetricsRegistry to publish end-of-run metrics into.
    metrics: Optional[Any] = None
    #: Optional RunTelemetry emitting heartbeats (obs.telemetry).
    telemetry: Optional[Any] = None
    #: Optional DigestRecorder taking periodic state digests (obs.digest).
    digest: Optional[Any] = None
    #: Resumable progress: the current phase and drain cycles executed.
    #: Restored from checkpoints; do not touch mid-run.
    phase: str = "init"
    drain_cycles_done: int = 0

    def execute(self, checkpointer=None, kill_at=None):
        if self.telemetry is not None:
            self.telemetry.begin(
                total_cycles=self.warmup + self.measure + self.drain,
                profiler=self.network.profiler,
                start_cycle=self.network.cycle,
            )
        try:
            result = self._execute(checkpointer, kill_at)
        except BaseException as exc:
            if self.telemetry is not None:
                status = (
                    "killed" if isinstance(exc, SimulationKilled) else "failed"
                )
                self.telemetry.finish(status, cycle=self.network.cycle)
            raise
        if self.telemetry is not None:
            self.telemetry.finish(
                "done", cycle=self.network.cycle, result=result
            )
        return result

    def prepare(self):
        """One-time wiring before stepping: traces and the stats window.

        Idempotent and safe on resumed runs (the window is only set
        when entering from ``init``); called by :meth:`_execute` and by
        the lockstep runner, which drives :meth:`step_cycle` directly.
        """
        self.injector.trace = self.network.trace  # packet creation traces
        if self.phase == "init":
            self.network.stats.set_window(
                self.warmup, self.warmup + self.measure
            )
            self.phase = "main"

    def step_cycle(self, checkpointer=None, kill_at=None):
        """Advance the run by at most one simulated cycle.

        Returns True while the run has more cycles to execute, False
        once it reaches ``done`` — so ``while run.step_cycle(): pass``
        is exactly the phase schedule :meth:`_execute` runs, and a
        lockstep driver can interleave two runs cycle by cycle.
        """
        net, inj = self.network, self.injector
        if self.phase == "init":
            self.prepare()
        if self.phase == "main":
            if net.cycle >= self.warmup + self.measure:
                # Drain: stop injecting so in-flight measured packets can
                # finish and contribute latency samples. Throughput is
                # computed over the measurement window only, so unstable
                # (past-saturation) runs are measured correctly without a
                # full drain.
                inj.enabled = False
                self.phase = "drain"
            else:
                for packet in inj.generate(net.cycle):
                    net.inject(packet)
                net.step()
                self._after_cycle(checkpointer, kill_at)
                return True
        if self.phase == "drain":
            if self.drain_cycles_done >= self.drain or self._quiescent(net):
                self.phase = "done"
                return False
            net.step()
            self.drain_cycles_done += 1
            self._after_cycle(checkpointer, kill_at)
            return True
        return False

    def _execute(self, checkpointer=None, kill_at=None):
        net, inj = self.network, self.injector
        self.prepare()
        stats = net.stats
        while self.step_cycle(checkpointer, kill_at):
            pass
        if self.digest is not None:
            # Final digest (even off-stride) + fingerprint trailer, so
            # the stream always covers the end state of the run.
            self.digest.finish(net, inj)
        # Report whether the drain actually completed: a False here on a
        # drain-requested run means the drain budget expired with flits
        # still in flight (expect censored latency samples).
        drained = self._quiescent(net) if self.drain > 0 else None
        warnings = None
        if drained is False:
            # Structured warning instead of silently returning partial
            # latency stats: a trace event plus a SimResult flag.
            warnings = ["drain_aborted"]
            tr = net.trace
            if tr.active:
                tr.emit(
                    "drain_aborted", net.cycle,
                    in_flight=net.in_flight_flits(), backlog=net.backlog(),
                    drain_cycles=self.drain_cycles_done,
                )
        timing = None
        if net.profiler is not None:
            net.profiler.finish()
            timing = {
                "cycles_per_sec": net.profiler.cycles_per_sec(),
                "phase_seconds": net.profiler.phase_totals(),
                "epoch_cycles": net.profiler.epoch_cycles,
                "epochs": len(net.profiler.epochs),
            }
        if self.metrics is not None:
            net.publish_metrics(self.metrics)
        return summarize(
            stats, inj.rate, net.chain_stats(), net.cycle,
            drained=drained, drain_cycles=self.drain_cycles_done,
            timing=timing, faults=self._fault_summary(net),
            warnings=warnings,
        )

    def _after_cycle(self, checkpointer, kill_at):
        """Post-cycle hooks: periodic checkpoints, then the chaos switch.

        Checkpoints are taken *between* cycles (``net.cycle`` already
        advanced), so a resumed run re-executes exactly the cycles the
        killed run lost.
        """
        if self.telemetry is not None:
            self.telemetry.on_cycle(self.network.cycle, self.phase)
        if self.digest is not None:
            self.digest.on_cycle(self.network, self.injector, self.network.cycle)
        if checkpointer is not None:
            checkpointer.maybe_save(self)
        if kill_at is not None and self.network.cycle >= kill_at:
            raise SimulationKilled(self.network.cycle)

    @staticmethod
    def _quiescent(net):
        """Nothing left to simulate during drain.

        With a reliable transport attached, queued retransmissions and
        unacknowledged packets keep the drain alive past the moment the
        network itself momentarily empties.
        """
        if net.in_flight_flits() != 0:
            return False
        if net.transport is not None:
            return net.transport.idle() and net.backlog() == 0
        return True

    @staticmethod
    def _fault_summary(net):
        parts = {}
        if net.faults is not None:
            parts["injection"] = net.faults.summary()
        if net.transport is not None:
            parts["transport"] = net.transport.summary()
        if net.invariants is not None:
            parts["invariants"] = net.invariants.summary()
        if net.watchdog is not None:
            parts["watchdog"] = net.watchdog.summary()
        return parts or None


def run_simulation(
    config,
    pattern="uniform",
    rate=0.2,
    packet_length=1,
    lengths=None,
    warmup=1000,
    measure=3000,
    drain=2000,
    seed=None,
    trace=None,
    profiler=None,
    metrics=None,
    sampler=None,
    telemetry=None,
    faults=None,
    transport=None,
    invariants=None,
    watchdog=None,
    checkpoint_path=None,
    checkpoint_every=None,
    resume_from=None,
    kill_at=None,
    digest=None,
    digest_path=None,
    digest_every=None,
):
    """Build and execute one simulation; returns a :class:`SimResult`.

    ``lengths`` may be any PacketLengthDistribution; ``packet_length``
    is a convenience for fixed lengths. ``rate`` is in flits per
    terminal per cycle (the paper's unit). ``config`` is never mutated:
    a ``seed`` override is applied to a copy.

    Observability (all optional, all zero-overhead when omitted):
    ``trace`` is a :class:`~repro.obs.trace.TraceBus` to emit events
    into, ``profiler`` a :class:`~repro.obs.profiler.PhaseProfiler` to
    attach (its summary lands in ``SimResult.timing``), ``metrics``
    a :class:`~repro.obs.metrics.MetricsRegistry` the finished run
    publishes into, ``sampler`` a
    :class:`~repro.obs.sampler.NetworkSampler` snapshotting network
    state every N cycles, and ``telemetry`` a
    :class:`~repro.obs.telemetry.RunTelemetry` emitting host-side
    progress heartbeats (cycles/sec, ETA, RSS) while the run executes.

    Robustness (repro.faults; likewise optional and free when omitted):
    ``faults`` is a :class:`~repro.faults.plan.FaultPlan` or a
    :class:`~repro.faults.controller.FaultController` to inject,
    ``transport`` a :class:`~repro.faults.reliability.ReliableTransport`
    for end-to-end delivery, ``invariants`` an
    :class:`~repro.faults.invariants.InvariantChecker`, and
    ``watchdog`` a :class:`~repro.faults.watchdog.HangWatchdog`. Their
    summaries land in ``SimResult.faults``.

    Checkpoint/restore (repro.checkpoint): ``checkpoint_path`` writes a
    snapshot every ``checkpoint_every`` cycles (default 1000; ``.gz``
    paths compress); ``resume_from`` restores a checkpoint file (or an
    already-loaded payload dict) and continues — the remaining
    arguments must describe the same experiment, enforced via the
    embedded config hash. ``kill_at`` aborts the run by raising
    :class:`~repro.checkpoint.SimulationKilled` once the given cycle
    completes (chaos testing). Checkpointing is refused when ``faults``
    or ``transport`` are attached (their state is not snapshotable).

    State digests (repro.obs.digest): ``digest`` attaches a
    :class:`~repro.obs.digest.DigestRecorder`; ``digest_path`` /
    ``digest_every`` build one (JSONL stream, digest every N cycles —
    default 64). The finished run's whole-run fingerprint is the
    recorder's ``fingerprint``.
    """
    if seed is not None:
        config = dataclasses.replace(config, seed=seed)
    dist = lengths if lengths is not None else FixedLength(packet_length)
    checkpointing = checkpoint_path is not None or resume_from is not None
    run_spec = None
    if checkpointing:
        if faults is not None or transport is not None:
            raise CheckpointError(
                "checkpoint/resume does not support fault injection or a "
                "reliable transport (their state is not snapshotable)"
            )
        run_spec = canonical_run_spec(pattern, rate, dist, warmup, measure,
                                      drain)
    digester = digest
    if digester is None and (digest_path is not None or digest_every is not None):
        from repro.obs.digest import DigestRecorder

        digester = DigestRecorder(every=digest_every or 64, path=digest_path)
    if digester is not None:
        # Header is informational (identifies the experiment a stream
        # belongs to); lengths outside the checkpointable set are
        # recorded as None rather than refused.
        try:
            header_lengths = lengths_spec(dist)
        except CheckpointError:
            header_lengths = None
        digester.write_header(config, run_spec or {
            "pattern": pattern,
            "rate": rate,
            "lengths": header_lengths,
            "warmup": warmup,
            "measure": measure,
            "drain": drain,
        })
    # Fault injection and the reliable transport are outside the fast
    # core's envelope; build_network falls back to the reference core
    # with a BackendFallbackWarning rather than failing or silently
    # dropping the features.
    allow_fast = faults is None and transport is None
    net = build_network(config, trace=trace, allow_fast=allow_fast)
    if profiler is not None:
        net.attach_profiler(profiler)
    if sampler is not None:
        net.attach_sampler(sampler)
    if faults is not None:
        from repro.faults import FaultController, FaultPlan

        if isinstance(faults, FaultPlan):
            faults = FaultController(faults)
        net.attach_faults(faults)
    if transport is not None:
        net.attach_transport(transport)
    if invariants is not None:
        net.attach_invariants(invariants)
    if watchdog is not None:
        net.attach_watchdog(watchdog)
    traffic_rng = random.Random(config.seed + 0x5EED)
    pat = build_pattern(pattern, net.num_terminals, traffic_rng)
    injector = BernoulliInjector(net.num_terminals, pat, rate, dist, traffic_rng)
    run = SimulationRun(net, injector, warmup, measure, drain,
                        metrics=metrics, telemetry=telemetry,
                        digest=digester)
    if resume_from is not None:
        payload = (
            resume_from
            if isinstance(resume_from, dict)
            else load_checkpoint(resume_from)
        )
        verify_resumable(payload, config, run_spec)
        restore_run(run, payload)
    checkpointer = None
    if checkpoint_path is not None:
        checkpointer = Checkpointer(
            checkpoint_path, checkpoint_every, config, run_spec
        )
    return run.execute(checkpointer=checkpointer, kill_at=kill_at)


def resume_simulation(
    path,
    trace=None,
    profiler=None,
    metrics=None,
    sampler=None,
    telemetry=None,
    invariants=None,
    watchdog=None,
    checkpoint_path=None,
    checkpoint_every=None,
    kill_at=None,
    digest=None,
    digest_path=None,
    digest_every=None,
):
    """Resume a run from a checkpoint file and drive it to completion.

    The network configuration and the run spec (pattern, rate, lengths,
    phase schedule) are rebuilt from the checkpoint itself, so the only
    required argument is the file. Observers are re-attached fresh via
    the keyword arguments; pass ``checkpoint_path`` (e.g. the same
    file) to keep checkpointing the resumed run.
    """
    payload = load_checkpoint(path)
    config = NetworkConfig.from_dict(payload["config"])
    spec = payload["run_spec"]
    return run_simulation(
        config,
        pattern=spec["pattern"],
        rate=spec["rate"],
        lengths=lengths_from_spec(spec["lengths"]),
        warmup=spec["warmup"],
        measure=spec["measure"],
        drain=spec["drain"],
        trace=trace,
        profiler=profiler,
        metrics=metrics,
        sampler=sampler,
        telemetry=telemetry,
        invariants=invariants,
        watchdog=watchdog,
        resume_from=payload,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        kill_at=kill_at,
        digest=digest,
        digest_path=digest_path,
        digest_every=digest_every,
    )
