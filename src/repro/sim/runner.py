"""Warmup / measurement / drain simulation driver."""

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.network.network import Network
from repro.stats.summary import SimResult, summarize
from repro.traffic.injection import BernoulliInjector, FixedLength
from repro.traffic.patterns import build_pattern


@dataclass
class SimulationRun:
    """One simulation: a network, an injector and its phase schedule."""

    network: Network
    injector: BernoulliInjector
    warmup: int
    measure: int
    drain: int
    #: Optional MetricsRegistry to publish end-of-run metrics into.
    metrics: Optional[Any] = None

    def execute(self):
        net, inj = self.network, self.injector
        inj.trace = net.trace  # packet creation shows up in traces
        stats = net.stats
        stats.set_window(self.warmup, self.warmup + self.measure)
        total = self.warmup + self.measure
        for _ in range(total):
            for packet in inj.generate(net.cycle):
                net.inject(packet)
            net.step()
        # Drain: stop injecting so in-flight measured packets can finish
        # and contribute latency samples. Throughput is computed over
        # the measurement window only, so unstable (past-saturation)
        # runs are measured correctly without a full drain.
        inj.enabled = False
        drain_cycles = 0
        for _ in range(self.drain):
            if self._quiescent(net):
                break
            net.step()
            drain_cycles += 1
        # Report whether the drain actually completed: a False here on a
        # drain-requested run means the drain budget expired with flits
        # still in flight (expect censored latency samples).
        drained = self._quiescent(net) if self.drain > 0 else None
        timing = None
        if net.profiler is not None:
            net.profiler.finish()
            timing = {
                "cycles_per_sec": net.profiler.cycles_per_sec(),
                "phase_seconds": net.profiler.phase_totals(),
                "epoch_cycles": net.profiler.epoch_cycles,
                "epochs": len(net.profiler.epochs),
            }
        if self.metrics is not None:
            net.publish_metrics(self.metrics)
        return summarize(
            stats, inj.rate, net.chain_stats(), net.cycle,
            drained=drained, drain_cycles=drain_cycles, timing=timing,
            faults=self._fault_summary(net),
        )

    @staticmethod
    def _quiescent(net):
        """Nothing left to simulate during drain.

        With a reliable transport attached, queued retransmissions and
        unacknowledged packets keep the drain alive past the moment the
        network itself momentarily empties.
        """
        if net.in_flight_flits() != 0:
            return False
        if net.transport is not None:
            return net.transport.idle() and net.backlog() == 0
        return True

    @staticmethod
    def _fault_summary(net):
        parts = {}
        if net.faults is not None:
            parts["injection"] = net.faults.summary()
        if net.transport is not None:
            parts["transport"] = net.transport.summary()
        if net.invariants is not None:
            parts["invariants"] = net.invariants.summary()
        if net.watchdog is not None:
            parts["watchdog"] = net.watchdog.summary()
        return parts or None


def run_simulation(
    config,
    pattern="uniform",
    rate=0.2,
    packet_length=1,
    lengths=None,
    warmup=1000,
    measure=3000,
    drain=2000,
    seed=None,
    trace=None,
    profiler=None,
    metrics=None,
    sampler=None,
    faults=None,
    transport=None,
    invariants=None,
    watchdog=None,
):
    """Build and execute one simulation; returns a :class:`SimResult`.

    ``lengths`` may be any PacketLengthDistribution; ``packet_length``
    is a convenience for fixed lengths. ``rate`` is in flits per
    terminal per cycle (the paper's unit). ``config`` is never mutated:
    a ``seed`` override is applied to a copy.

    Observability (all optional, all zero-overhead when omitted):
    ``trace`` is a :class:`~repro.obs.trace.TraceBus` to emit events
    into, ``profiler`` a :class:`~repro.obs.profiler.PhaseProfiler` to
    attach (its summary lands in ``SimResult.timing``), ``metrics``
    a :class:`~repro.obs.metrics.MetricsRegistry` the finished run
    publishes into, and ``sampler`` a
    :class:`~repro.obs.sampler.NetworkSampler` snapshotting network
    state every N cycles.

    Robustness (repro.faults; likewise optional and free when omitted):
    ``faults`` is a :class:`~repro.faults.plan.FaultPlan` or a
    :class:`~repro.faults.controller.FaultController` to inject,
    ``transport`` a :class:`~repro.faults.reliability.ReliableTransport`
    for end-to-end delivery, ``invariants`` an
    :class:`~repro.faults.invariants.InvariantChecker`, and
    ``watchdog`` a :class:`~repro.faults.watchdog.HangWatchdog`. Their
    summaries land in ``SimResult.faults``.
    """
    if seed is not None:
        config = dataclasses.replace(config, seed=seed)
    net = Network(config, trace=trace)
    if profiler is not None:
        net.attach_profiler(profiler)
    if sampler is not None:
        net.attach_sampler(sampler)
    if faults is not None:
        from repro.faults import FaultController, FaultPlan

        if isinstance(faults, FaultPlan):
            faults = FaultController(faults)
        net.attach_faults(faults)
    if transport is not None:
        net.attach_transport(transport)
    if invariants is not None:
        net.attach_invariants(invariants)
    if watchdog is not None:
        net.attach_watchdog(watchdog)
    traffic_rng = random.Random(config.seed + 0x5EED)
    dist = lengths if lengths is not None else FixedLength(packet_length)
    pat = build_pattern(pattern, net.num_terminals, traffic_rng)
    injector = BernoulliInjector(net.num_terminals, pat, rate, dist, traffic_rng)
    run = SimulationRun(net, injector, warmup, measure, drain, metrics=metrics)
    return run.execute()
