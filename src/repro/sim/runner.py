"""Warmup / measurement / drain simulation driver."""

import random
from dataclasses import dataclass
from typing import Optional

from repro.network.network import Network
from repro.stats.summary import SimResult, summarize
from repro.traffic.injection import BernoulliInjector, FixedLength
from repro.traffic.patterns import build_pattern


@dataclass
class SimulationRun:
    """One simulation: a network, an injector and its phase schedule."""

    network: Network
    injector: BernoulliInjector
    warmup: int
    measure: int
    drain: int

    def execute(self):
        net, inj = self.network, self.injector
        stats = net.stats
        stats.set_window(self.warmup, self.warmup + self.measure)
        total = self.warmup + self.measure
        for _ in range(total):
            for packet in inj.generate(net.cycle):
                net.inject(packet)
            net.step()
        # Drain: stop injecting so in-flight measured packets can finish
        # and contribute latency samples. Throughput is computed over
        # the measurement window only, so unstable (past-saturation)
        # runs are measured correctly without a full drain.
        inj.enabled = False
        for _ in range(self.drain):
            if net.in_flight_flits() == 0:
                break
            net.step()
        return summarize(
            stats, inj.rate, net.chain_stats(), net.cycle
        )


def run_simulation(
    config,
    pattern="uniform",
    rate=0.2,
    packet_length=1,
    lengths=None,
    warmup=1000,
    measure=3000,
    drain=2000,
    seed=None,
):
    """Build and execute one simulation; returns a :class:`SimResult`.

    ``lengths`` may be any PacketLengthDistribution; ``packet_length``
    is a convenience for fixed lengths. ``rate`` is in flits per
    terminal per cycle (the paper's unit).
    """
    if seed is not None:
        config.seed = seed
    net = Network(config)
    traffic_rng = random.Random(config.seed + 0x5EED)
    dist = lengths if lengths is not None else FixedLength(packet_length)
    pat = build_pattern(pattern, net.num_terminals, traffic_rng)
    injector = BernoulliInjector(net.num_terminals, pat, rate, dist, traffic_rng)
    run = SimulationRun(net, injector, warmup, measure, drain)
    return run.execute()
