"""Two-way multithreaded core model with memory-level parallelism.

Cores are "superscalar, out-of-order RISC CPUs ... two-way multithreaded
and allow a large number of outstanding memory requests" clocked 4x
faster than the network (Section 3). Each core has two thread contexts
sharing an issue width of two instructions per core cycle. An L1 miss
allocates an MSHR and — because the core is out-of-order — the thread
usually keeps issuing; it stalls only when the miss is *dependent*
(a configurable fraction, standing in for loads feeding the critical
path) or when its MSHRs are exhausted. IPC is committed instructions
per core cycle, the paper's metric.
"""

from repro.cmp.cache import SetAssociativeCache
from repro.cmp.coherence import Message, MessageType

#: Sentinel for a thread stalled on MSHR exhaustion rather than a line.
_STALL_CAP = object()


class Thread:
    __slots__ = ("tid", "blocked_on", "outstanding", "blocked_cycles")

    def __init__(self, tid):
        self.tid = tid
        self.blocked_on = None  # None | line | _STALL_CAP
        self.outstanding = set()  # lines with an MSHR allocated
        self.blocked_cycles = 0


class Core:
    """One CMP node: two hardware threads + private L1 + MSHRs."""

    ISSUE_WIDTH = 2
    THREADS = 2

    def __init__(self, node, profile, rng, l1=None,
                 l1_bytes=8 * 1024, l1_ways=4, line_bytes=32,
                 max_outstanding=8):
        self.node = node
        self.profile = profile
        self.rng = rng
        self.l1 = l1 or SetAssociativeCache(l1_bytes, l1_ways, line_bytes)
        self.threads = [Thread(i) for i in range(self.THREADS)]
        self.max_outstanding = max_outstanding
        self.instructions = 0
        self.core_cycles = 0
        # Private address region: disjoint per (node, thread). The
        # stride is 64 * 16411 lines: a multiple of the 64-way home
        # interleave (regions start at home 0 like real page-aligned
        # allocations) whose slice-local stride 16411 is odd, so
        # different threads' lines cycle through all L2 sets instead of
        # aliasing onto a few.
        self._private_base = [
            (node * self.THREADS + t) * 64 * 16411 for t in range(self.THREADS)
        ]

    # --- address generation ------------------------------------------------

    def _pick_line(self, thread):
        prof = self.profile
        if self.rng.random() < prof.shared_fraction:
            # Shared-region lines are home-mapped all over the chip.
            return (1 << 28) + self.rng.randrange(prof.shared_lines)
        return self._private_base[thread.tid] + self.rng.randrange(prof.working_set)

    # --- execution ----------------------------------------------------------

    def step_core_cycle(self):
        """Issue up to one instruction per thread; return request messages."""
        self.core_cycles += 1
        requests = []
        mem_p = self.profile.mem_probability(self.core_cycles)
        for thread in self.threads:
            if thread.blocked_on is not None:
                thread.blocked_cycles += 1
                continue
            self.instructions += 1
            if self.rng.random() >= mem_p:
                continue
            line = self._pick_line(thread)
            is_write = self.rng.random() < self.profile.write_fraction
            if self.l1.lookup(line):
                if is_write:
                    self.l1.mark_dirty(line)
                continue  # L1 hit: single-cycle, no traffic
            if line in thread.outstanding:
                continue  # MSHR merge: request already in flight
            # L1 miss: issue a coherence request.
            mtype = MessageType.GETX if is_write else MessageType.GETS
            requests.append(Message(mtype, line, self.node, self._home(line)))
            thread.outstanding.add(line)
            if self.rng.random() < self.profile.dependency_fraction:
                thread.blocked_on = line  # critical-path load: stall
            elif len(thread.outstanding) >= self.max_outstanding:
                thread.blocked_on = _STALL_CAP
        return requests

    def _home(self, line):
        raise NotImplementedError  # installed by CMPSystem

    # --- message handling -----------------------------------------------

    def receive(self, msg):
        """Handle a message delivered to this node's core/L1.

        Returns follow-up messages (owner forwards, inv acks, victim
        writebacks).
        """
        if msg.mtype is MessageType.DATA:
            return self._receive_data(msg)
        if msg.mtype is MessageType.FWD_GETS:
            # Downgrade: send the line to the requester and write back.
            self.l1.insert(msg.line, dirty=False)
            return [
                Message(MessageType.DATA, msg.line, self.node, msg.requester,
                        requester=msg.requester),
                Message(MessageType.WB, msg.line, self.node,
                        self._home(msg.line)),
            ]
        if msg.mtype is MessageType.FWD_GETX:
            self.l1.invalidate(msg.line)
            return [
                Message(MessageType.DATA, msg.line, self.node, msg.requester,
                        requester=msg.requester, exclusive=True),
            ]
        if msg.mtype is MessageType.INV:
            self.l1.invalidate(msg.line)
            return [
                Message(MessageType.INV_ACK, msg.line, self.node, msg.requester)
            ]
        if msg.mtype is MessageType.INV_ACK:
            return []  # counted as traffic; does not gate completion
        raise ValueError(f"core cannot handle {msg.mtype}")

    def _receive_data(self, msg):
        victim = self.l1.insert(msg.line, dirty=msg.exclusive)
        out = []
        if victim is not None and victim[1]:  # dirty eviction
            out.append(
                Message(MessageType.WB, victim[0], self.node,
                        self._home(victim[0]))
            )
        for thread in self.threads:
            thread.outstanding.discard(msg.line)
            if thread.blocked_on == msg.line:
                thread.blocked_on = None
            elif (
                thread.blocked_on is _STALL_CAP
                and len(thread.outstanding) < self.max_outstanding
            ):
                thread.blocked_on = None
        return out

    # --- metrics -----------------------------------------------------------

    @property
    def ipc(self):
        if self.core_cycles == 0:
            return 0.0
        return self.instructions / self.core_cycles
