"""Directory-based MESI-style coherence protocol.

One directory + L2 slice per core (Section 3); lines are home-mapped by
interleaving line addresses across the 64 nodes. The protocol generates
the paper's traffic character: short (single-flit at a 64-bit datapath)
control messages — requests, forwards, invalidations, acks — and 5-flit
data messages carrying 32-byte cache lines.

Flows (R = requester, H = home directory, O = owner, M = memory ctrl):

- GETS, dir I, L2 hit:   R->H GETS;  H->R DATA.
- GETS, dir I, L2 miss:  R->H GETS;  H->M MEMREQ;  M->R DATA (after
  DRAM latency); line filled into H's L2.
- GETS, dir S:           R->H GETS;  H->R DATA;  R added to sharers.
- GETS, dir M:           R->H GETS;  H->O FWD_GETS;  O->R DATA;
  O->H WB (data);  dir -> S {O, R}.
- GETX, dir I/S:         R->H GETX;  H->sharer INV each;
  sharer->R INV_ACK each;  H->R DATA (or via memory);  dir -> M {R}.
- GETX, dir M:           R->H GETX;  H->O FWD_GETX;  O->R DATA
  (O's L1 copy invalidated);  dir owner -> R.
- dirty L1 eviction:     R->H WB (data);  owner cleared, L2 filled.

The requesting thread resumes when its DATA message arrives; INV_ACKs
are modeled as network traffic (they are what makes short packets 53%
of the mix) but do not gate completion, which keeps the directory
non-blocking without transient-state deadlocks.
"""

import enum
from dataclasses import dataclass, field
from typing import Optional


class MessageType(enum.Enum):
    GETS = "gets"  # read request (control)
    GETX = "getx"  # write/upgrade request (control)
    FWD_GETS = "fwd_gets"  # forward read to owner (control)
    FWD_GETX = "fwd_getx"  # forward write to owner (control)
    INV = "inv"  # invalidate a sharer (control)
    INV_ACK = "inv_ack"  # sharer's ack to requester (control)
    DATA = "data"  # cache line (data)
    WB = "wb"  # writeback / downgrade with data (data)
    MEMREQ = "memreq"  # directory -> memory controller (control)

    @property
    def carries_data(self):
        return self in (MessageType.DATA, MessageType.WB)


@dataclass
class Message:
    mtype: MessageType
    line: int
    src: int  # terminal (node) index
    dest: int
    #: For DATA: the core whose request this satisfies (dest).
    #: For FWD_*: the original requester the owner must send DATA to.
    requester: Optional[int] = None
    #: True when this DATA completes a write (GETX) transaction.
    exclusive: bool = False


class DirectoryState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class DirEntry:
    state: DirectoryState = DirectoryState.INVALID
    owner: Optional[int] = None
    sharers: set = field(default_factory=set)


class Directory:
    """The directory + L2 slice co-located at one node.

    ``handle`` consumes a request message and returns the list of
    messages the node emits in response. Directory state is updated
    synchronously, so later requests observe the new owner/sharers.
    """

    def __init__(self, node, l2_cache, mem_controller_of, num_nodes=64):
        self.node = node
        self.l2 = l2_cache
        self.mem_controller_of = mem_controller_of  # fn(line) -> terminal
        # Lines are home-interleaved on their low bits, so the slice
        # indexes its sets with the bits *above* the interleaving bits;
        # indexing with the raw line would touch only sets congruent to
        # this node and waste almost the whole slice.
        self.num_nodes = num_nodes
        self.entries = {}

    def _slice_line(self, line):
        return line // self.num_nodes

    def l2_lookup(self, line, touch=True):
        return self.l2.lookup(self._slice_line(line), touch)

    def l2_insert(self, line, dirty=False):
        return self.l2.insert(self._slice_line(line), dirty)

    def entry(self, line):
        if line not in self.entries:
            self.entries[line] = DirEntry()
        return self.entries[line]

    def handle(self, msg):
        if msg.mtype is MessageType.GETS:
            return self._handle_gets(msg)
        if msg.mtype is MessageType.GETX:
            return self._handle_getx(msg)
        if msg.mtype is MessageType.WB:
            return self._handle_wb(msg)
        raise ValueError(f"directory cannot handle {msg.mtype}")

    def _data(self, line, dest, exclusive=False):
        return Message(MessageType.DATA, line, self.node, dest,
                       requester=dest, exclusive=exclusive)

    def _handle_gets(self, msg):
        e = self.entry(msg.line)
        r = msg.src
        if e.state is DirectoryState.MODIFIED:
            owner = e.owner
            e.state = DirectoryState.SHARED
            e.sharers = {owner, r}
            e.owner = None
            return [
                Message(MessageType.FWD_GETS, msg.line, self.node, owner,
                        requester=r)
            ]
        # I or S: serve from the L2 slice if present, else from memory.
        e.state = DirectoryState.SHARED
        e.sharers.add(r)
        if self.l2_lookup(msg.line):
            return [self._data(msg.line, r)]
        self.l2_insert(msg.line)
        return [
            Message(MessageType.MEMREQ, msg.line, self.node,
                    self.mem_controller_of(msg.line), requester=r)
        ]

    def _handle_getx(self, msg):
        e = self.entry(msg.line)
        r = msg.src
        out = []
        if e.state is DirectoryState.MODIFIED:
            owner = e.owner
            e.owner = r
            e.sharers = set()
            if owner == r:  # upgrade race: already owner
                return [self._data(msg.line, r, exclusive=True)]
            return [
                Message(MessageType.FWD_GETX, msg.line, self.node, owner,
                        requester=r)
            ]
        # Invalidate all other sharers.
        for sharer in sorted(e.sharers):
            if sharer != r:
                out.append(
                    Message(MessageType.INV, msg.line, self.node, sharer,
                            requester=r)
                )
        e.state = DirectoryState.MODIFIED
        e.owner = r
        e.sharers = set()
        if self.l2_lookup(msg.line):
            out.append(self._data(msg.line, r, exclusive=True))
        else:
            self.l2_insert(msg.line)
            out.append(
                Message(MessageType.MEMREQ, msg.line, self.node,
                        self.mem_controller_of(msg.line), requester=r,
                        exclusive=True)
            )
        return out

    def _handle_wb(self, msg):
        e = self.entry(msg.line)
        if e.state is DirectoryState.MODIFIED and e.owner == msg.src:
            e.state = DirectoryState.INVALID
            e.owner = None
        elif e.state is DirectoryState.SHARED:
            e.sharers.discard(msg.src)
            if not e.sharers:
                e.state = DirectoryState.INVALID
        self.l2_insert(msg.line, dirty=True)
        return []
