"""Cache-coherent CMP substrate for the application study (Table 1).

The paper evaluates packet chaining on a 64-core cache-coherent CMP
running PARSEC benchmarks under a proprietary Pin-based simulator. This
package is the documented substitution (DESIGN.md section 3.4): a
timing-model CMP whose cores execute parameterized synthetic
instruction streams through real L1/L2 caches and a directory MESI
protocol over the same simulated network, so the mechanism under test
(short coherence packets benefiting from chaining) is exercised
end-to-end.
"""

from repro.cmp.cache import SetAssociativeCache
from repro.cmp.coherence import Directory, Message, MessageType
from repro.cmp.workloads import WORKLOADS, WorkloadProfile
from repro.cmp.core_model import Core
from repro.cmp.system import CMPConfig, CMPSystem, run_application

__all__ = [
    "SetAssociativeCache",
    "Directory",
    "Message",
    "MessageType",
    "WORKLOADS",
    "WorkloadProfile",
    "Core",
    "CMPConfig",
    "CMPSystem",
    "run_application",
]
