"""The full CMP: 64 cores + caches + directories + memory controllers
glued to the simulated mesh network.

Matches Section 3's application methodology: 64 two-way multithreaded
cores clocked 4x faster than the network, private 8KB 4-way L1s
(single-cycle), a shared non-inclusive L2 of 32KB/core slices (5
cycles) with one directory slice per core, one memory controller per
mesh quadrant, a 64-bit network datapath (single-flit control packets,
5-flit data packets for 32-byte lines), packet chaining among all VCs
of the same input, and connections released after eight cycles.
"""

import heapq
import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.cmp.cache import SetAssociativeCache
from repro.cmp.coherence import Directory, MessageType
from repro.cmp.core_model import Core
from repro.cmp.workloads import WORKLOADS
from repro.network.config import mesh_config
from repro.network.flit import Packet
from repro.network.network import build_network
from repro.stats import StatsCollector


@dataclass
class CMPConfig:
    """Parameters of the CMP study (paper defaults)."""

    num_cores: int = 64
    core_clock_ratio: int = 4  # core cycles per network cycle
    datapath_bytes: int = 8  # 64-bit network datapath
    line_bytes: int = 32
    l1_bytes: int = 8 * 1024
    l1_ways: int = 4
    l2_bytes_per_core: int = 32 * 1024
    l2_ways: int = 4
    l2_latency_net_cycles: int = 2  # ~5 core cycles
    mem_latency_net_cycles: int = 25  # ~100 core cycles
    control_bytes: int = 8  # address + command

    @property
    def control_flits(self):
        return max(1, math.ceil(self.control_bytes / self.datapath_bytes))

    @property
    def data_flits(self):
        return max(
            1,
            math.ceil((self.control_bytes + self.line_bytes) / self.datapath_bytes),
        )

    def message_flits(self, mtype):
        return self.data_flits if mtype.carries_data else self.control_flits


class _DeliveryStats(StatsCollector):
    """Network stats collector that also dispatches delivered messages."""

    def __init__(self, num_terminals, system):
        super().__init__(num_terminals)
        self._system = system

    def record_ejected(self, packet, cycle):
        super().record_ejected(packet, cycle)
        if packet.payload is not None:
            self._system.deliver(packet.payload)


class CMPSystem:
    """Execution harness for one (workload, network config) pair."""

    def __init__(self, workload, net_config=None, cmp_config=None, seed=1):
        self.cmp = cmp_config or CMPConfig()
        if isinstance(workload, str):
            workload = WORKLOADS[workload]
        self.workload = workload

        net_config = net_config or mesh_config()
        if net_config.topology != "mesh" or net_config.mesh_k ** 2 != self.cmp.num_cores:
            raise ValueError("the CMP study runs on a mesh with one core per router")
        net_config.seed = seed
        self.stats = _DeliveryStats(self.cmp.num_cores, self)
        self.network = build_network(net_config, stats=self.stats)

        self.rng = random.Random(seed * 7919 + 13)
        # One memory controller at each quadrant center (Section 3).
        k = net_config.mesh_k
        lo, hi = k // 4, 3 * k // 4
        self.mem_controllers = [
            lo * k + lo, lo * k + hi, hi * k + lo, hi * k + hi,
        ]
        self._mem_queue = []  # heap of (ready_cycle, seq, message)
        self._outbox = []  # heap of (ready_cycle, seq, message) awaiting send
        self._seq = itertools.count()

        self.cores = []
        self.directories = []
        for node in range(self.cmp.num_cores):
            core = Core(
                node, workload, random.Random(seed * 104729 + node),
                l1=SetAssociativeCache(
                    self.cmp.l1_bytes, self.cmp.l1_ways, self.cmp.line_bytes
                ),
            )
            core._home = self._home
            self.cores.append(core)
            l2 = SetAssociativeCache(
                self.cmp.l2_bytes_per_core, self.cmp.l2_ways, self.cmp.line_bytes
            )
            self.directories.append(
                Directory(node, l2, self._mem_controller_of,
                          num_nodes=self.cmp.num_cores)
            )

        # Message accounting for the "53% single-flit" style checks.
        self.messages_sent = {m: 0 for m in MessageType}
        self._prewarm()

    def _prewarm(self):
        """Fill caches and directory state as after a long warm run.

        The paper's benchmarks run far past the cold-start transient;
        simulating that transient cycle-by-cycle would waste most of the
        simulation budget on memory-controller serialization that the
        study is not about. Pre-warming loads each thread's working set
        into the L2 slices (SHARED at the directory) and the most recent
        fraction into the owning L1.
        """
        from repro.cmp.coherence import DirectoryState

        l1_share = 256 // (2 * Core.THREADS)  # half the L1 per thread
        for core in self.cores:
            for thread in core.threads:
                base = core._private_base[thread.tid]
                ws = self.workload.working_set
                for offset in range(ws):
                    line = base + offset
                    home = self._home(line)
                    self.directories[home].l2_insert(line)
                    entry = self.directories[home].entry(line)
                    entry.state = DirectoryState.SHARED
                    entry.sharers.add(core.node)
                # The tail of the working set is L1-resident.
                for offset in range(max(0, ws - l1_share * Core.THREADS), ws):
                    core.l1.insert(base + offset)
        for line_off in range(self.workload.shared_lines):
            line = (1 << 28) + line_off
            self.directories[self._home(line)].l2_insert(line)

    # --- address mapping -------------------------------------------------

    def _home(self, line):
        return line % self.cmp.num_cores

    def _mem_controller_of(self, line):
        return self.mem_controllers[line % len(self.mem_controllers)]

    # --- message plumbing --------------------------------------------------

    def send(self, msg, delay=0):
        """Queue a message for injection after ``delay`` network cycles."""
        heapq.heappush(
            self._outbox, (self.network.cycle + delay, next(self._seq), msg)
        )

    def _flush_outbox(self):
        now = self.network.cycle
        while self._outbox and self._outbox[0][0] <= now:
            _, _, msg = heapq.heappop(self._outbox)
            self.messages_sent[msg.mtype] += 1
            if msg.src == msg.dest:
                self.deliver(msg)  # local slice: no network traversal
                continue
            packet = Packet(
                msg.src, msg.dest, self.cmp.message_flits(msg.mtype),
                self.network.cycle, payload=msg,
            )
            self.network.inject(packet)

    def deliver(self, msg):
        """A message reached its destination node: hand to the handler."""
        if msg.mtype is MessageType.MEMREQ:
            heapq.heappush(
                self._mem_queue,
                (
                    self.network.cycle + self.cmp.mem_latency_net_cycles,
                    next(self._seq),
                    msg,
                ),
            )
            return
        if msg.mtype in (MessageType.GETS, MessageType.GETX, MessageType.WB):
            responses = self.directories[msg.dest].handle(msg)
            delay = self.cmp.l2_latency_net_cycles
        else:
            responses = self.cores[msg.dest].receive(msg)
            delay = 0
        for resp in responses:
            self.send(resp, delay=delay)

    def _step_memory(self):
        from repro.cmp.coherence import Message

        now = self.network.cycle
        while self._mem_queue and self._mem_queue[0][0] <= now:
            _, _, req = heapq.heappop(self._mem_queue)
            ctrl = req.dest
            self.send(
                Message(
                    MessageType.DATA, req.line, ctrl, req.requester,
                    requester=req.requester, exclusive=req.exclusive,
                )
            )

    # --- execution -----------------------------------------------------------

    def step_network_cycle(self):
        for _ in range(self.cmp.core_clock_ratio):
            for core in self.cores:
                for msg in core.step_core_cycle():
                    self.send(msg)
        self._step_memory()
        self._flush_outbox()
        self.network.step()

    def run(self, net_cycles):
        for _ in range(net_cycles):
            self.step_network_cycle()

    # --- metrics ----------------------------------------------------------

    def aggregate_ipc(self):
        """Mean per-core IPC (instructions per core cycle)."""
        return sum(c.ipc for c in self.cores) / len(self.cores)

    def reset_ipc_counters(self):
        for core in self.cores:
            core.instructions = 0
            core.core_cycles = 0

    def single_flit_fraction(self):
        """Fraction of messages that are single-flit (paper: ~53%)."""
        total = sum(self.messages_sent.values())
        if total == 0:
            return 0.0
        short = sum(
            n
            for m, n in self.messages_sent.items()
            if self.cmp.message_flits(m) == 1
        )
        return short / total


def run_application(
    workload,
    net_config=None,
    cmp_config=None,
    warmup=500,
    measure=2000,
    seed=1,
):
    """Run one application on one network config; return measured IPC."""
    system = CMPSystem(workload, net_config, cmp_config, seed=seed)
    system.run(warmup)
    system.reset_ipc_counters()
    system.stats.set_window(system.network.cycle, system.network.cycle + measure)
    system.run(measure)
    return system
