"""Set-associative cache with LRU replacement (tags only).

Used for the private L1s (8KB, 4-way, 32B lines -> 64 sets) and the
shared L2 slices (32KB per core, 4-way). Only the tag array is modeled;
the simulator never moves data bytes.
"""

from collections import OrderedDict


class SetAssociativeCache:
    """LRU set-associative cache over line addresses."""

    def __init__(self, size_bytes, ways, line_bytes=32):
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("cache size must be a multiple of ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache has no sets")
        # Per set: OrderedDict mapping line address -> dirty flag,
        # ordered least- to most-recently used.
        self._sets = [OrderedDict() for _ in range(self.num_sets)]

    def _set_of(self, line):
        return self._sets[line % self.num_sets]

    def lookup(self, line, touch=True):
        """True on hit; refreshes LRU order if ``touch``."""
        s = self._set_of(line)
        if line not in s:
            return False
        if touch:
            s.move_to_end(line)
        return True

    def is_dirty(self, line):
        s = self._set_of(line)
        return s.get(line, False)

    def insert(self, line, dirty=False):
        """Insert a line; returns (evicted_line, evicted_dirty) or None."""
        s = self._set_of(line)
        if line in s:
            s[line] = s[line] or dirty
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.ways:
            victim = s.popitem(last=False)  # LRU
        s[line] = dirty
        return victim

    def mark_dirty(self, line):
        s = self._set_of(line)
        if line in s:
            s[line] = True
            s.move_to_end(line)

    def invalidate(self, line):
        """Drop a line; returns True if it was present."""
        s = self._set_of(line)
        return s.pop(line, None) is not None

    def occupancy(self):
        return sum(len(s) for s in self._sets)
