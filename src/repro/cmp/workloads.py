"""Synthetic workload profiles standing in for PARSEC + FFT.

The paper runs Blackscholes, Canneal, Dedup, Fluidanimate, Swaptions
(PARSEC) and a parallel FFT under Pin. Offline we cannot; instead each
benchmark is a :class:`WorkloadProfile` whose parameters reproduce the
published traffic character that drives the paper's Table 1 ordering:

- Blackscholes: the highest and burstiest network load (largest gain).
- Swaptions: heavy, bursty (second largest gain).
- FFT: all-to-all exchange phases (moderate gain).
- Dedup: moderate shared-data traffic.
- Fluidanimate: mostly L1-resident with neighbor sharing (small gain).
- Canneal: light network use in this configuration (no gain).

Parameters:
    mem_fraction       probability an instruction is a memory operation
    working_set        per-thread private working set, in cache lines
    shared_fraction    probability a reference targets the shared region
    shared_lines       size of the global shared region, in lines
    write_fraction     probability a memory reference is a store
    dependency_fraction  probability an L1 miss stalls its thread
                       (critical-path load); the rest overlap (OoO MLP)
    burst_period       cycles per activity phase pair (0 = steady)
    burst_duty         fraction of the period spent in the hot phase
    burst_intensity    multiplier on mem_fraction during the hot phase
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadProfile:
    name: str
    mem_fraction: float
    working_set: int
    shared_fraction: float
    shared_lines: int
    write_fraction: float
    dependency_fraction: float = 0.25
    burst_period: int = 0
    burst_duty: float = 0.5
    burst_intensity: float = 1.0

    def mem_probability(self, core_cycle):
        """Memory-op probability at a given core cycle (burst phases)."""
        if self.burst_period <= 0:
            return self.mem_fraction
        phase = (core_cycle % self.burst_period) / self.burst_period
        if phase < self.burst_duty:
            return min(1.0, self.mem_fraction * self.burst_intensity)
        return self.mem_fraction / self.burst_intensity


WORKLOADS = {
    "blackscholes": WorkloadProfile(
        name="blackscholes",
        mem_fraction=0.30,
        working_set=512,  # exceeds the 256-line L1; L2-resident
        shared_fraction=0.25,
        shared_lines=4096,
        write_fraction=0.30,
        dependency_fraction=0.20,
        burst_period=400,
        burst_duty=0.4,
        burst_intensity=2.5,
    ),
    "swaptions": WorkloadProfile(
        name="swaptions",
        mem_fraction=0.28,
        working_set=480,
        shared_fraction=0.15,
        shared_lines=4096,
        write_fraction=0.25,
        dependency_fraction=0.20,
        burst_period=500,
        burst_duty=0.4,
        burst_intensity=2.3,
    ),
    "fft": WorkloadProfile(
        name="fft",
        mem_fraction=0.22,
        working_set=320,
        shared_fraction=0.45,  # transpose/exchange phases hit remote homes
        shared_lines=8192,
        write_fraction=0.35,
        dependency_fraction=0.25,
        burst_period=600,
        burst_duty=0.5,
        burst_intensity=1.5,
    ),
    "dedup": WorkloadProfile(
        name="dedup",
        mem_fraction=0.20,
        working_set=320,
        shared_fraction=0.35,
        shared_lines=8192,
        write_fraction=0.20,
        dependency_fraction=0.25,
    ),
    "fluidanimate": WorkloadProfile(
        name="fluidanimate",
        mem_fraction=0.18,
        working_set=288,  # mostly fits the 256-line L1
        shared_fraction=0.20,
        shared_lines=2048,
        write_fraction=0.25,
        dependency_fraction=0.30,
    ),
    "canneal": WorkloadProfile(
        name="canneal",
        mem_fraction=0.10,  # light network use in this configuration
        working_set=224,
        shared_fraction=0.10,
        shared_lines=4096,
        write_fraction=0.10,
        dependency_fraction=0.30,
    ),
}
