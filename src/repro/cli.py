"""Command-line interface.

Examples::

    python -m repro run --topology mesh --pattern uniform --rate 0.45 \\
        --chaining same_input
    python -m repro sweep --rates 0.1 0.2 0.3 0.4 --chaining any_input
    python -m repro saturation --pattern tornado
    python -m repro cmp --workload blackscholes --chaining same_input \\
        --starvation-threshold 8
    python -m repro cost --radix 10
"""

import argparse
import sys

from repro.core.cost_model import AllocatorCostModel
from repro.network.config import NetworkConfig
from repro.sim.runner import run_simulation
from repro.sim.sweep import find_saturation
from repro.traffic import BimodalLength, FixedLength


def _add_network_args(parser):
    parser.add_argument("--config", default=None, metavar="FILE",
                        help="load a NetworkConfig JSON file "
                             "(other network flags are ignored)")
    parser.add_argument("--topology", default="mesh",
                        choices=["mesh", "fbfly", "torus", "cmesh"])
    parser.add_argument("--mesh-k", type=int, default=8)
    parser.add_argument("--allocator", default="islip1",
                        help="islip<k>, oslip<k>, pim<k>, wavefront, augmenting")
    parser.add_argument("--pc-allocator", default="islip1")
    parser.add_argument("--chaining", default="disabled",
                        choices=["disabled", "same_vc", "same_input", "any_input"])
    parser.add_argument("--starvation-threshold", type=int, default=None)
    parser.add_argument("--age-period", type=int, default=None)
    parser.add_argument("--num-vcs", type=int, default=4)
    parser.add_argument("--vc-buf-depth", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)


def _add_traffic_args(parser):
    parser.add_argument("--pattern", default="uniform")
    parser.add_argument("--packet-length", type=int, default=1)
    parser.add_argument("--bimodal", action="store_true",
                        help="1-/5-flit request-reply mix instead of fixed length")
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--measure", type=int, default=1500)
    parser.add_argument("--drain", type=int, default=1000)


def _config_from(args):
    if getattr(args, "config", None):
        return NetworkConfig.load(args.config)
    routing = "ugal" if args.topology == "fbfly" else "dor"
    return NetworkConfig(
        topology=args.topology,
        mesh_k=args.mesh_k,
        routing=routing,
        allocator=args.allocator,
        pc_allocator=args.pc_allocator,
        chaining=args.chaining,
        starvation_threshold=args.starvation_threshold,
        age_period=args.age_period,
        num_vcs=args.num_vcs,
        vc_buf_depth=args.vc_buf_depth,
        seed=args.seed,
    )


def _lengths_from(args):
    return BimodalLength(1, 5) if args.bimodal else FixedLength(args.packet_length)


def _print_result(result, out):
    cs = result.chain_stats
    out.write(
        f"offered rate      : {result.offered_rate:.3f} flits/node/cycle\n"
        f"accepted (mean)   : {result.avg_throughput:.3f}\n"
        f"accepted (min src): {result.min_throughput:.3f}\n"
        f"packet latency    : mean {result.packet_latency.mean:.1f}"
        f"  p50 {result.packet_latency.p50:.0f}"
        f"  p99 {result.packet_latency.p99:.0f}"
        f"  max {result.packet_latency.max:.0f}\n"
        f"blocking cycles   : mean {result.blocking.mean:.2f} per packet\n"
    )
    if cs.total_chains:
        out.write(
            f"chains            : {cs.total_chains}"
            f" (same VC {cs.same_input_same_vc},"
            f" same input {cs.same_input_other_vc},"
            f" other input {cs.other_input};"
            f" conflicts {cs.conflicts})\n"
        )


def cmd_run(args, out):
    result = run_simulation(
        _config_from(args), pattern=args.pattern, rate=args.rate,
        lengths=_lengths_from(args), warmup=args.warmup,
        measure=args.measure, drain=args.drain,
    )
    _print_result(result, out)
    return 0


def cmd_sweep(args, out):
    out.write(f"{'rate':>6} {'accepted':>9} {'min-src':>8} {'latency':>8}\n")
    for rate in args.rates:
        result = run_simulation(
            _config_from(args), pattern=args.pattern, rate=rate,
            lengths=_lengths_from(args), warmup=args.warmup,
            measure=args.measure, drain=0,
        )
        out.write(
            f"{rate:>6.2f} {result.avg_throughput:>9.3f}"
            f" {result.min_throughput:>8.3f}"
            f" {result.packet_latency.mean:>8.1f}\n"
        )
    return 0


def cmd_saturation(args, out):
    rate, tp = find_saturation(
        lambda: _config_from(args), pattern=args.pattern,
        lengths=_lengths_from(args), warmup=args.warmup,
        measure=args.measure, drain=0,
    )
    out.write(f"saturation rate   : {rate:.3f} flits/node/cycle\n")
    out.write(f"accepted at sat   : {tp:.3f}\n")
    return 0


def cmd_cmp(args, out):
    from repro.cmp import run_application

    system = run_application(
        args.workload, _config_from(args),
        warmup=args.warmup, measure=args.measure, seed=args.seed,
    )
    out.write(f"workload          : {args.workload}\n")
    out.write(f"IPC               : {system.aggregate_ipc():.4f}\n")
    out.write(f"network load      : {system.stats.avg_throughput():.3f}"
              f" flits/node/cycle\n")
    out.write(f"single-flit msgs  : {100 * system.single_flit_fraction():.0f}%\n")
    return 0


def cmd_cost(args, out):
    model = AllocatorCostModel(args.radix)
    out.write(f"{'allocator':<16} {'area':>6} {'power':>6} {'delay':>6}\n")
    for r in model.table():
        out.write(f"{r.name:<16} {r.area:>6.2f} {r.power:>6.2f} {r.delay:>6.2f}\n")
    rel = model.wavefront_vs_packet_chaining()
    out.write(f"wavefront vs packet chaining: {rel.power:.2f}x power,"
              f" {rel.area:.2f}x area, {rel.delay:.2f}x delay\n")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Packet chaining (MICRO 2011) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="one simulation, full result summary")
    _add_network_args(p)
    _add_traffic_args(p)
    p.add_argument("--rate", type=float, default=0.4)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", help="injection-rate sweep")
    _add_network_args(p)
    _add_traffic_args(p)
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.1, 0.2, 0.3, 0.4, 0.5])
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("saturation", help="binary-search the saturation rate")
    _add_network_args(p)
    _add_traffic_args(p)
    p.set_defaults(func=cmd_saturation)

    p = sub.add_parser("cmp", help="CMP application study (Table 1 setup)")
    _add_network_args(p)
    p.add_argument("--workload", default="blackscholes")
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--measure", type=int, default=1200)
    p.set_defaults(func=cmd_cmp)

    p = sub.add_parser("cost", help="Section 4.9 allocator cost model")
    p.add_argument("--radix", type=int, default=5)
    p.set_defaults(func=cmd_cost)

    return parser


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":
    raise SystemExit(main())
