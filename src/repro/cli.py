"""Command-line interface.

Examples::

    python -m repro run --topology mesh --pattern uniform --rate 0.45 \\
        --chaining same_input
    python -m repro run --rate 0.4 --trace out.jsonl \\
        --trace-filter event=sa_grant|pc_chain --metrics metrics.json
    python -m repro sweep --rates 0.1 0.2 0.3 0.4 --chaining any_input --json
    python -m repro run --rate 0.45 --trace out.jsonl.gz --artifacts runs/pc
    python -m repro spans out.jsonl.gz --perfetto spans.json
    python -m repro diff runs/baseline runs/pc --threshold 5
    python -m repro report out.jsonl
    python -m repro saturation --pattern tornado
    python -m repro cmp --workload blackscholes --chaining same_input \\
        --starvation-threshold 8
    python -m repro cost --radix 10
    python -m repro run --rate 0.2 --faults examples/faultplan.json \\
        --reliable --invariants strict --watchdog 2000
    python -m repro faults --random-links 2 --drop 0.0005 --rate 0.2
    python -m repro run --rate 0.4 --checkpoint ck.json.gz \\
        --checkpoint-every 500 --kill-at 1200
    python -m repro resume ck.json.gz --json
    python -m repro run --rate 0.4 --progress --json > result.json
    python -m repro sweep --rates 0.2 0.3 0.4 --telemetry /tmp/tel &
    python -m repro watch /tmp/tel
    python -m repro run --rate 0.4 --profile prof.json
    python -m repro report prof.json --collapsed stacks.txt
    python -m repro bench --quick
    python -m repro bench --quick --compare benchmarks/baselines/bench_trend.json
    python -m repro serve /tmp/svc --workers 4 &
    python -m repro serve /tmp/svc --submit-sweep 0.1 0.2 0.3 --mesh-k 4
    python -m repro serve /tmp/svc --submit examples/jobspec.json
    python -m repro serve /tmp/svc --status
"""

import argparse
import json
import sys

from repro.checkpoint import CheckpointError, SimulationKilled
from repro.core.cost_model import AllocatorCostModel
from repro.faults import (
    FaultController,
    FaultPlan,
    HangWatchdog,
    InvariantChecker,
    ReliableTransport,
)
from repro.network.config import NetworkConfig
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    NetworkSampler,
    PhaseProfiler,
    RunTelemetry,
    TraceBus,
    TraceFilter,
    build_spans,
    collapsed_from_dict,
    compare_artifacts,
    format_diff,
    format_profile_report,
    format_report,
    format_spans_report,
    is_profile_dict,
    read_jsonl,
    summarize_trace,
    write_run_artifacts,
    write_sweep_manifest,
)
from repro.obs.watch import watch as watch_telemetry
from repro.obs.artifacts import rate_subdir
from repro.sim.runner import resume_simulation, run_simulation
from repro.sim.sweep import find_saturation
from repro.traffic import BimodalLength, FixedLength


def _add_network_args(parser):
    parser.add_argument("--config", default=None, metavar="FILE",
                        help="load a NetworkConfig JSON file "
                             "(other network flags are ignored)")
    parser.add_argument("--topology", default="mesh",
                        choices=["mesh", "fbfly", "torus", "cmesh"])
    parser.add_argument("--mesh-k", type=int, default=8)
    parser.add_argument("--allocator", default="islip1",
                        help="islip<k>, oslip<k>, pim<k>, wavefront, augmenting")
    parser.add_argument("--pc-allocator", default="islip1")
    parser.add_argument("--chaining", default="disabled",
                        choices=["disabled", "same_vc", "same_input", "any_input"])
    parser.add_argument("--starvation-threshold", type=int, default=None)
    parser.add_argument("--age-period", type=int, default=None)
    parser.add_argument("--num-vcs", type=int, default=4)
    parser.add_argument("--vc-buf-depth", type=int, default=8)
    parser.add_argument("--backend", default="reference",
                        choices=["reference", "fast"],
                        help="simulation core: 'fast' is the bit-identical "
                             "structure-of-arrays core (repro.fastcore)")
    parser.add_argument("--seed", type=int, default=1)


def _add_traffic_args(parser):
    parser.add_argument("--pattern", default="uniform")
    parser.add_argument("--packet-length", type=int, default=1)
    parser.add_argument("--bimodal", action="store_true",
                        help="1-/5-flit request-reply mix instead of fixed length")
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--measure", type=int, default=1500)
    parser.add_argument("--drain", type=int, default=1000)


def _config_from(args):
    if getattr(args, "config", None):
        return NetworkConfig.load(args.config)
    routing = "ugal" if args.topology == "fbfly" else "dor"
    return NetworkConfig(
        topology=args.topology,
        mesh_k=args.mesh_k,
        routing=routing,
        allocator=args.allocator,
        pc_allocator=args.pc_allocator,
        chaining=args.chaining,
        starvation_threshold=args.starvation_threshold,
        age_period=args.age_period,
        num_vcs=args.num_vcs,
        vc_buf_depth=args.vc_buf_depth,
        backend=getattr(args, "backend", "reference"),
        seed=args.seed,
    )


def _add_obs_args(parser, recorder=True):
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL event trace (see 'repro report')")
    parser.add_argument("--trace-filter", default=None, metavar="EXPR",
                        help="filter trace events, e.g. "
                             "'router=3|12,event=sa_grant|pc_chain'")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="export run metrics (.prom/.txt: Prometheus "
                             "text format, otherwise JSON)")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="profile router pipeline phases to a JSON file "
                             "(see 'repro report')")
    parser.add_argument("--profile-epoch", type=int, default=1000,
                        help="profiling epoch length in cycles")
    parser.add_argument("--progress", action="store_true",
                        help="single-line live heartbeat (cycle, cycles/sec, "
                             "ETA) on stderr; stdout stays clean for --json")
    parser.add_argument("--heartbeat", default=None, metavar="FILE",
                        help="append fsynced telemetry heartbeat records to "
                             "a JSONL file (obs.telemetry)")
    parser.add_argument("--heartbeat-every", type=int, default=1000,
                        metavar="N", help="cycles between heartbeats "
                        "(with --progress/--heartbeat/--telemetry)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    if recorder:
        _add_recorder_args(parser)


def _add_recorder_args(parser, sampling=True):
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write a self-describing run-artifact directory "
                             "(manifest, summary, metrics; see 'repro diff')")
    if sampling:
        parser.add_argument("--samples", default=None, metavar="FILE",
                            help="record periodic network-state samples to "
                                 "JSONL (.gz compresses)")
        parser.add_argument("--sample-period", type=int, default=100,
                            metavar="N", help="cycles between network-state "
                            "samples (with --samples/--artifacts)")


def _obs_from(args):
    """Build (bus, profiler, metrics, sampler, telemetry) from CLI flags."""
    bus = None
    if args.trace:
        filt = TraceFilter.parse(args.trace_filter) if args.trace_filter else None
        bus = TraceBus(filter=filt)
        bus.attach(JsonlSink(args.trace))
    profiler = PhaseProfiler(args.profile_epoch) if args.profile else None
    artifacts = getattr(args, "artifacts", None)
    registry = (
        MetricsRegistry()
        if (args.metrics or args.json or artifacts)
        else None
    )
    samples = getattr(args, "samples", None)
    sampler = (
        NetworkSampler(period=args.sample_period)
        if (samples or artifacts)
        else None
    )
    telemetry = None
    if args.progress or args.heartbeat:
        telemetry = RunTelemetry(
            path=args.heartbeat, every=args.heartbeat_every,
            console=sys.stderr if args.progress else None,
            rate=getattr(args, "rate", None),
        )
    return bus, profiler, registry, sampler, telemetry


def _add_fault_args(parser):
    parser.add_argument("--faults", default=None, metavar="FILE",
                        help="inject faults from a FaultPlan JSON file")
    parser.add_argument("--reliable", action="store_true",
                        help="end-to-end reliable delivery (seq numbers, "
                             "acks, bounded retransmission)")
    parser.add_argument("--reliable-timeout", type=int, default=512,
                        metavar="CYCLES", help="retransmission timeout")
    parser.add_argument("--reliable-retries", type=int, default=4,
                        metavar="N", help="retry budget per packet")
    parser.add_argument("--invariants", default="off",
                        choices=["off", "strict", "report"],
                        help="runtime invariant checking (credit/flit "
                             "conservation, buffer bounds, connections)")
    parser.add_argument("--invariant-period", type=int, default=64,
                        metavar="N", help="cycles between invariant sweeps")
    parser.add_argument("--watchdog", type=int, default=0, metavar="CYCLES",
                        help="deadlock/livelock watchdog window (0 = off)")
    parser.add_argument("--watchdog-dump", default=None, metavar="FILE",
                        help="write the watchdog's diagnostic bundle here "
                             "on a hang")


def _faults_from(args):
    """Build (controller, transport, invariants, watchdog) from flags."""
    controller = None
    if args.faults:
        controller = FaultController(FaultPlan.load(args.faults))
    transport = None
    if args.reliable:
        transport = ReliableTransport(
            timeout=args.reliable_timeout, max_retries=args.reliable_retries
        )
    checker = None
    if args.invariants != "off":
        checker = InvariantChecker(
            period=args.invariant_period, mode=args.invariants
        )
    watchdog = None
    if args.watchdog:
        watchdog = HangWatchdog(
            window=args.watchdog, dump_path=args.watchdog_dump
        )
    return controller, transport, checker, watchdog


def _print_fault_summary(result, out):
    parts = result.faults or {}
    inj = parts.get("injection")
    if inj:
        out.write(
            f"faults            : {inj['failed_links']} link,"
            f" {inj['failed_routers']} router;"
            f" {inj['dropped_flits']} flits dropped,"
            f" {inj['corrupted_flits']} corrupted,"
            f" {inj['killed_packets']} packets killed,"
            f" {inj['detours']} detours\n"
        )
    tx = parts.get("transport")
    if tx:
        out.write(
            f"reliability       : {tx['delivered']}/{tx['tracked']}"
            f" delivered, {tx['retransmissions']} retransmissions,"
            f" {tx['duplicates']} duplicates, {tx['failed']} failed\n"
        )
    inv = parts.get("invariants")
    if inv:
        out.write(
            f"invariants        : {inv['checks_run']} sweeps"
            f" ({inv['mode']}), {inv['violations']} violations\n"
        )
    wd = parts.get("watchdog")
    if wd:
        out.write(
            f"watchdog          : window {wd['window']},"
            f" {wd['hangs']} hangs\n"
        )


def _run_info_from(args, command):
    """The reproduction block of an artifact manifest."""
    info = {
        "command": command,
        "pattern": args.pattern,
        "warmup": args.warmup,
        "measure": args.measure,
    }
    if hasattr(args, "drain"):
        info["drain"] = args.drain
    if getattr(args, "bimodal", False):
        info["lengths"] = "bimodal(1,5)"
    else:
        info["packet_length"] = args.packet_length
    if hasattr(args, "rate"):
        info["rate"] = args.rate
    if hasattr(args, "rates"):
        info["rates"] = list(args.rates)
    return info


def _finish_obs(args, bus, profiler):
    if bus is not None:
        bus.close()
    if profiler is not None:
        profiler.save(args.profile)


def _save_metrics(registry, path):
    if path.endswith((".prom", ".txt")):
        registry.save_prometheus(path)
    else:
        registry.save_json(path)


def _lengths_from(args):
    return BimodalLength(1, 5) if args.bimodal else FixedLength(args.packet_length)


def _print_result(result, out):
    cs = result.chain_stats
    out.write(
        f"offered rate      : {result.offered_rate:.3f} flits/node/cycle\n"
        f"accepted (mean)   : {result.avg_throughput:.3f}\n"
        f"accepted (min src): {result.min_throughput:.3f}\n"
        f"packet latency    : mean {result.packet_latency.mean:.1f}"
        f"  p50 {result.packet_latency.p50:.0f}"
        f"  p99 {result.packet_latency.p99:.0f}"
        f"  max {result.packet_latency.max:.0f}\n"
        f"blocking cycles   : mean {result.blocking.mean:.2f} per packet\n"
    )
    if cs.total_chains:
        out.write(
            f"chains            : {cs.total_chains}"
            f" (same VC {cs.same_input_same_vc},"
            f" same input {cs.same_input_other_vc},"
            f" other input {cs.other_input};"
            f" conflicts {cs.conflicts})\n"
        )


def _digest_from(args):
    """Build a DigestRecorder from --digest/--digest-every, or None."""
    if not getattr(args, "digest", None):
        return None
    from repro.obs.digest import DigestRecorder

    return DigestRecorder(every=args.digest_every, path=args.digest)


def _print_digest_line(args, digester, out):
    if digester is not None:
        out.write(
            f"digest stream     : {args.digest}"
            f" ({digester.digests_taken} digests, fingerprint"
            f" {digester.fingerprint[:16]})\n"
        )


def _print_alloc_efficiency(registry, out):
    """One grant-efficiency line per active allocation stage."""
    if registry is None:
        return
    data = registry.to_dict()
    counters, gauges = data["counters"], data["gauges"]
    parts = []
    for role, label in (("sa", "SA"), ("pc", "PC"), ("vc", "VC")):
        requests = counters.get(f"{role}_alloc_requests", 0)
        if not requests:
            continue
        grants = counters.get(f"{role}_alloc_grants", 0)
        eff = gauges.get(f"{role}_grant_efficiency", 0.0)
        parts.append(f"{label} {eff:.3f} ({grants}/{requests})")
    if parts:
        out.write(f"grant efficiency  : {', '.join(parts)}\n")


def cmd_run(args, out):
    bus, profiler, registry, sampler, telemetry = _obs_from(args)
    config = _config_from(args)
    controller, transport, checker, watchdog = _faults_from(args)
    digester = _digest_from(args)
    try:
        result = run_simulation(
            config, pattern=args.pattern, rate=args.rate,
            lengths=_lengths_from(args), warmup=args.warmup,
            measure=args.measure, drain=args.drain,
            trace=bus, profiler=profiler, metrics=registry, sampler=sampler,
            telemetry=telemetry,
            faults=controller, transport=transport, invariants=checker,
            watchdog=watchdog,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.resume, kill_at=args.kill_at,
            digest=digester,
        )
    except SimulationKilled as exc:
        _finish_obs(args, bus, profiler)
        out.write(f"repro run: {exc}\n")
        if args.checkpoint:
            out.write(f"checkpoint        : {args.checkpoint}\n")
        return 4
    except CheckpointError as exc:
        _finish_obs(args, bus, profiler)
        out.write(f"repro run: {exc}\n")
        return 2
    _finish_obs(args, bus, profiler)
    if args.samples:
        sampler.save_jsonl(args.samples)
    if args.artifacts:
        span_set = None
        if args.trace:
            # The trace is on disk and closed; rebuild spans from it so
            # the artifact carries the latency decomposition.
            span_set = build_spans(read_jsonl(args.trace))
            span_set.publish_metrics(registry)
        write_run_artifacts(
            args.artifacts, config, result, registry=registry,
            run_info=_run_info_from(args, "run"),
            sampler=sampler, span_set=span_set,
        )
    if args.metrics:
        _save_metrics(registry, args.metrics)
    if args.json:
        payload = result.to_dict()
        payload["metrics"] = registry.to_dict()
        if digester is not None:
            payload["digest"] = {
                "path": args.digest,
                "digests": digester.digests_taken,
                "fingerprint": digester.fingerprint,
            }
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        _print_result(result, out)
        _print_alloc_efficiency(registry, out)
        if result.drained is not None:
            state = "complete" if result.drained else "INCOMPLETE"
            out.write(
                f"drain             : {state} after {result.drain_cycles}"
                f" cycles\n"
            )
        if result.timing is not None:
            out.write(
                f"simulation speed  : {result.timing['cycles_per_sec']:.0f}"
                f" cycles/sec\n"
            )
        _print_digest_line(args, digester, out)
        _print_fault_summary(result, out)
    return 0


def cmd_resume(args, out):
    """Resume a checkpointed run and drive it to completion."""
    bus, profiler, registry, sampler, telemetry = _obs_from(args)
    digester = _digest_from(args)
    try:
        result = resume_simulation(
            args.checkpoint_file, trace=bus, profiler=profiler,
            metrics=registry, sampler=sampler, telemetry=telemetry,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            kill_at=args.kill_at,
            digest=digester,
        )
    except SimulationKilled as exc:
        _finish_obs(args, bus, profiler)
        out.write(f"repro resume: {exc}\n")
        return 4
    except (CheckpointError, OSError) as exc:
        out.write(f"repro resume: {exc}\n")
        return 2
    _finish_obs(args, bus, profiler)
    if args.metrics:
        _save_metrics(registry, args.metrics)
    if args.json:
        payload = result.to_dict()
        payload["metrics"] = registry.to_dict()
        if digester is not None:
            payload["digest"] = {
                "path": args.digest,
                "digests": digester.digests_taken,
                "fingerprint": digester.fingerprint,
            }
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        _print_result(result, out)
        _print_alloc_efficiency(registry, out)
        _print_digest_line(args, digester, out)
    return 0


def cmd_faults(args, out):
    """Fault-injection study: run a plan, report resilience."""
    from repro.faults.watchdog import WatchdogError

    config = _config_from(args)
    if args.plan:
        plan = FaultPlan.load(args.plan)
    else:
        plan = _random_plan(args, config)
    if args.save_plan:
        plan.save(args.save_plan)
        if not args.plan:
            out.write(f"fault plan        : saved to {args.save_plan}\n")
    controller = FaultController(plan)
    transport = (
        None if args.unreliable
        else ReliableTransport(timeout=args.reliable_timeout,
                               max_retries=args.reliable_retries)
    )
    checker = (
        None if args.invariants == "off"
        else InvariantChecker(period=args.invariant_period,
                              mode=args.invariants)
    )
    watchdog = HangWatchdog(
        window=args.watchdog, dump_path=args.watchdog_dump
    ) if args.watchdog else None
    try:
        result = run_simulation(
            config, pattern=args.pattern, rate=args.rate,
            lengths=_lengths_from(args), warmup=args.warmup,
            measure=args.measure, drain=args.drain,
            faults=controller, transport=transport, invariants=checker,
            watchdog=watchdog,
        )
    except WatchdogError as exc:
        out.write(f"repro faults: {exc}\n")
        if args.watchdog_dump:
            out.write(f"diagnostics       : {args.watchdog_dump}\n")
        return 3
    if args.json:
        payload = result.to_dict()
        payload["plan"] = plan.to_dict()
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
        return 0
    _print_result(result, out)
    if result.drained is not None:
        state = "complete" if result.drained else "INCOMPLETE"
        out.write(
            f"drain             : {state} after {result.drain_cycles} cycles\n"
        )
    _print_fault_summary(result, out)
    tx = (result.faults or {}).get("transport")
    if tx and tx["failed"]:
        return 1
    return 0


def _random_plan(args, config):
    """A seeded random plan: N link faults + the background error rates."""
    import random as _random

    from repro.faults.plan import FlitErrors, LinkFault
    from repro.network.network import Network

    topo = Network(config).topology
    rng = _random.Random(args.seed)
    wired = [
        (r, p)
        for r in range(topo.num_routers)
        for p in range(topo.radix(r))
        if topo.link(r, p) is not None
    ]
    links = [
        LinkFault(r, p, cycle=rng.randrange(0, max(1, args.warmup)))
        for r, p in rng.sample(wired, min(args.random_links, len(wired)))
    ]
    errors = None
    if args.drop or args.corrupt:
        errors = FlitErrors(drop=args.drop, corrupt=args.corrupt)
    return FaultPlan(seed=args.seed, links=links, flit_errors=errors)


def cmd_sweep(args, out):
    import os

    from repro.sim.sweep import rate_sweep

    want_metrics = args.json or args.artifacts
    results = rate_sweep(
        lambda: _config_from(args), args.rates,
        metrics_factory=MetricsRegistry if want_metrics else None,
        telemetry_dir=args.telemetry, heartbeat_every=args.heartbeat_every,
        pattern=args.pattern, lengths=_lengths_from(args),
        warmup=args.warmup, measure=args.measure, drain=0,
    )
    if not want_metrics:
        results = [(rate, result, None) for rate, result in results]
    if args.artifacts:
        config = _config_from(args)
        write_sweep_manifest(
            args.artifacts, config, args.rates,
            run_info=_run_info_from(args, "sweep"),
        )
        for rate, result, registry in results:
            write_run_artifacts(
                os.path.join(args.artifacts, rate_subdir(rate)),
                config, result, registry=registry,
                run_info=dict(_run_info_from(args, "sweep"), rate=rate),
            )
    if args.json:
        rows = []
        for rate, result, registry in results:
            payload = result.to_dict()
            payload["rate"] = rate
            payload["metrics"] = registry.to_dict()
            rows.append(payload)
        json.dump(rows, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(f"{'rate':>6} {'accepted':>9} {'min-src':>8} {'latency':>8}\n")
        for rate, result, _ in results:
            out.write(
                f"{rate:>6.2f} {result.avg_throughput:>9.3f}"
                f" {result.min_throughput:>8.3f}"
                f" {result.packet_latency.mean:>8.1f}\n"
            )
    return 0


def _try_load_profile(path):
    """Parsed profile dict if ``path`` is a PhaseProfiler JSON, else None."""
    if path == "-":
        return None
    try:
        with open(path, "rb") as fh:
            if fh.read(1) not in (b"{", b""):
                return None
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return data if is_profile_dict(data) else None


def _try_load_metrics(path):
    """Parsed metrics dict if ``path`` is a run --metrics JSON, else None."""
    if path == "-":
        return None
    try:
        with open(path, "rb") as fh:
            if fh.read(1) not in (b"{", b""):
                return None
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(data, dict) and "counters" in data and "gauges" in data:
        return data
    return None


def cmd_report(args, out):
    profile = _try_load_profile(args.tracefile)
    if profile is not None:
        out.write(format_profile_report(profile, top=args.top))
        if args.collapsed:
            with open(args.collapsed, "w") as fh:
                for line in collapsed_from_dict(profile):
                    fh.write(line + "\n")
            out.write(f"collapsed stacks  : {args.collapsed}"
                      " (flamegraph.pl / speedscope compatible)\n")
        return 0
    metrics = _try_load_metrics(args.tracefile)
    if metrics is not None:
        from repro.obs.report import format_metrics_report

        out.write(format_metrics_report(metrics, top=args.top))
        return 0
    if args.collapsed:
        out.write("repro report: --collapsed needs a profile JSON "
                  "(written by run --profile)\n")
        return 2
    events = read_jsonl(args.tracefile)
    out.write(format_report(summarize_trace(events), top=args.top))
    return 0


def cmd_spans(args, out):
    span_set = build_spans(read_jsonl(args.tracefile))
    if args.perfetto:
        span_set.save_chrome_trace(args.perfetto, limit=args.limit)
    if args.json:
        json.dump(span_set.decomposition(), out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(format_spans_report(span_set, top=args.top))
        if args.perfetto:
            out.write(f"perfetto trace    : {args.perfetto}\n")
    return 0


def cmd_diff(args, out):
    try:
        diff = compare_artifacts(args.base, args.new, args.threshold)
    except (ValueError, OSError) as exc:
        out.write(f"repro diff: {exc}\n")
        return 2
    if args.json:
        json.dump(diff.to_dict(), out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(format_diff(diff))
    return 1 if diff.regressions else 0


def _print_divergence(report, out):
    out.write(f"verdict           : DIVERGED at cycle {report['cycle']}\n")
    last_match = report.get("last_match_cycle")
    if last_match is not None:
        out.write(f"last match        : cycle {last_match}\n")
    components = report.get("components", [])
    if components:
        out.write(f"components        : {', '.join(components)}\n")
    elif report.get("uncovered_cycles"):
        missing = report["uncovered_cycles"]
        out.write(
            f"run length        : live run ended at cycle"
            f" {report['cycle']}; stream records {len(missing)} later"
            f" cycle(s) (first: {missing[0]})\n"
        )
    diffs = report.get("diffs") or {}
    digests = report.get("digests") or {}
    for path in components:
        for entry in diffs.get(path, [])[:5]:
            out.write(
                f"  {path}.{entry['key']}:"
                f" {entry['a']!r} != {entry['b']!r}\n"
            )
        if path not in diffs and path in digests:
            pair = digests[path]
            out.write(
                f"  {path}: digest {str(pair['a'])[:12]}"
                f" != {str(pair['b'])[:12]}\n"
            )
    soa = report.get("soa_consistent") or {}
    for side in ("a", "b"):
        if soa.get(side) is False:
            out.write(
                f"soa parity        : side {side} SoA export drifted from"
                f" its state_dict (fastcore bookkeeping bug)\n"
            )


def cmd_diverge(args, out):
    """Lockstep differential run; bisect the first divergent cycle."""
    import dataclasses

    from repro.obs import lockstep
    from repro.obs.digest import read_digest_stream

    if args.vs_config and args.vs_backend:
        out.write("repro diverge: --vs-config and --vs-backend are "
                  "mutually exclusive\n")
        return 2
    config_a = _config_from(args)
    spec = dict(
        pattern=args.pattern, rate=args.rate, lengths=_lengths_from(args),
        warmup=args.warmup, measure=args.measure, drain=args.drain,
        trace_events=args.events,
    )
    try:
        if args.vs_digests:
            stream = read_digest_stream(args.vs_digests)
            recorded = (stream.header or {}).get("config")
            if recorded is not None:
                mine = config_a.to_dict()
                mine.pop("backend", None)
                if mine != recorded:
                    out.write(
                        "repro diverge: network config does not match the"
                        " recorded stream's (refusing to compare different"
                        " experiments)\n"
                    )
                    return 2
            side = lockstep.LockstepSide(
                f"backend:{config_a.backend}", config_a, **spec
            )
            report = lockstep.run_vs_stream(side, stream)
        else:
            if args.vs_config:
                config_b = NetworkConfig.load(args.vs_config)
                label_b = f"config:{args.vs_config}"
            else:
                vs_backend = args.vs_backend or (
                    "reference" if config_a.backend == "fast" else "fast"
                )
                config_b = dataclasses.replace(config_a, backend=vs_backend)
                label_b = f"backend:{vs_backend}"
            report = lockstep.find_divergence(
                lockstep.side_factory(
                    f"backend:{config_a.backend}", config_a, **spec
                ),
                lockstep.side_factory(label_b, config_b, **spec),
                every=args.digest_every,
            )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        out.write(f"repro diverge: {exc}\n")
        return 2
    if report is None:
        if args.json:
            json.dump({"verdict": "identical"}, out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            out.write("verdict           : IDENTICAL"
                      " (no digest mismatch at any compared cycle)\n")
        return 0
    if args.report:
        from repro.obs.artifacts import atomic_write

        with atomic_write(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        _print_divergence(report, out)
        if args.report:
            out.write(f"report            : {args.report}\n")
    return 1


def cmd_watch(args, out):
    """Live dashboard over a run/sweep telemetry directory."""
    if args.json:
        from repro.obs.watch import scan_telemetry_dir

        try:
            state = scan_telemetry_dir(args.directory,
                                       stale_after=args.stale_after)
        except FileNotFoundError as exc:
            out.write(f"repro watch: {exc}\n")
            return 2
        payload = {
            "directory": state.directory,
            "all_finished": state.all_finished,
            "counts": state.counts,
            "aggregate_cycles_per_sec": state.aggregate_cycles_per_sec,
            "eta_sec": state.eta_sec,
            "points": [
                {
                    "index": p.index, "label": p.label, "rate": p.rate,
                    "status": p.status, "cycle": p.cycle,
                    "total_cycles": p.total_cycles,
                    "progress": p.progress,
                    "cycles_per_sec": p.cycles_per_sec,
                    "eta_sec": p.eta_sec, "rss_kb": p.rss_kb,
                    "wall_seconds": p.wall_seconds, "worker": p.pid,
                }
                for p in state.points
            ],
        }
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
        return 1 if (payload["counts"].get("failed", 0)
                     + payload["counts"].get("killed", 0)
                     + payload["counts"].get("stalled?", 0)) else 0
    return watch_telemetry(
        args.directory, out, follow=not args.once, interval=args.interval,
        stale_after=args.stale_after,
    )


def cmd_bench(args, out):
    """Standardized throughput suite + the perf-trend gate."""
    from repro import bench

    history_path = args.history or bench.default_history_path()

    def progress(name):
        sys.stderr.write(f"bench: {name}...\n")
        sys.stderr.flush()

    entry = bench.run_suite(
        quick=args.quick, scale=args.scale, repeats=args.repeats,
        progress=progress if not args.json else None,
    )
    comparison = None
    if args.compare is not None:
        # Explicit reference file (e.g. a checked-in trend baseline),
        # or the existing history when --compare is given bare.
        ref_path = args.compare or history_path
        try:
            reference = bench.reference_cases(
                bench.load_history(ref_path),
                metric="cycles_per_sec" if args.raw else "normalized",
            )
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            out.write(f"repro bench: bad reference {ref_path}: {exc}\n")
            return 2
        if not reference:
            out.write(f"repro bench: no reference entries in {ref_path}\n")
            return 2
        comparison = bench.compare_entries(
            entry, reference, threshold=args.threshold,
            metric="cycles_per_sec" if args.raw else "normalized",
        )
    if not args.no_append:
        bench.append_history(history_path, entry)
    if args.json:
        payload = {"entry": entry, "history": history_path}
        if comparison is not None:
            payload["comparison"] = comparison.to_dict()
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(bench.format_entry(entry))
        if not args.no_append:
            out.write(f"history           : {history_path}\n")
        if comparison is not None:
            out.write("\n")
            out.write(bench.format_comparison(comparison))
    return 1 if comparison is not None and not comparison.ok else 0


def cmd_saturation(args, out):
    rate, tp = find_saturation(
        lambda: _config_from(args), pattern=args.pattern,
        lengths=_lengths_from(args), warmup=args.warmup,
        measure=args.measure, drain=0,
    )
    out.write(f"saturation rate   : {rate:.3f} flits/node/cycle\n")
    out.write(f"accepted at sat   : {tp:.3f}\n")
    return 0


def cmd_cmp(args, out):
    from repro.cmp import run_application

    system = run_application(
        args.workload, _config_from(args),
        warmup=args.warmup, measure=args.measure, seed=args.seed,
    )
    out.write(f"workload          : {args.workload}\n")
    out.write(f"IPC               : {system.aggregate_ipc():.4f}\n")
    out.write(f"network load      : {system.stats.avg_throughput():.3f}"
              f" flits/node/cycle\n")
    out.write(f"single-flit msgs  : {100 * system.single_flit_fraction():.0f}%\n")
    return 0


def cmd_cost(args, out):
    model = AllocatorCostModel(args.radix)
    out.write(f"{'allocator':<16} {'area':>6} {'power':>6} {'delay':>6}\n")
    for r in model.table():
        out.write(f"{r.name:<16} {r.area:>6.2f} {r.power:>6.2f} {r.delay:>6.2f}\n")
    rel = model.wavefront_vs_packet_chaining()
    out.write(f"wavefront vs packet chaining: {rel.power:.2f}x power,"
              f" {rel.area:.2f}x area, {rel.delay:.2f}x delay\n")
    return 0


def _shard_chaos_from(args):
    """Fault-injection plumbing for CI smoke: one chaos dict for one
    shard, built from the --chaos-* flags."""
    chaos = {}
    if args.chaos_kill_cycle is not None:
        chaos["sigkill_at_cycle"] = args.chaos_kill_cycle
    if args.chaos_kill_publish_window is not None:
        chaos["sigkill_on_publish_window"] = args.chaos_kill_publish_window
    if args.chaos_wedge_window is not None:
        chaos["wedge_at_window"] = args.chaos_wedge_window
    if not chaos:
        return None
    return {args.chaos_shard: chaos}


def cmd_shard(args, out):
    from repro.parallel import shard_run, single_process_run
    from repro.parallel.coordinator import ShardRunError
    from repro.parallel.partition import ShardPlanError

    config = _config_from(args)
    kwargs = dict(
        pattern=args.pattern, rate=args.rate, lengths=_lengths_from(args),
        warmup=args.warmup, measure=args.measure, drain=args.drain,
    )
    try:
        res = shard_run(
            config, shards=args.shards, out_dir=args.out_dir,
            window=args.window, checkpoint_windows=args.checkpoint_windows,
            max_restarts=args.max_restarts, lease_timeout=args.lease_timeout,
            window_timeout=args.window_timeout, chaos=_shard_chaos_from(args),
            **kwargs,
        )
    except (ShardPlanError, ShardRunError) as exc:
        out.write(f"repro shard: {exc}\n")
        return 2
    if res.status == "drained":
        out.write(f"repro shard: drained (resume with the same --out-dir "
                  f"{res.out_dir})\n")
        return 5
    _print_result(res.result, out)
    out.write(
        f"shards            : {res.shards} (window {res.window} cycles)\n"
        f"restarts          : {res.restarts}\n"
        f"digest root       : {res.digest_root}\n"
        f"state dir         : {res.out_dir}\n"
    )
    if args.check_single:
        ref_result, ref_root = single_process_run(config, **kwargs)
        if res.result == ref_result and res.digest_root == ref_root:
            out.write("single-process    : bit-identical "
                      "(SimResult + digest root)\n")
        else:
            out.write(f"single-process    : MISMATCH "
                      f"(reference root {ref_root})\n")
            return 3
    return 0


def cmd_serve(args, out):
    from repro.serve import (
        ExperimentService,
        JobSpec,
        ServiceLockError,
        scan_service,
        spec_for,
        submit_spec,
    )
    from repro.serve.backoff import RetryPolicy

    if args.status:
        status = scan_service(args.root)
        if args.json:
            json.dump(status, out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            jobs = status["jobs"]
            states = ", ".join(f"{k}={v}" for k, v in sorted(jobs.items()))
            out.write(f"jobs ({status['total']}): {states or 'none'}\n")
            out.write(f"spooled submissions: {status['spool']}\n")
            out.write(f"retries recorded: {status['retries']}\n")
            for diag in status["dead"]:
                out.write(f"dead: {diag['label'] or '(unlabelled)'}"
                          f" after {diag['attempts']} attempts:"
                          f" {diag['error']}\n")
            server = status["server"]
            if server:
                cache = server.get("cache", {})
                rate = cache.get("hit_rate")
                out.write(
                    f"last server snapshot: pid {server.get('pid')},"
                    f" {len(server.get('workers', []))} worker(s),"
                    f" cache hits {cache.get('hits', 0)}"
                    f"/{cache.get('hits', 0) + cache.get('misses', 0)}"
                    + (f" ({100 * rate:.0f}%)" if rate is not None else "")
                    + "\n"
                )
        return 0

    if args.submit:
        with open(args.submit) as fh:
            payload = json.load(fh)
        spec = JobSpec.from_dict(payload.get("spec", payload))
        job_id = submit_spec(args.root, spec)
        out.write(f"{job_id}\n")
        return 0

    if args.submit_sweep is not None:
        config = _config_from(args)
        lengths = _lengths_from(args)
        for rate in args.submit_sweep:
            spec = spec_for(
                config, pattern=args.pattern, rate=rate, lengths=lengths,
                warmup=args.warmup, measure=args.measure, drain=args.drain,
                label=args.label or config.topology,
            )
            job_id = submit_spec(args.root, spec)
            out.write(f"{job_id}\n")
        return 0

    policy = RetryPolicy(base=args.retry_base) if args.retry_base \
        else None
    service = ExperimentService(
        args.root,
        workers=args.workers,
        max_retries=args.max_retries,
        lease_timeout=args.lease_timeout,
        heartbeat_every=args.heartbeat_every,
        **({"retry_policy": policy} if policy else {}),
    )
    try:
        service.recover()
    except ServiceLockError as exc:
        out.write(f"error: {exc}\n")
        return 2
    try:
        status = service.run(poll=args.poll, once=args.once)
    finally:
        service.close()
    if args.json:
        json.dump(status, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        jobs = status["jobs"]
        states = ", ".join(f"{k}={v}" for k, v in sorted(jobs.items()))
        cache = status["cache"]
        out.write(f"served: {states or 'nothing'}; cache hits "
                  f"{cache['hits']}/{cache['hits'] + cache['misses']}\n")
    from repro.serve import job_records

    dead = sum(1 for rec in job_records(args.root).values()
               if rec.state == "dead")
    return 1 if dead else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Packet chaining (MICRO 2011) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="one simulation, full result summary")
    _add_network_args(p)
    _add_traffic_args(p)
    _add_obs_args(p)
    _add_fault_args(p)
    p.add_argument("--rate", type=float, default=0.4)
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="write periodic checkpoints here (.gz compresses; "
                        "see 'repro resume')")
    p.add_argument("--checkpoint-every", type=int, default=1000, metavar="N",
                   help="cycles between checkpoints (with --checkpoint)")
    p.add_argument("--resume", default=None, metavar="FILE",
                   help="resume from a checkpoint (the other flags must "
                        "describe the same experiment)")
    p.add_argument("--kill-at", type=int, default=None, metavar="CYCLE",
                   help="abort after this cycle with exit code 4 "
                        "(chaos testing for checkpoint/resume)")
    p.add_argument("--digest", default=None, metavar="FILE",
                   help="stream hierarchical state digests to a JSONL file "
                        "(.gz compresses; compare with 'repro diverge "
                        "--vs-digests')")
    p.add_argument("--digest-every", type=int, default=64, metavar="N",
                   help="cycles between digests (with --digest)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "resume", help="resume a checkpointed run to completion"
    )
    p.add_argument("checkpoint_file", metavar="CHECKPOINT",
                   help="checkpoint written by run --checkpoint")
    _add_obs_args(p, recorder=False)
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="keep writing periodic checkpoints while resumed")
    p.add_argument("--checkpoint-every", type=int, default=1000, metavar="N",
                   help="cycles between checkpoints (with --checkpoint)")
    p.add_argument("--kill-at", type=int, default=None, metavar="CYCLE",
                   help="abort again after this cycle with exit code 4")
    p.add_argument("--digest", default=None, metavar="FILE",
                   help="stream state digests of the resumed cycles to a "
                        "JSONL file")
    p.add_argument("--digest-every", type=int, default=64, metavar="N",
                   help="cycles between digests (with --digest)")
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "faults", help="fault-injection study: run a plan, report resilience"
    )
    _add_network_args(p)
    _add_traffic_args(p)
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument("--plan", default=None, metavar="FILE",
                   help="FaultPlan JSON file (default: generate a seeded "
                        "random plan from the flags below)")
    p.add_argument("--random-links", type=int, default=2, metavar="N",
                   help="link faults in the generated plan")
    p.add_argument("--drop", type=float, default=0.0, metavar="P",
                   help="per-flit transient drop probability")
    p.add_argument("--corrupt", type=float, default=0.0, metavar="P",
                   help="per-flit transient corruption probability")
    p.add_argument("--save-plan", default=None, metavar="FILE",
                   help="save the plan actually used (handy with generated "
                        "plans)")
    p.add_argument("--unreliable", action="store_true",
                   help="disable the end-to-end reliable transport "
                        "(on by default here)")
    p.add_argument("--reliable-timeout", type=int, default=512,
                   metavar="CYCLES", help="retransmission timeout")
    p.add_argument("--reliable-retries", type=int, default=4,
                   metavar="N", help="retry budget per packet")
    p.add_argument("--invariants", default="strict",
                   choices=["off", "strict", "report"],
                   help="runtime invariant checking (default strict)")
    p.add_argument("--invariant-period", type=int, default=64,
                   metavar="N", help="cycles between invariant sweeps")
    p.add_argument("--watchdog", type=int, default=4096, metavar="CYCLES",
                   help="deadlock/livelock watchdog window (0 = off)")
    p.add_argument("--watchdog-dump", default=None, metavar="FILE",
                   help="write the watchdog's diagnostic bundle on a hang")
    p.add_argument("--json", action="store_true",
                   help="emit the result and plan as JSON")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("sweep", help="injection-rate sweep")
    _add_network_args(p)
    _add_traffic_args(p)
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.1, 0.2, 0.3, 0.4, 0.5])
    p.add_argument("--json", action="store_true",
                   help="emit one JSON array of per-rate results")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="write per-rate heartbeat files into DIR "
                        "(follow live with 'repro watch DIR')")
    p.add_argument("--heartbeat-every", type=int, default=1000, metavar="N",
                   help="cycles between heartbeats (with --telemetry)")
    _add_recorder_args(p, sampling=False)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "report",
        help="summarize a JSONL event trace or a --profile JSON",
    )
    p.add_argument("tracefile",
                   help="trace written by run --trace (.gz ok, '-' = stdin) "
                        "or a profile JSON written by run --profile")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the contention / blocked-packet / hot-spot "
                        "tables")
    p.add_argument("--collapsed", default=None, metavar="FILE",
                   help="with a profile JSON: export collapsed stacks "
                        "(flamegraph.pl / speedscope format)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "watch", help="live dashboard over a sweep telemetry directory"
    )
    p.add_argument("directory",
                   help="telemetry dir written by parallel_sweep/"
                        "rate_sweep (sweep --telemetry)")
    p.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                   help="poll interval while following")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit (no follow loop)")
    p.add_argument("--stale-after", type=float, default=30.0, metavar="SEC",
                   help="flag a running point as stalled after this many "
                        "seconds without a heartbeat")
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable state snapshot")
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "bench",
        help="standardized cycles/sec suite + perf-trend gate",
    )
    p.add_argument("--quick", action="store_true",
                   help="CI-sized subset of the suite")
    p.add_argument("--repeats", type=int, default=3, metavar="N",
                   help="timed repeats per case (plus one discarded warmup)")
    p.add_argument("--scale", type=float, default=1.0, metavar="X",
                   help="multiply all simulated phase lengths")
    p.add_argument("--history", default=None, metavar="FILE",
                   help="trend history file (default BENCH_<host>.json "
                        "in the current directory)")
    p.add_argument("--no-append", action="store_true",
                   help="measure and compare without recording history")
    p.add_argument("--compare", nargs="?", const="", default=None,
                   metavar="REF",
                   help="gate against REF (a history/baseline JSON; bare "
                        "--compare uses the history itself); exit 1 past "
                        "the threshold")
    p.add_argument("--threshold", type=float, default=15.0, metavar="PCT",
                   help="percent cycles/sec drop that fails the gate")
    p.add_argument("--raw", action="store_true",
                   help="compare raw cycles/sec instead of "
                        "calibration-normalized values")
    p.add_argument("--json", action="store_true",
                   help="emit the entry (and comparison) as JSON")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "shard",
        help="crash-tolerant sharded run (supervised worker per shard)",
    )
    _add_network_args(p)
    _add_traffic_args(p)
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument("--shards", type=int, default=2, metavar="N",
                   help="worker processes / row bands (<= mesh-k)")
    p.add_argument("--out-dir", default=None, metavar="DIR",
                   help="run-state directory (exchange files, checkpoints, "
                        "journal); reuse it to resume an interrupted run")
    p.add_argument("--window", type=int, default=None, metavar="CYCLES",
                   help="lookahead window override (default: the safe "
                        "maximum, the minimum boundary channel latency)")
    p.add_argument("--checkpoint-windows", type=int, default=None,
                   metavar="N", help="windows between file checkpoints")
    p.add_argument("--max-restarts", type=int, default=3, metavar="N")
    p.add_argument("--lease-timeout", type=float, default=15.0,
                   metavar="SECONDS",
                   help="heartbeat staleness before a worker is presumed "
                        "dead and restarted")
    p.add_argument("--window-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="barrier watchdog: running without window/cycle "
                        "progress this long means wedged")
    p.add_argument("--check-single", action="store_true",
                   help="also run single-process and verify bit-identical "
                        "SimResult + digest root (exit 3 on mismatch)")
    p.add_argument("--chaos-shard", type=int, default=0, metavar="SHARD",
                   help="shard targeted by the --chaos-* flags")
    p.add_argument("--chaos-kill-cycle", type=int, default=None,
                   metavar="CYCLE", help="SIGKILL the target shard "
                   "mid-window at this cycle (first attempt only)")
    p.add_argument("--chaos-kill-publish-window", type=int, default=None,
                   metavar="W", help="SIGKILL the target shard just "
                   "before publishing this window's exchange file")
    p.add_argument("--chaos-wedge-window", type=int, default=None,
                   metavar="W", help="wedge the target shard at this "
                   "window (heartbeats but no progress)")
    p.set_defaults(func=cmd_shard)

    p = sub.add_parser(
        "spans", help="per-packet latency decomposition from a trace"
    )
    p.add_argument("tracefile",
                   help="trace written by run --trace (.gz ok, '-' = stdin)")
    p.add_argument("--perfetto", default=None, metavar="FILE",
                   help="also export Chrome trace-event JSON "
                        "(open in Perfetto / chrome://tracing)")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="cap the packets exported to the Perfetto trace")
    p.add_argument("--top", type=int, default=5,
                   help="rows in the worst-packets table")
    p.add_argument("--json", action="store_true",
                   help="emit the decomposition as JSON")
    p.set_defaults(func=cmd_spans)

    p = sub.add_parser(
        "diff", help="compare two artifact dirs; exit 1 on regression"
    )
    p.add_argument("base", help="baseline artifact directory")
    p.add_argument("new", help="candidate artifact directory")
    p.add_argument("--threshold", type=float, default=5.0, metavar="PCT",
                   help="percent change that counts as a regression")
    p.add_argument("--json", action="store_true",
                   help="emit the diff as JSON")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "diverge",
        help="lockstep differential run; bisect the first divergent cycle",
    )
    _add_network_args(p)
    _add_traffic_args(p)
    p.add_argument("--rate", type=float, default=0.4)
    p.add_argument("--vs-backend", default=None,
                   choices=["reference", "fast"],
                   help="side B runs the same config under this backend "
                        "(default: whichever backend side A is not using)")
    p.add_argument("--vs-config", default=None, metavar="FILE",
                   help="side B runs a different NetworkConfig JSON under "
                        "the same traffic")
    p.add_argument("--vs-digests", default=None, metavar="FILE",
                   help="compare the live run against a recorded digest "
                        "stream (run --digest) instead of a second network")
    p.add_argument("--digest-every", type=int, default=64, metavar="N",
                   help="coarse comparison stride; the refinement pass "
                        "always pins the exact first divergent cycle")
    p.add_argument("--events", type=int, default=64, metavar="K",
                   help="trace events kept per side for the report tail")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="write the machine-readable divergence report JSON")
    p.add_argument("--json", action="store_true",
                   help="emit the report (or verdict) as JSON")
    p.set_defaults(func=cmd_diverge)

    p = sub.add_parser("saturation", help="binary-search the saturation rate")
    _add_network_args(p)
    _add_traffic_args(p)
    p.set_defaults(func=cmd_saturation)

    p = sub.add_parser("cmp", help="CMP application study (Table 1 setup)")
    _add_network_args(p)
    p.add_argument("--workload", default="blackscholes")
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--measure", type=int, default=1200)
    p.set_defaults(func=cmd_cmp)

    p = sub.add_parser("cost", help="Section 4.9 allocator cost model")
    p.add_argument("--radix", type=int, default=5)
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser(
        "serve",
        help="crash-tolerant experiment service over a root directory",
        description="Run the experiment service: a durable job queue, a "
                    "supervised worker pool, and a content-addressed "
                    "result cache under ROOT. Kill it (even -9) and "
                    "restart: the queue completes from the journal "
                    "without re-simulating cached work. SIGTERM drains "
                    "gracefully. With --submit/--submit-sweep/--status "
                    "the command acts as a client instead.",
    )
    p.add_argument("root", help="service root directory (created if absent)")
    p.add_argument("--workers", type=int, default=2,
                   help="max concurrent worker processes")
    p.add_argument("--max-retries", type=int, default=3,
                   help="extra attempts before a job is dead-lettered")
    p.add_argument("--lease-timeout", type=float, default=30.0,
                   help="seconds without a heartbeat before a worker is "
                        "presumed dead and its job re-queued")
    p.add_argument("--retry-base", type=float, default=None,
                   help="base seconds of the retry backoff schedule")
    p.add_argument("--heartbeat-every", type=int, default=1000,
                   help="worker heartbeat period in simulated cycles")
    p.add_argument("--poll", type=float, default=0.05,
                   help="scheduler poll period in seconds")
    p.add_argument("--once", action="store_true",
                   help="batch mode: exit once every known job is "
                        "terminal and the spool is empty")
    p.add_argument("--status", action="store_true",
                   help="print queue/cache status from the journal "
                        "(no server needed) and exit")
    p.add_argument("--submit", default=None, metavar="FILE",
                   help="spool one job spec JSON file and exit "
                        "(see examples/jobspec.json)")
    p.add_argument("--submit-sweep", type=float, nargs="+", default=None,
                   metavar="RATE",
                   help="spool one job per rate built from the network/"
                        "traffic flags, and exit")
    p.add_argument("--label", default="",
                   help="label for --submit-sweep jobs")
    p.add_argument("--json", action="store_true",
                   help="machine-readable status output")
    _add_network_args(p)
    _add_traffic_args(p)
    p.set_defaults(func=cmd_serve)

    return parser


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":
    raise SystemExit(main())
