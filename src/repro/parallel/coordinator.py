"""Shard-run coordinator: spawn, supervise, restart, assemble.

``shard_run()`` is the sharded counterpart of
:func:`repro.sim.runner.run_simulation`: same traffic/run parameters,
same SimResult out — but the network is partitioned into row-band
shards, each stepped by a supervised worker process (repro.parallel.
worker). The coordinator never touches simulation state; all protocol
state lives in the run directory, so a killed coordinator (or a worker
SIGKILLed mid-window) resumes by re-invoking ``shard_run`` with the
same ``out_dir``.

Supervision mirrors repro.serve: a worker holds a lease via its
heartbeat file's mtime, and a *barrier watchdog* additionally requires
window/cycle progress whenever the heartbeat claims to be running — a
worker that heartbeats but stops advancing (wedged) is confirmed-killed
and restarted from its last checkpoint within one ``window_timeout``.
Workers legitimately blocked on a peer's exchange file report
``state="waiting"`` and are exempt from the progress check (the peer's
restart is what unblocks them).
"""

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.checkpoint import (
    canonical_json,
    canonical_run_spec,
    config_hash,
)
from repro.obs.artifacts import atomic_write
from repro.parallel.exchange import EXCH_DIR
from repro.parallel.merge import assemble_result
from repro.parallel.partition import ShardPlan
from repro.parallel.worker import (
    CKPT_DIR,
    CKPT_SCHEMA,
    CONTROL_DIR,
    FINAL_DIR,
    HB_DIR,
    _FINAL_MAGIC,
    drain_flag_path,
    final_path,
    heartbeat_path,
    load_payload_gz,
    outcome_path,
    run_shard_worker,
)
from repro.proc import confirmed_kill, file_age, read_outcome
from repro.traffic.injection import FixedLength

_RUN_MAGIC = "repro-shard-run"


class ShardRunError(RuntimeError):
    """The sharded run cannot proceed (bad directory, restart budget
    exhausted, or inconsistent shard output)."""


@dataclass
class ShardRunResult:
    """Outcome of one ``shard_run`` invocation.

    ``status`` is ``"done"`` (``result``/``digest_root`` populated) or
    ``"drained"`` (graceful shutdown — every shard checkpointed its
    window-start state; re-invoke with the same ``out_dir`` to resume).
    """

    status: str
    shards: int
    window: int
    out_dir: str
    result: object = None
    digest_root: str = None
    cycles: int = None
    restarts: int = 0
    timers: dict = field(default_factory=dict)


def _journal_append(path, event, **fields):
    record = {"t": time.time(), "event": event}
    record.update(fields)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def _load_final(out_dir, shard, expected_hash):
    """The shard's final payload if present and valid, else None."""
    path = final_path(out_dir, shard)
    if not os.path.exists(path):
        return None
    try:
        payload = load_payload_gz(path)
    except (OSError, EOFError, json.JSONDecodeError):
        return None
    if (payload.get("magic") != _FINAL_MAGIC
            or payload.get("schema") != CKPT_SCHEMA
            or payload.get("config_hash") != expected_hash
            or payload.get("shard") != shard):
        return None
    return payload


def single_process_run(config, pattern="uniform", rate=0.2, packet_length=1,
                       lengths=None, warmup=1000, measure=3000, drain=2000,
                       seed=None):
    """Reference single-process run of the same parameters, returning
    ``(SimResult, digest_root)`` — the equivalence oracle for
    :func:`shard_run`. Resets the global packet-id counter first, as a
    fresh worker process would."""
    import random as _random

    from repro.network.flit import set_next_packet_id
    from repro.network.network import Network
    from repro.obs.digest import digest_network
    from repro.sim.runner import SimulationRun
    from repro.traffic.injection import BernoulliInjector
    from repro.traffic.patterns import build_pattern

    if seed is not None:
        from dataclasses import replace

        config = replace(config, seed=seed)
    dist = lengths if lengths is not None else FixedLength(packet_length)
    set_next_packet_id(0)
    net = Network(config)
    traffic_rng = _random.Random(config.seed + 0x5EED)
    pattern_obj = build_pattern(pattern, net.num_terminals, traffic_rng)
    injector = BernoulliInjector(net.num_terminals, pattern_obj, rate, dist,
                                 traffic_rng)
    run = SimulationRun(net, injector, warmup, measure, drain)
    result = run.execute()
    return result, digest_network(net, injector, observers=True)["root"]


def shard_run(config, pattern="uniform", rate=0.2, packet_length=1,
              lengths=None, warmup=1000, measure=3000, drain=2000,
              seed=None, shards=2, out_dir=None, window=None,
              checkpoint_windows=None, max_restarts=3, lease_timeout=15.0,
              window_timeout=60.0, poll=0.02, grace=2.0, chaos=None,
              metrics=None):
    """Run one experiment sharded across supervised worker processes.

    Returns a :class:`ShardRunResult` whose SimResult, metrics export,
    and digest root are bit-identical to the single-process
    ``run_simulation`` of the same parameters. ``out_dir`` holds all
    protocol state (exchange files, checkpoints, finals, journal); a
    fresh temporary directory is created when omitted. Re-invoking with
    an existing ``out_dir`` resumes: shards with valid finals are
    skipped, the rest restart from their newest checkpoints.

    ``chaos`` maps shard id to a fault-injection dict (see
    repro.parallel.worker) applied on that shard's first attempt only —
    test/CI plumbing for the restart path.
    """
    if seed is not None:
        from dataclasses import replace

        config = replace(config, seed=seed)
    dist = lengths if lengths is not None else FixedLength(packet_length)
    plan = ShardPlan(config, shards)
    win = plan.window_for(window)
    run_spec = canonical_run_spec(pattern, rate, dist, warmup, measure, drain)
    expected_hash = config_hash(config, run_spec)
    chaos = {int(k): dict(v) for k, v in (chaos or {}).items()}

    if out_dir is None:
        import tempfile

        out_dir = tempfile.mkdtemp(prefix="repro-shard-")
    for sub in (CKPT_DIR, FINAL_DIR, HB_DIR, CONTROL_DIR):
        os.makedirs(os.path.join(out_dir, sub), exist_ok=True)
    # A drain request addresses one invocation; a flag left by a
    # previous (drained) run must not stop the resume immediately.
    try:
        os.unlink(drain_flag_path(out_dir))
    except OSError:
        pass
    for i in range(shards):
        os.makedirs(os.path.join(out_dir, EXCH_DIR, f"s{i}"), exist_ok=True)

    run_meta_path = os.path.join(out_dir, "run.json")
    run_meta = {
        "magic": _RUN_MAGIC,
        "config": config.to_dict(),
        "run_spec": run_spec,
        "config_hash": expected_hash,
        "shards": shards,
        "window": win,
        "plan": plan.describe(),
    }
    if os.path.exists(run_meta_path):
        with open(run_meta_path) as fh:
            existing = json.load(fh)
        for key in ("config_hash", "shards", "window"):
            if existing.get(key) != run_meta[key]:
                raise ShardRunError(
                    f"out_dir {out_dir} belongs to a different run: "
                    f"{key} is {existing.get(key)!r}, expected "
                    f"{run_meta[key]!r}"
                )
    else:
        with atomic_write(run_meta_path) as fh:
            fh.write(canonical_json(run_meta))
            fh.write("\n")
    journal = os.path.join(out_dir, "journal.jsonl")

    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    config_dict = config.to_dict()
    attempts = {i: 0 for i in range(shards)}
    handles = {}
    finals = {}
    restarts_total = 0

    pending = set()
    for i in range(shards):
        payload = _load_final(out_dir, i, expected_hash)
        if payload is not None:
            finals[i] = payload
            _journal_append(journal, "resume_skip", shard=i)
        else:
            pending.add(i)

    def spawn(i):
        attempts[i] += 1
        options = {
            "shards": shards,
            "window": win,
            "checkpoint_windows": checkpoint_windows,
            "chaos": chaos.get(i) if attempts[i] == 1 else None,
        }
        proc = ctx.Process(
            target=run_shard_worker,
            args=(out_dir, config_dict, run_spec, i, attempts[i], options),
            daemon=True,
        )
        proc.start()
        now = time.monotonic()
        handles[i] = {"proc": proc, "attempt": attempts[i], "spawned": now,
                      "progress": None, "progress_t": now}
        _journal_append(journal, "spawn", shard=i, attempt=attempts[i],
                        pid=proc.pid)

    def restart(i, reason):
        nonlocal restarts_total
        restarts_total += 1
        _journal_append(journal, "restart", shard=i,
                        attempt=attempts[i], reason=reason)
        if attempts[i] > max_restarts:
            for other in pending:
                proc = handles.get(other, {}).get("proc")
                if proc is not None and proc.is_alive():
                    confirmed_kill(proc, grace=grace)
            raise ShardRunError(
                f"shard {i} exceeded max_restarts={max_restarts} "
                f"(last failure: {reason})"
            )
        spawn(i)

    def drain_requested():
        return os.path.exists(drain_flag_path(out_dir))

    previous_sigterm = None
    on_main_thread = threading.current_thread() is threading.main_thread()
    if on_main_thread:
        def _request_drain(*_args):
            flag = drain_flag_path(out_dir)
            with atomic_write(flag) as fh:
                fh.write("drain\n")

        previous_sigterm = signal.signal(signal.SIGTERM, _request_drain)

    drained_mode = False
    try:
        for i in sorted(pending):
            spawn(i)
        while pending:
            if not drained_mode and drain_requested():
                drained_mode = True
                _journal_append(journal, "drain_begin")
                for i in pending:
                    proc = handles[i]["proc"]
                    if proc.is_alive():
                        try:
                            proc.terminate()  # SIGTERM: graceful drain
                        except (OSError, ValueError):
                            pass
            for i in sorted(pending):
                info = handles[i]
                proc = info["proc"]
                if not proc.is_alive():
                    proc.join()
                    out = read_outcome(
                        outcome_path(out_dir, i, info["attempt"])
                    )
                    if out is not None and out.get("ok"):
                        payload = _load_final(out_dir, i, expected_hash)
                        if payload is not None:
                            finals[i] = payload
                            pending.discard(i)
                            _journal_append(journal, "finalized", shard=i,
                                            attempt=info["attempt"],
                                            cycle=out.get("cycle"))
                            continue
                        reason = "ok outcome but final payload missing"
                    elif out is not None and out.get("drained"):
                        if drained_mode:
                            pending.discard(i)
                            _journal_append(journal, "drained", shard=i,
                                            attempt=info["attempt"],
                                            window=out.get("window"))
                            continue
                        reason = "drain exit without a drain request"
                    elif out is not None:
                        reason = out.get("error", "worker error")
                    else:
                        reason = f"hard death (exit code {proc.exitcode})"
                    if drained_mode:
                        # Shutting down anyway: the shard's checkpoints
                        # carry the resume; don't respawn.
                        pending.discard(i)
                        _journal_append(journal, "died_during_drain",
                                        shard=i, reason=reason)
                        continue
                    restart(i, reason)
                    continue
                # Lease: the heartbeat file's mtime is the liveness claim.
                hb_path = heartbeat_path(out_dir, i, info["attempt"])
                age = file_age(hb_path)
                if age is None:
                    age = time.monotonic() - info["spawned"]
                if age > lease_timeout:
                    confirmed_kill(proc, grace=grace)
                    restart(i, "lease_expired")
                    continue
                # Barrier watchdog: the pulse thread keeps the lease
                # fresh even in a wedged worker, so stall detection is
                # positional — a worker must advance its (window,
                # cycle, state) within window_timeout. Only waiting on
                # a peer's exchange file is exempt: that stall is the
                # *peer's* fault, and restarting the peer unblocks it.
                hb = read_outcome(hb_path) or {}
                blocked_on_peer = (
                    hb.get("state") == "waiting"
                    and hb.get("awaiting") is not None
                    and not os.path.exists(
                        os.path.join(out_dir, hb["awaiting"]))
                )
                if hb.get("state") is None or blocked_on_peer:
                    info["progress_t"] = time.monotonic()
                else:
                    position = (hb.get("window"), hb.get("cycle"),
                                hb.get("state"))
                    if position != info["progress"]:
                        info["progress"] = position
                        info["progress_t"] = time.monotonic()
                    elif time.monotonic() - info["progress_t"] > window_timeout:
                        confirmed_kill(proc, grace=grace)
                        restart(i, "wedged")
                        continue
            if pending:
                time.sleep(poll)
    finally:
        if on_main_thread and previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)

    if drained_mode:
        _journal_append(journal, "drain_complete")
        return ShardRunResult(status="drained", shards=shards, window=win,
                              out_dir=out_dir, restarts=restarts_total)

    payloads = []
    for i in range(shards):
        payload = finals.get(i) or _load_final(out_dir, i, expected_hash)
        if payload is None:
            raise ShardRunError(f"shard {i} completed without a valid final")
        payloads.append(payload)
    result, digest_root, net, _injector = assemble_result(
        config, run_spec, plan, payloads, metrics=metrics
    )

    timers = {}
    for payload in payloads:
        for key, value in (payload.get("timers") or {}).items():
            timers[key] = timers.get(key, 0.0) + value
    _journal_append(journal, "assembled", cycle=net.cycle,
                    digest_root=digest_root, restarts=restarts_total)
    summary_path = os.path.join(out_dir, "result.json")
    with atomic_write(summary_path) as fh:
        fh.write(canonical_json({
            "digest_root": digest_root,
            "cycles": net.cycle,
            "drained": result.drained,
            "drain_cycles": result.drain_cycles,
            "avg_throughput": result.avg_throughput,
            "min_throughput": result.min_throughput,
            "avg_packet_latency": result.packet_latency.mean,
            "restarts": restarts_total,
            "timers": timers,
        }))
        fh.write("\n")
    return ShardRunResult(
        status="done", shards=shards, window=win, out_dir=out_dir,
        result=result, digest_root=digest_root, cycles=net.cycle,
        restarts=restarts_total, timers=timers,
    )
