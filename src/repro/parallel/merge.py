"""Merge shard final payloads into one equivalent single-process state.

Every component of the global end state lives in exactly one shard's
payload — routers, sources, and sinks in their owner shard — except:

* **Boundary channels.** The writer's copy holds the final window's
  sends; the reader's copy holds imported older items not yet
  delivered. The two sets are disjoint and the reader's dues strictly
  precede the writer's (imports predate the final window by at least
  one lookahead), so the merged channel is simply reader items followed
  by writer items.
* **Statistics.** Counters sum elementwise; latency samples concatenate
  and sort by each shard's recorded ``(cycle, dest)`` eject keys, which
  reproduces the single-process append order exactly (ascending cycle,
  then ascending sink terminal within a cycle).
* **The packet table.** A packet crossing shards appears in several
  payloads; the record serialized alongside the packet's most
  *downstream* flit (lowest live flit index — head-most) carries the
  freshest field values, since an exporter's record freezes when the
  head leaves its shard. Ejected-packet records beat never-seen ones.

The merged state restores into a plain reference Network, from which
the SimResult, the metrics export, and the digest Merkle root are
computed exactly as a single-process run computes them.
"""

import random

from repro.checkpoint import RestoreContext
from repro.network.flit import set_next_packet_id
from repro.network.network import Network
from repro.obs.digest import digest_network
from repro.parallel.partition import ShardPlan
from repro.stats.summary import summarize
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import build_pattern


class MergeError(RuntimeError):
    """The shard payloads are mutually inconsistent."""


def _consistent(payloads, describe, values):
    first = values[0]
    for value in values[1:]:
        if value != first:
            raise MergeError(
                f"shard payloads disagree on {describe}: "
                f"{first!r} vs {value!r}"
            )
    return first


def _flit_min_indices(node, mins=None):
    """Lowest live flit index per pid anywhere in a network state."""
    if mins is None:
        mins = {}
    if isinstance(node, dict):
        if "pid" in node and "idx" in node and "vc" in node:
            pid = str(node["pid"])
            idx = node["idx"]
            if pid not in mins or idx < mins[pid]:
                mins[pid] = idx
        else:
            for value in node.values():
                _flit_min_indices(value, mins)
    elif isinstance(node, list):
        for value in node:
            _flit_min_indices(value, mins)
    return mins


def merge_packet_tables(payloads):
    """Union of the shard packet tables with downstream precedence."""
    shard_mins = [_flit_min_indices(p["network"]) for p in payloads]
    merged = {}
    choice_rank = {}
    for i, payload in enumerate(payloads):
        for pid, record in payload["packets"].items():
            pid = str(pid)
            mins = shard_mins[i]
            if pid in mins:
                rank = (0, mins[pid], i)
            elif record.get("time_ejected") is not None:
                rank = (1, 0, i)
            else:
                rank = (1, 1, i)
            if pid not in merged or rank < choice_rank[pid]:
                merged[pid] = record
                choice_rank[pid] = rank
    return merged


def merge_stats_states(states):
    """Merge per-shard ShardStatsCollector states into one plain
    StatsCollector state (keys consumed, not forwarded)."""
    window = _consistent(states, "stats window",
                         [s["window"] for s in states])
    n = len(states[0]["flits_ejected_per_source"])
    merged = {
        "window": window,
        "flits_ejected_per_source": [0] * n,
        "flits_injected_per_source": [0] * n,
        "packets_created_per_source": [0] * n,
        "max_packet_latency": 0,
        "packets_ejected": 0,
        "flits_ejected": 0,
    }
    samples = []
    for state in states:
        for field in ("flits_ejected_per_source", "flits_injected_per_source",
                      "packets_created_per_source"):
            merged[field] = [a + b for a, b in zip(merged[field], state[field])]
        merged["packets_ejected"] += state["packets_ejected"]
        merged["flits_ejected"] += state["flits_ejected"]
        merged["max_packet_latency"] = max(
            merged["max_packet_latency"], state["max_packet_latency"]
        )
        keys = state.get("eject_keys", [])
        if not (len(keys) == len(state["packet_latencies"])
                == len(state["network_latencies"])
                == len(state["blocked_cycles"])):
            raise MergeError("misaligned latency sample streams")
        samples.extend(
            zip(map(tuple, keys), state["packet_latencies"],
                state["network_latencies"], state["blocked_cycles"])
        )
    samples.sort(key=lambda s: s[0])
    merged["packet_latencies"] = [s[1] for s in samples]
    merged["network_latencies"] = [s[2] for s in samples]
    merged["blocked_cycles"] = [s[3] for s in samples]
    return merged


def _patch_boundary_channels(plan, payloads):
    """Splice reader leftovers in front of writer sends for every
    boundary channel, in the writer's router state (the copy the merged
    network restores from). Mutates the owner payload in place."""
    slot_of = {"flit": "out_flit_channels", "credit": "credit_up_channels"}
    for shard in range(plan.num_shards):
        for spec in plan.exports_of(shard):
            slot = slot_of[spec["kind"]]
            owner = payloads[spec["writer"]]["network"]["routers"][spec["router"]]
            reader = payloads[spec["reader"]]["network"]["routers"][spec["router"]]
            owner_chan = owner[slot][spec["port"]]
            reader_chan = reader[slot][spec["port"]]
            items = reader_chan["items"] + owner_chan["items"]
            dues = [entry["due"] for entry in items]
            if dues != sorted(dues):
                raise MergeError(
                    f"boundary channel {spec['key']} would reorder "
                    f"deliveries when merged"
                )
            owner_chan["items"] = items


def assemble_network_state(plan, payloads):
    """One restorable network state from per-shard final payloads."""
    position = _consistent(
        payloads, "finalize position",
        [p["finalize"]["position"] for p in payloads],
    )
    _patch_boundary_channels(plan, payloads)
    topo = plan.topology
    routers = [
        payloads[plan.shard_of_router(r)]["network"]["routers"][r]
        for r in range(topo.num_routers)
    ]
    sources = [
        payloads[plan.shard_of_terminal(t)]["network"]["sources"][t]
        for t in range(topo.num_terminals)
    ]
    sinks = [
        payloads[plan.shard_of_terminal(t)]["network"]["sinks"][t]
        for t in range(topo.num_terminals)
    ]
    stats = merge_stats_states(
        [p["network"]["stats"] for p in payloads]
    )
    rng = _consistent(payloads, "network rng state",
                      [p["network"]["rng"] for p in payloads])
    return {
        "cycle": position,
        "rng": rng,
        "routers": routers,
        "sources": sources,
        "sinks": sinks,
        "stats": stats,
    }


def assemble_result(config, run_spec, plan, payloads, metrics=None):
    """Merged (SimResult, digest root, Network, injector) for a run.

    ``payloads`` is the per-shard final payload list, indexed by shard.
    The network and injector are rebuilt exactly as the reference
    runner would leave them, so metrics publication and state digests
    use the stock single-process code paths.
    """
    if len(payloads) != plan.num_shards:
        raise MergeError(
            f"expected {plan.num_shards} final payloads, got {len(payloads)}"
        )
    _consistent(payloads, "config hash",
                [p["config_hash"] for p in payloads])
    next_pid = _consistent(payloads, "next packet id",
                           [p["next_pid"] for p in payloads])
    injector_state = _consistent(payloads, "injector state",
                                 [p["injector"] for p in payloads])
    drained = _consistent(payloads, "drained flag",
                          [p["finalize"]["drained"] for p in payloads])
    drain_cycles = _consistent(
        payloads, "drain cycles",
        [p["finalize"]["drain_cycles"] for p in payloads],
    )

    state = assemble_network_state(plan, payloads)
    merged_packets = merge_packet_tables(payloads)

    net = Network(config)
    net.restore(state, RestoreContext(merged_packets))
    set_next_packet_id(next_pid)

    # The injector rebuilt as the runner builds it, then set to its
    # (shard-identical) end state — digests cover it.
    traffic_rng = random.Random(config.seed + 0x5EED)
    pattern = build_pattern(run_spec["pattern"], net.num_terminals,
                            traffic_rng)
    from repro.checkpoint import lengths_from_spec

    injector = BernoulliInjector(
        net.num_terminals, pattern, run_spec["rate"],
        lengths_from_spec(run_spec["lengths"]), traffic_rng,
    )
    injector.load_state(injector_state)

    if metrics is not None:
        net.publish_metrics(metrics)
    result = summarize(
        net.stats, run_spec["rate"], net.chain_stats(), net.cycle,
        drained=drained, drain_cycles=drain_cycles,
        warnings=["drain_aborted"] if drained is False else None,
    )
    digest_root = digest_network(net, injector, observers=True)["root"]
    return result, digest_root, net, injector
