"""Shard worker process: windowed stepping, checkpoints, drain consensus.

One worker owns one shard of the partition and advances it window by
window (window = conservative lookahead, bounded by the minimum
boundary channel latency):

1. *(cadence / drain region)* snapshot the window-start state — the
   file checkpoint a restart resumes from, and the in-memory state a
   drain replay rewinds to. Always taken **before** imports, so the
   restart path re-imports exactly once.
2. Import every neighbor's exchange file for the previous window
   (gather all files first, then absorb — a drain request mid-wait
   must leave the window-start state unmutated).
3. Step the window. The full-network injector runs in every shard for
   pid/RNG determinism; only packets sourced at local terminals are
   actually injected.
4. Serialize boundary exports and publish the window's exchange file
   (atomic, immutable, skip-if-already-published).
5. In the drain region, run the quiescence decision from published
   in-flight histograms — a pure function of the exchange files, so
   every shard (including one restarted mid-drain) reaches the same
   verdict. Quiescence strictly inside the window rewinds to the
   window-start snapshot and re-steps to the stop position.
6. Either finalize (publish the shard's end-state payload) or clear
   the exported boundary channels and continue.

SIGTERM/SIGINT request a graceful drain: the worker checkpoints the
current window-start state and exits with code 5; a later run resumes
from that checkpoint bit-identically.
"""

import gzip
import json
import os
import signal
import threading
import time

from repro.checkpoint import (
    SnapshotContext,
    canonical_json,
    config_hash,
    lengths_from_spec,
)
from repro.network.flit import peek_next_packet_id, set_next_packet_id
from repro.network.network import Network
from repro.obs.artifacts import atomic_write
from repro.parallel.exchange import (
    EXCH_DIR,
    ArenaContext,
    PacketArena,
    make_exchange,
    publish_exchange,
    wait_for_exchange,
)
from repro.parallel.partition import ShardPlan
from repro.proc import die_with_parent, write_outcome
from repro.stats import StatsCollector
from repro.traffic.injection import BernoulliInjector
from repro.traffic.patterns import build_pattern

CKPT_DIR = "ckpt"
FINAL_DIR = "final"
HB_DIR = "hb"
CONTROL_DIR = "control"

CKPT_SCHEMA = 1
_CKPT_MAGIC = "repro-shard-checkpoint"
_FINAL_MAGIC = "repro-shard-final"

EXIT_OK = 0
#: Graceful drain: the worker checkpointed its window-start state.
EXIT_DRAINED = 5

#: File checkpoint cadence fallback: roughly every 64 cycles' worth of
#: windows (lookahead windows are short — per-window files would thrash).
CKPT_TARGET_CYCLES = 64


def checkpoint_path(root, shard, window_index):
    return os.path.join(root, CKPT_DIR, f"s{shard}.w{window_index:08d}.json.gz")


def final_path(root, shard):
    return os.path.join(root, FINAL_DIR, f"s{shard}.json.gz")


def heartbeat_path(root, shard, attempt):
    return os.path.join(root, HB_DIR, f"s{shard}.a{attempt}.hb.json")


def outcome_path(root, shard, attempt):
    return os.path.join(root, HB_DIR, f"s{shard}.a{attempt}.out.json")


def drain_flag_path(root):
    return os.path.join(root, CONTROL_DIR, "drain")


def window_schedule(main_cycles, drain_cycles, window):
    """Window spans ``[(a, b), ...]`` covering main then drain cycles.

    Region edges never share a window: the main→drain transition is a
    window boundary, so the last main window's exchange file carries
    the in-flight count at the drain decision's first candidate
    position.
    """
    spans = []
    for start, end in ((0, main_cycles),
                      (main_cycles, main_cycles + drain_cycles)):
        a = start
        while a < end:
            b = min(a + window, end)
            spans.append((a, b))
            a = b
    return spans


def save_payload_gz(path, payload):
    """Gzip + atomically publish a JSON payload; immutable once written
    (restarted shards regenerate byte-identical payloads and skip)."""
    if os.path.exists(path):
        return False
    blob = gzip.compress(canonical_json(payload).encode("utf-8"), mtime=0)
    with atomic_write(path, mode="wb") as fh:
        fh.write(blob)
    return True


def load_payload_gz(path):
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return json.load(fh)


class ShardStatsCollector(StatsCollector):
    """StatsCollector that keys every latency sample for merging.

    Single-process sample order is global sink-step order: ascending
    cycle, then ascending sink terminal within a cycle (a sink ejects
    at most one flit per cycle, so ``(cycle, dest)`` is unique). Each
    shard records that key alongside its samples; the merge sorts the
    concatenated samples by key to reproduce the reference append
    order exactly.
    """

    def reset(self):
        super().reset()
        self.eject_keys = []

    def record_ejected(self, packet, cycle):
        before = len(self.packet_latencies)
        super().record_ejected(packet, cycle)
        if len(self.packet_latencies) > before:
            self.eject_keys.append([cycle, packet.dest])

    def state_dict(self):
        state = super().state_dict()
        state["eject_keys"] = [list(key) for key in self.eject_keys]
        return state

    def load_state(self, state):
        super().load_state(state)
        self.eject_keys = [list(key) for key in state.get("eject_keys", [])]


class Heartbeat:
    """Atomic single-file heartbeat: mtime is the lease, the JSON body
    carries window progress for the barrier watchdog.

    Thread-safe: a background pulse thread re-publishes the last-known
    fields (fresh mtime) while the main thread is inside a long
    beat-free section — constructing a large network, serializing a
    checkpoint or the final payload — so the lease never expires on a
    merely *slow* worker. A *stalled* worker is still caught: its
    (window, cycle, state) position stops advancing and the
    coordinator's barrier watchdog fires instead.
    """

    def __init__(self, path, shard, attempt, min_interval=0.2):
        self.path = path
        self.min_interval = min_interval
        self._last = 0.0
        self._lock = threading.Lock()
        self._fields = {"shard": shard, "attempt": attempt,
                        "pid": os.getpid()}

    def beat(self, force=False, **fields):
        with self._lock:
            self._fields.update(fields)
            now = time.monotonic()
            if not force and now - self._last < self.min_interval:
                return
            self._last = now
            record = dict(self._fields)
        record["t"] = time.time()
        with atomic_write(self.path) as fh:
            json.dump(record, fh)

    def pulse(self, stop, interval=1.0):
        """Re-publish current fields until ``stop`` is set."""
        while not stop.is_set():
            self.beat(force=True)
            stop.wait(interval)


class _ShardWorker:
    def __init__(self, root, config, run_spec, shard, attempt, options,
                 heartbeat=None):
        self.root = root
        self.config = config
        self.run_spec = run_spec
        self.shard = shard
        self.attempt = attempt
        self.plan = ShardPlan(config, options["shards"])
        self.window = int(options["window"])
        self.M = run_spec["warmup"] + run_spec["measure"]
        self.drain = run_spec["drain"]
        self.schedule = window_schedule(self.M, self.drain, self.window)
        self.ckpt_every = int(
            options.get("checkpoint_windows")
            or max(1, CKPT_TARGET_CYCLES // self.window)
        )
        # Chaos only ever fires on a shard's first attempt: restarts
        # must replay the lost windows cleanly.
        self.chaos = dict(options.get("chaos") or {}) if attempt == 1 else {}
        self.hash = config_hash(config, run_spec)
        self.hb = heartbeat or Heartbeat(
            heartbeat_path(root, shard, attempt), shard, attempt)
        self.timers = {"step_seconds": 0.0, "wait_seconds": 0.0,
                       "publish_seconds": 0.0, "checkpoint_seconds": 0.0}
        self.drain_flag = False

        # Full network, masked to the shard; reference core always (the
        # sharded protocol exchanges reference channel state).
        self.stats = ShardStatsCollector(self.plan.topology.num_terminals)
        self.net = Network(config, stats=self.stats)
        self.net.apply_shard_mask(self.plan.routers_of(shard),
                                  self.plan.terminals_of(shard))
        self.local_terminals = frozenset(self.plan.terminals_of(shard))
        self.exports = self.plan.exports_of(shard)

        # Traffic built exactly as the reference runner builds it: one
        # rng drives pattern construction then injection, so every
        # shard draws the identical packet stream (and pid sequence).
        import random as _random

        traffic_rng = _random.Random(config.seed + 0x5EED)
        pattern = build_pattern(run_spec["pattern"],
                                self.net.num_terminals, traffic_rng)
        self.inj = BernoulliInjector(
            self.net.num_terminals, pattern, run_spec["rate"],
            lengths_from_spec(run_spec["lengths"]), traffic_rng,
        )
        self.stats.set_window(run_spec["warmup"], self.M)
        set_next_packet_id(0)
        self.arena = PacketArena()
        self.hist_cache = {}

        # Which window's exchange file records each in-flight position
        # (position p is produced by stepping cycle p-1). Only drain
        # decision candidates (p >= M) are ever looked up.
        self.recorder = {}
        for j, (a, b) in enumerate(self.schedule):
            for pos in range(max(a + 1, self.M), b + 1):
                self.recorder[pos] = j

    # ------------------------------------------------------------------

    def request_drain(self, *_args):
        self.drain_flag = True

    def _drain_requested(self):
        return self.drain_flag or os.path.exists(drain_flag_path(self.root))

    def _beat_waiting(self, awaiting):
        # Naming the awaited file lets the coordinator scope the
        # waiting exemption: a worker "waiting" on a file that already
        # exists is wedged, not blocked.
        self.hb.beat(state="waiting", awaiting=awaiting)

    # ------------------------------------------------------------------

    def _capture(self):
        ctx = SnapshotContext()
        return {
            "network": self.net.snapshot(ctx),
            "packets": ctx.packets,
            "injector": self.inj.state_dict(),
            "next_pid": peek_next_packet_id(),
        }

    def _checkpoint_payload(self, magic, window_index, state):
        return {
            "magic": magic,
            "schema": CKPT_SCHEMA,
            "config_hash": self.hash,
            "shard": self.shard,
            "num_shards": self.plan.num_shards,
            "window_index": window_index,
            "cycle": state["network"]["cycle"],
            "next_pid": state["next_pid"],
            "packets": state["packets"],
            "network": state["network"],
            "injector": state["injector"],
        }

    def _save_checkpoint(self, window_index, state):
        t0 = time.perf_counter()
        payload = self._checkpoint_payload(_CKPT_MAGIC, window_index, state)
        save_payload_gz(checkpoint_path(self.root, self.shard, window_index),
                        payload)
        self._prune_checkpoints(window_index)
        self.timers["checkpoint_seconds"] += time.perf_counter() - t0

    def _prune_checkpoints(self, newest_index, keep=2):
        ckpt_dir = os.path.join(self.root, CKPT_DIR)
        prefix = f"s{self.shard}.w"
        try:
            names = sorted(
                n for n in os.listdir(ckpt_dir)
                if n.startswith(prefix) and n.endswith(".json.gz")
            )
        except OSError:
            return
        for name in names[:-keep]:
            try:
                os.unlink(os.path.join(ckpt_dir, name))
            except OSError:
                pass

    def _restore_state(self, payload):
        """Load a checkpoint/final payload into the live network (fresh
        arena: a wholesale restore replaces every live reference)."""
        self.arena = PacketArena()
        ctx = ArenaContext(payload["packets"], self.arena)
        self.net.restore(payload["network"], ctx)
        self.inj.load_state(payload["injector"])
        set_next_packet_id(payload["next_pid"])

    def _resume_window(self):
        """Newest valid checkpoint's window index (0 = fresh start)."""
        ckpt_dir = os.path.join(self.root, CKPT_DIR)
        prefix = f"s{self.shard}.w"
        try:
            names = sorted(
                (n for n in os.listdir(ckpt_dir)
                 if n.startswith(prefix) and n.endswith(".json.gz")),
                reverse=True,
            )
        except OSError:
            return 0
        for name in names:
            try:
                payload = load_payload_gz(os.path.join(ckpt_dir, name))
            except (OSError, EOFError, json.JSONDecodeError):
                continue
            if (payload.get("magic") != _CKPT_MAGIC
                    or payload.get("schema") != CKPT_SCHEMA
                    or payload.get("config_hash") != self.hash
                    or payload.get("shard") != self.shard):
                continue
            self._restore_state(payload)
            return payload["window_index"]
        return 0

    # ------------------------------------------------------------------

    def _gather_imports(self, window_index):
        """All neighbor exchange files for the previous window, read but
        not yet applied. None when a drain request interrupted the wait."""
        if window_index == 0:
            return []
        records = []
        t0 = time.perf_counter()
        try:
            for src in self.plan.import_sources(self.shard):
                record = wait_for_exchange(
                    self.root, src, window_index - 1,
                    heartbeat=self._beat_waiting,
                    should_abort=self._drain_requested,
                )
                if record is None:
                    return None
                records.append(record)
        finally:
            self.timers["wait_seconds"] += time.perf_counter() - t0
        return records

    def _absorb_imports(self, records):
        # Packet construction bumps the global pid counter; imported
        # packets are *re*-materializations, not new traffic, so the
        # counter must come out untouched (pid determinism across
        # shards is what makes the merge possible).
        saved_pid = peek_next_packet_id()
        for record in records:
            ctx = ArenaContext(record["packets"], self.arena)
            for spec in self.plan.imports_of(self.shard):
                if spec["writer"] != record["shard"]:
                    continue
                channel = ShardPlan.resolve_channel(self.net, spec)
                channel.absorb_state(record["channels"][spec["key"]], ctx)
        set_next_packet_id(saved_pid)

    def _step_window(self, a, b, record_hist=True):
        """Step cycles [a, b); returns the in-flight histogram entries
        this window contributes to the drain decision."""
        assert self.net.cycle == a, (self.net.cycle, a)
        hist = {}
        net, inj = self.net, self.inj
        kill_at = self.chaos.get("sigkill_at_cycle")
        t0 = time.perf_counter()
        for c in range(a, b):
            if c < self.M:
                # Full-network injection for pid/RNG determinism; only
                # local packets enter the (masked) network.
                for packet in inj.generate(c):
                    if packet.src in self.local_terminals:
                        net.inject(packet)
            elif inj.enabled:
                # Main→drain transition, as the reference runner does it.
                inj.enabled = False
            net.step()
            pos = net.cycle
            if record_hist and self.drain > 0 and pos >= self.M:
                hist[pos] = net.in_flight_flits()
            if kill_at is not None and pos >= kill_at:
                os.kill(os.getpid(), signal.SIGKILL)
            self.hb.beat(state="running", cycle=pos)
        self.timers["step_seconds"] += time.perf_counter() - t0
        return hist

    def _publish_window(self, window_index, a, b, hist):
        """Serialize boundary exports (keeping the live copies — they
        are only cleared once the shard commits to the next window) and
        publish the window's immutable exchange file."""
        t0 = time.perf_counter()
        ctx = SnapshotContext()
        channels = {
            spec["key"]: ShardPlan.resolve_channel(self.net, spec)
            .state_dict(ctx)
            for spec in self.exports
        }
        record = make_exchange(self.shard, window_index, a, b,
                               channels, ctx.packets, hist)
        if self.chaos.get("sigkill_on_publish_window") == window_index:
            # Die "mid-publish": leave writer-temp debris next to the
            # exchange file, then vanish without publishing. The atomic
            # rename means readers never see a partial file.
            debris = os.path.join(
                self.root, EXCH_DIR, f"s{self.shard}",
                f".w{window_index:08d}.json.chaos-tmp",
            )
            with open(debris, "w") as fh:
                fh.write('{"partial": true')
            os.kill(os.getpid(), signal.SIGKILL)
        publish_exchange(self.root, self.shard, window_index, record)
        self.timers["publish_seconds"] += time.perf_counter() - t0

    def _clear_exports(self):
        for spec in self.exports:
            ShardPlan.resolve_channel(self.net, spec).load_state(
                {"items": []}, None
            )

    # ------------------------------------------------------------------

    def _decide(self, window_index, b):
        """Global quiescence decision after a drain-region window.

        Reads every shard's published in-flight histogram (own file
        included — the decision is a pure function of published files,
        so restarted shards recompute the identical verdict) and
        returns the earliest position ``t`` in ``[M, b]`` where the
        global in-flight count is zero, None if the network is still
        busy, or "abort" when a drain request interrupted the wait.
        """
        candidates = range(self.M, b + 1)
        needed = sorted({self.recorder[pos] for pos in candidates if pos > 0})
        t0 = time.perf_counter()
        try:
            for j in needed:
                for s in range(self.plan.num_shards):
                    if (s, j) in self.hist_cache:
                        continue
                    record = wait_for_exchange(
                        self.root, s, j,
                        heartbeat=self._beat_waiting,
                        should_abort=self._drain_requested,
                    )
                    if record is None:
                        return "abort"
                    self.hist_cache[(s, j)] = record["inflight"]
        finally:
            self.timers["wait_seconds"] += time.perf_counter() - t0
        for pos in candidates:
            if pos == 0:
                return 0  # an un-stepped network is trivially quiescent
            total = sum(
                int(self.hist_cache[(s, self.recorder[pos])][str(pos)])
                for s in range(self.plan.num_shards)
            )
            if total == 0:
                return pos
        return None

    def _replay(self, snapshot, records, a, t):
        """Rewind to the window-start snapshot and re-step to the
        quiescence position (strictly inside the window)."""
        self._restore_state(snapshot)
        self._absorb_imports(records)
        self._step_window(a, t, record_hist=False)

    # ------------------------------------------------------------------

    def _wedge(self, window_index):
        """Chaos: stop making progress while heartbeating as 'running',
        so only the barrier watchdog (not lease expiry) can catch us."""
        while not self._drain_requested():
            self.hb.beat(force=True, state="running", window=window_index)
            time.sleep(0.05)

    # ------------------------------------------------------------------

    def _drain_exit(self, window_index, state):
        self._save_checkpoint(window_index, state)
        write_outcome(
            outcome_path(self.root, self.shard, self.attempt),
            ok=False, drained=True, shard=self.shard, attempt=self.attempt,
            window=window_index, cycle=state["network"]["cycle"],
            timers=self.timers,
        )
        return EXIT_DRAINED

    def _finalize(self, position, drained):
        self.inj.enabled = False  # the runner's main→drain transition
        assert self.net.cycle == position, (self.net.cycle, position)
        state = self._capture()
        payload = self._checkpoint_payload(_FINAL_MAGIC, None, state)
        payload["finalize"] = {
            "position": position,
            "drain_cycles": position - self.M if self.drain > 0 else 0,
            "drained": drained,
        }
        payload["timers"] = self.timers
        save_payload_gz(final_path(self.root, self.shard), payload)
        write_outcome(
            outcome_path(self.root, self.shard, self.attempt),
            ok=True, shard=self.shard, attempt=self.attempt,
            cycle=position, drained=drained, timers=self.timers,
        )
        return EXIT_OK

    # ------------------------------------------------------------------

    def run(self):
        start_index = self._resume_window()
        if not self.schedule:
            return self._finalize(0, None)  # zero-cycle run
        index = start_index
        while index < len(self.schedule):
            a, b = self.schedule[index]
            in_drain = self.drain > 0 and a >= self.M
            self.hb.beat(force=True, state="running", window=index, cycle=a,
                         phase="drain" if in_drain else "main")
            if self._drain_requested():
                return self._drain_exit(index, self._capture())
            if self.chaos.get("wedge_at_window") == index:
                self._wedge(index)
                return self._drain_exit(index, self._capture())
            # Window-start snapshot, before imports (see module docs).
            need_ckpt = index > 0 and index % self.ckpt_every == 0
            snapshot = self._capture() if (in_drain or need_ckpt) else None
            if need_ckpt:
                self._save_checkpoint(index, snapshot)
            records = self._gather_imports(index)
            if records is None:
                return self._drain_exit(index, snapshot or self._capture())
            self._absorb_imports(records)
            hist = self._step_window(a, b)
            self._publish_window(index, a, b, hist)
            if in_drain:
                verdict = self._decide(index, b)
                if verdict == "abort":
                    return self._drain_exit(index, snapshot)
                if verdict is not None:
                    if verdict < b:
                        self._replay(snapshot, records, a, verdict)
                    return self._finalize(verdict, True)
            if index == len(self.schedule) - 1:
                # Budget exhausted with flits still in flight (drain
                # requested), or no drain requested at all. Boundary
                # exports stay live: the merge needs the sender copies.
                return self._finalize(b, False if self.drain > 0 else None)
            self._clear_exports()
            index += 1
        raise AssertionError("unreachable: schedule exhausted without finalize")


def run_shard_worker(root, config_dict, run_spec, shard, attempt, options,
                     hard_exit=True):
    """Process entry point for one shard worker (multiprocessing target).

    ``hard_exit`` uses ``os._exit`` so a forked worker never runs the
    parent's atexit machinery; tests pass False to run in-process.
    """
    from repro.network.config import NetworkConfig

    die_with_parent()
    # A fork inherits the coordinator's SIGTERM handler, which writes
    # the *global* drain flag — a kill aimed at this worker alone must
    # not drain the whole run. Replace it before anything slow runs,
    # remembering any early request so it still takes effect.
    early_drain = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_a: early_drain.set())
    signal.signal(signal.SIGINT, lambda *_a: early_drain.set())
    config = NetworkConfig.from_dict(config_dict)
    # The lease must stay fresh through every long beat-free section
    # (network construction, checkpoint/final serialization — minutes
    # for large topologies on loaded hosts), so a pulse thread owns
    # liveness for the worker's whole lifetime; the barrier watchdog,
    # which tracks (window, cycle, state) *progress*, is what catches
    # a genuinely stalled worker.
    hb = Heartbeat(heartbeat_path(root, shard, attempt), shard, attempt)
    hb.beat(force=True, state="constructing")
    stop_pulse = threading.Event()
    pulse = threading.Thread(target=hb.pulse, args=(stop_pulse,),
                             daemon=True)
    pulse.start()
    try:
        worker = _ShardWorker(root, config, run_spec, shard, attempt,
                              options, heartbeat=hb)
        if early_drain.is_set():
            worker.request_drain()
        signal.signal(signal.SIGTERM, worker.request_drain)
        signal.signal(signal.SIGINT, worker.request_drain)
        code = worker.run()
    except BaseException as exc:  # noqa: BLE001 - the outcome file is the report
        import traceback

        write_outcome(
            outcome_path(root, shard, attempt),
            ok=False, shard=shard, attempt=attempt,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )
        code = 1
    finally:
        stop_pulse.set()
    if hard_exit:
        os._exit(code)
    else:
        pulse.join()
    return code
