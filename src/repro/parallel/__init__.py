"""Sharded simulation of large networks across worker processes.

One process per shard steps a row-band of a mesh/torus independently
for a conservative-lookahead window (bounded by the minimum boundary
channel latency), then exchanges boundary flits/credits through
fsynced, window-stamped exchange files. Workers are supervised
(heartbeat leases, PDEATHSIG, confirmed kill), checkpoint on a window
cadence, and restart mid-run bit-identically; the merged end state is
provably equivalent to a single-process run (same SimResult, metrics
export, and digest Merkle root).

See DESIGN.md §11 for the full protocol.
"""

from repro.parallel.coordinator import (
    ShardRunError,
    ShardRunResult,
    shard_run,
    single_process_run,
)
from repro.parallel.partition import ShardPlan, ShardPlanError

__all__ = [
    "ShardPlan",
    "ShardPlanError",
    "ShardRunError",
    "ShardRunResult",
    "shard_run",
    "single_process_run",
]
