"""Row-band partitioning of a mesh/torus into shards.

A shard owns a contiguous band of router rows (and the terminals
attached to them — one per router in both supported topologies).
Boundary channels are the directed flit/credit channels whose writer
and reader routers live in different shards; each is identified by a
stable key naming its *writer* side, matching the channel-ownership
convention of the checkpoint layer (a channel is serialized by the
router that writes it).

The conservative-lookahead window is the minimum latency over all
boundary channels: an item sent during window ``k`` is due no earlier
than the first cycle of window ``k+1``, so shards can step a full
window without seeing each other's current-window traffic.
"""

from repro.topology import build_topology


class ShardPlanError(ValueError):
    """The configuration cannot be sharded."""


def channel_key(kind, router, port):
    """Stable id of a directed channel, named by its writer side."""
    return f"{kind}:{router}:{port}"


class ShardPlan:
    """Partition of one ``NetworkConfig`` into ``num_shards`` row bands.

    Deterministic for a given (config, num_shards): every worker and
    the coordinator rebuild the identical plan from those two values,
    so nothing about the partition needs to cross process boundaries.
    """

    #: Topologies with row-band structure and one terminal per router.
    TOPOLOGIES = ("mesh", "torus")

    def __init__(self, config, num_shards):
        from repro.network.network import ST_LATENCY

        if config.topology not in self.TOPOLOGIES:
            raise ShardPlanError(
                f"sharding supports topologies {self.TOPOLOGIES}, "
                f"got {config.topology!r}"
            )
        if config.routing != "dor":
            raise ShardPlanError(
                "sharding requires deterministic routing (routing='dor'): "
                "adaptive routing probes remote congestion state"
            )
        k = config.mesh_k
        if not 1 <= num_shards <= k:
            raise ShardPlanError(
                f"num_shards must be in [1, {k}] for a {k}x{k} "
                f"{config.topology}, got {num_shards}"
            )
        self.config = config
        self.num_shards = int(num_shards)
        self.topology = build_topology(config)
        self.k = k

        # Contiguous row bands, sizes as even as possible (first
        # ``k % num_shards`` bands get the extra row).
        base, extra = divmod(k, num_shards)
        self._row_shard = []
        for shard in range(num_shards):
            rows = base + (1 if shard < extra else 0)
            self._row_shard.extend([shard] * rows)

        self._routers = [[] for _ in range(num_shards)]
        for r in range(self.topology.num_routers):
            self._routers[self.shard_of_router(r)].append(r)
        # One terminal per router, attached to the like-numbered router.
        self._terminals = [list(rs) for rs in self._routers]

        # Boundary channels, keyed by writer (router, port). For a
        # boundary link A:p <-> B:q, A writes (and exports) its forward
        # flit channel and the credit channel for its input p; B reads
        # both — and vice versa for B's write sides.
        self._exports = [[] for _ in range(num_shards)]  # per writer shard
        self._imports = [[] for _ in range(num_shards)]  # per reader shard
        delays = []
        for r in range(self.topology.num_routers):
            owner = self.shard_of_router(r)
            for port in range(self.topology.radix(r)):
                link = self.topology.link(r, port)
                if link is None:
                    continue
                reader = self.shard_of_router(link.dest_router)
                if reader == owner:
                    continue
                flit_delay = link.delay + ST_LATENCY
                credit_delay = config.credit_delay
                for kind, delay in (("flit", flit_delay),
                                    ("credit", credit_delay)):
                    spec = {
                        "key": channel_key(kind, r, port),
                        "kind": kind,
                        "router": r,
                        "port": port,
                        "writer": owner,
                        "reader": reader,
                        "delay": delay,
                    }
                    self._exports[owner].append(spec)
                    self._imports[reader].append(spec)
                    delays.append(delay)

        #: Maximum safe window length (min boundary latency), or None
        #: for a single shard (no boundaries — any window is safe).
        self.lookahead = min(delays) if delays else None

    # ------------------------------------------------------------------

    def shard_of_router(self, router):
        _, y = self.topology.coords(router)
        return self._row_shard[y]

    def shard_of_terminal(self, terminal):
        router, _ = self.topology.terminal_attachment(terminal)
        return self.shard_of_router(router)

    def routers_of(self, shard):
        return self._routers[shard]

    def terminals_of(self, shard):
        return self._terminals[shard]

    def exports_of(self, shard):
        """Boundary channels this shard writes (exported each window)."""
        return self._exports[shard]

    def imports_of(self, shard):
        """Boundary channels this shard reads (imported each window)."""
        return self._imports[shard]

    def import_sources(self, shard):
        """Shards whose exchange files this shard must import from."""
        return sorted({spec["writer"] for spec in self._imports[shard]})

    def window_for(self, requested=None):
        """Validated window length in cycles.

        ``None`` selects the maximum safe window (the lookahead bound);
        an explicit request is validated against it. A single shard has
        no bound — the window then only sets the checkpoint/heartbeat
        granularity.
        """
        if requested is None:
            return self.lookahead if self.lookahead is not None else 64
        requested = int(requested)
        if requested < 1:
            raise ShardPlanError(f"window must be >= 1, got {requested}")
        if self.lookahead is not None and requested > self.lookahead:
            raise ShardPlanError(
                f"window {requested} exceeds the conservative lookahead "
                f"bound {self.lookahead} (min boundary channel latency)"
            )
        return requested

    @staticmethod
    def resolve_channel(network, spec):
        """The live channel object a boundary spec names, in any copy
        of the network (every shard constructs the full wiring)."""
        router = network.routers[spec["router"]]
        if spec["kind"] == "flit":
            return router.out_flit_channels[spec["port"]]
        return router.credit_up_channels[spec["port"]]

    def describe(self):
        """JSON-able summary (run metadata, docs, debugging)."""
        return {
            "topology": self.config.topology,
            "k": self.k,
            "num_shards": self.num_shards,
            "rows_per_shard": [
                sum(1 for s in self._row_shard if s == shard)
                for shard in range(self.num_shards)
            ],
            "boundary_channels": sum(len(e) for e in self._exports),
            "lookahead": self.lookahead,
        }
