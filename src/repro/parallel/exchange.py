"""Window-stamped exchange files and cross-window packet identity.

Each shard publishes one exchange file per completed window:
``<root>/exch/s<shard>/w<window>.json`` holding the serialized contents
of every boundary channel the shard writes (flits interned through the
checkpoint layer's :class:`~repro.checkpoint.SnapshotContext`), plus
the shard's per-cycle in-flight counts for the drain-decision protocol.
Files are written atomically and fsynced (``atomic_write``) and are
**immutable once published**: a restarted shard that re-simulates a
window skips the publish when the file already exists, so no window's
output is ever published twice.

Packet identity across imports: flits of one packet may cross a
boundary in different windows (wormhole packets span windows), and a
restarted worker rebuilds earlier flits from a checkpoint. Both paths
must yield the *same* Packet object per pid inside one worker — the
router's streaming desync check compares object identity. The
:class:`PacketArena` is that per-worker identity map; checkpoint
restores and exchange imports both materialize packets through an
:class:`ArenaContext` bound to it.
"""

import json
import os
import time

from repro.checkpoint import RestoreContext, canonical_json
from repro.obs.artifacts import atomic_write

EXCH_DIR = "exch"

#: Bump on any incompatible change to the exchange-file layout.
EXCHANGE_SCHEMA = 1

_MAGIC = "repro-shard-exchange"


class ExchangeError(RuntimeError):
    """An exchange file is missing, foreign, or inconsistent."""


def exchange_path(root, shard, window):
    return os.path.join(root, EXCH_DIR, f"s{shard}", f"w{window:08d}.json")


def publish_exchange(root, shard, window, record):
    """Atomically publish a window's exchange file; returns False when
    the file already exists (a restarted shard re-simulating the window
    must not re-publish — published output is immutable)."""
    path = exchange_path(root, shard, window)
    if os.path.exists(path):
        return False
    with atomic_write(path) as fh:
        fh.write(canonical_json(record))
        fh.write("\n")
    return True


def read_exchange(path, shard, window):
    """Load and validate one exchange file."""
    try:
        with open(path) as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ExchangeError(f"unreadable exchange file {path}: {exc}") from exc
    if (
        not isinstance(record, dict)
        or record.get("magic") != _MAGIC
        or record.get("shard") != shard
        or record.get("window") != window
    ):
        raise ExchangeError(f"foreign or mismatched exchange file: {path}")
    return record


def make_exchange(shard, window, cycle_start, cycle_end, channels, packets,
                  inflight):
    return {
        "magic": _MAGIC,
        "schema": EXCHANGE_SCHEMA,
        "shard": shard,
        "window": window,
        "cycle_start": cycle_start,
        "cycle_end": cycle_end,
        "channels": channels,
        "packets": packets,
        # Per-position local in-flight counts (drain decisions only;
        # empty for windows that end before the measurement phase does).
        "inflight": {str(pos): n for pos, n in inflight.items()},
    }


def wait_for_exchange(root, shard, window, heartbeat=None, should_abort=None,
                      poll=0.01, max_poll=0.2):
    """Block until another shard's window file appears, then load it.

    The wait is unbounded by design — liveness of the peer is the
    coordinator's job (lease expiry / barrier watchdog restart the
    peer; PDEATHSIG reaps us if the coordinator dies). ``heartbeat``
    is called periodically so waiting never looks like a wedge, and
    ``should_abort`` (drain requested) breaks the wait.
    """
    path = exchange_path(root, shard, window)
    delay = poll
    while True:
        if os.path.exists(path):
            return read_exchange(path, shard, window)
        if should_abort is not None and should_abort():
            return None
        if heartbeat is not None:
            heartbeat(os.path.relpath(path, root))
        time.sleep(delay)
        delay = min(max_poll, delay * 1.5)


# ---------------------------------------------------------------------------
# packet identity across checkpoint restores and window imports


class PacketArena:
    """Per-worker pid → Packet identity map.

    One arena spans one worker's lifetime of restores and imports, so a
    flit imported in window ``k+1`` references the same Packet object
    as its siblings restored from a checkpoint or imported in window
    ``k``. A drain replay rewinds into a *fresh* arena (the restored
    snapshot replaces every live reference wholesale).
    """

    def __init__(self):
        self.packets = {}


class ArenaContext(RestoreContext):
    """RestoreContext whose pid cache is a shared :class:`PacketArena`.

    A pid already present in the arena resolves to the existing object
    (fields untouched — the live object is at least as current as any
    exchange record, which freezes at the packet's head crossing); an
    unknown pid materializes from this context's record table and joins
    the arena.
    """

    def __init__(self, packet_table, arena):
        super().__init__(packet_table)
        self._cache = arena.packets
