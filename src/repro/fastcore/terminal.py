"""The fast core's terminals: inlined channel I/O, memoized first hops.

FastSource and FastSink reproduce the reference
:class:`~repro.network.terminal.Source`/``Sink`` behavior exactly for
the fault-free runs this backend accepts (FastNetwork refuses fault
injection, so ``packet.killed``/``packet.corrupted`` are statically
False and their per-flit checks are dropped). The remaining differences
are mechanical:

- channel sends/receives append/pop the timestamped deques directly
  (one tuple per flit instead of a method call plus a list);
- the per-class VC ranges are resolved once at construction;
- for plain XY DOR (no faults, no detour state) the first-hop routing
  decision is memoized per destination — ``prepare``/``next_hop`` are
  pure there, see :class:`repro.fastcore.router.FastRouter`.

Checkpoint state layout is inherited unchanged; the cached channel
deques keep their identity across ``load_state`` (channels load in
place), so snapshots round-trip with the reference terminals.
"""

from collections import deque

from repro.network.terminal import Sink, Source
from repro.routing.dor import DORMesh


class FastSource(Source):
    """Reference source with inlined injection fast paths."""

    def __init__(self, terminal, config, routing, flit_channel, credit_channel,
                 stats=None, trace=None):
        super().__init__(terminal, config, routing, flit_channel,
                         credit_channel, stats=stats, trace=trace)
        self._fq = flit_channel._queue
        self._fdelay = flit_channel.delay
        self._cq = credit_channel._queue
        self._class_vcs = [
            tuple(config.vc_class_range(c)) for c in range(config.num_classes)
        ]
        self._route_cache = {} if type(routing) is DORMesh else None

    def receive_credits(self, cycle):
        cq = self._cq
        credits = self.credits
        while cq and cq[0][0] <= cycle:
            due, vc = cq.popleft()
            if due < cycle:
                raise AssertionError("channel item missed its delivery cycle")
            credits[vc] += 1

    def step(self, cycle):
        """Send at most one flit into the injection channel."""
        flits = self._flits
        if not flits:
            self._start_next_packet(cycle)
            flits = self._flits
            if not flits:
                return
        vc = self._vc
        if self.credits[vc] == 0:
            return
        flit = flits.popleft()
        flit.vc = vc
        self.credits[vc] -= 1
        self._fq.append((cycle + self._fdelay, flit))
        self.flits_sent += 1
        tr = self.trace
        if tr.active:
            tr.emit(
                "flit_injected", cycle, terminal=self.terminal,
                pid=flit.packet.pid, idx=flit.index, vc=vc,
            )

    def _start_next_packet(self, cycle):
        queue = self.queue
        if not queue:
            return
        packet = queue[0]
        routing = self.routing
        cache = self._route_cache
        if cache is not None:
            packet.route_state = None  # inlined DORMesh.prepare()
            key = (packet.src, packet.dest)
            hop = cache.get(key)
            if hop is None:
                first_router, _ = routing.topology.terminal_attachment(
                    packet.src
                )
                hop = cache[key] = routing.next_hop(first_router, packet)
        else:
            # Non-memoizable routing: keep the reference call order
            # (next_hop only after the VC-credit gate passes, since an
            # adaptive function may consult state or mark the packet).
            routing.prepare(packet)
            hop = None
        # Inlined _pick_vc: lowest-numbered VC of the class with credit.
        credits = self.credits
        for vc in self._class_vcs[packet.vc_class]:
            if credits[vc] > 0:
                break
        else:
            return  # no credit on any VC of the class; retry next cycle
        queue.popleft()
        flits = packet.flits()
        head = flits[0]
        if hop is None:
            first_router, _ = routing.topology.terminal_attachment(packet.src)
            hop = routing.next_hop(first_router, packet)
        head.out_port, head.vc_class = hop
        packet.time_injected = cycle
        if self.stats is not None:
            self.stats.record_injected(packet, cycle)
        self._flits = deque(flits)
        self._vc = vc


class FastSink(Sink):
    """Reference sink with the ejection loop inlined."""

    def __init__(self, terminal, flit_channel, credit_channel, stats,
                 trace=None):
        super().__init__(terminal, flit_channel, credit_channel, stats,
                         trace=trace)
        self._fq = flit_channel._queue
        self._cq = credit_channel._queue
        self._cdelay = credit_channel.delay

    def step(self, cycle):
        fq = self._fq
        cq = self._cq
        cdelay = self._cdelay
        stats = self.stats
        tr = self.trace
        consumed = 0
        while fq and fq[0][0] <= cycle:
            due, flit = fq.popleft()
            if due < cycle:
                raise AssertionError("channel item missed its delivery cycle")
            cq.append((cycle + cdelay, flit.vc))
            consumed += 1
            packet = flit.packet
            # No corrupted/killed disposal here: this backend refuses
            # fault injection, so every ejected packet is deliverable.
            if flit.is_tail:
                packet.time_ejected = cycle
                stats.record_ejected(packet, cycle)
            stats.record_flit_ejected(flit, cycle)
            if tr.active:
                fields = {
                    "terminal": self.terminal,
                    "pid": packet.pid,
                    "idx": flit.index,
                    "tail": flit.is_tail,
                }
                if flit.is_tail:
                    fields["latency"] = cycle - packet.time_created
                    fields["blocked"] = packet.blocked_cycles
                tr.emit("flit_ejected", cycle, **fields)
        self.flits_consumed += consumed
