"""The fast core's router: packed occupancy state over the reference.

FastRouter keeps the reference :class:`~repro.network.router.Router`'s
state layout, phase sequence, and trace-emission points — the
equivalence contract (see DESIGN.md) — and changes only *how* hot
phases find work:

- ``_occ_mask[p]`` is a per-input-port bitmask of occupied VCs,
  maintained by the inlined ``receive`` and ``_send_flit``. Hot loops
  iterate its set bits in ascending VC order, which is exactly the
  reference's ``enumerate(self.in_vcs[p])`` order minus the empty VCs
  those loops skip anyway — so request dicts, candidate lists, and
  trace events come out in the identical order.
- channel drains are inlined (no per-port list allocation), preserving
  the reference channel's missed-delivery assertion.
- round-robin VC arbitration uses the closed-form pointer arithmetic
  shared with :mod:`repro.fastcore.allocators`.
- per-step constants (``trace.active``, starvation mode, VC class
  ranges) are hoisted out of the per-VC loops.

FastRouter is only ever built by FastNetwork, which refuses fault
injection and the reliable transport — so the fault hooks the reference
router checks per flit (``self.faults``) are statically None here, and
the occupancy masks cannot be desynchronized by fault purges.
Checkpoint state is inherited unchanged; ``load_state`` rebuilds the
masks from the restored buffers, so snapshots round-trip with the
reference core.
"""

from repro.core.chaining import (
    PC_PRIORITY_DEFINITE,
    PC_PRIORITY_SPECULATIVE,
    ChainingScheme,
    PCCandidate,
    PCRequestBuilder,
    scheme_admits,
)
from repro.core.starvation import StarvationMode
from repro.fastcore.allocators import (
    FastSeparableInputFirstAllocator,
    upgrade_allocator,
)
from repro.network.router import _NONSPECULATIVE_BOOST, Router
from repro.routing.dor import DORMesh

#: Shared read-only stand-in for the per-cycle ``inhibited`` set when
#: starvation control is disabled (nothing ever writes it then).
_NO_INHIBITS = frozenset()


def _pc_candidate_order(c):
    """PCRequestBuilder.candidates_for's sort key (definite class first)."""
    return (c.speculative, -c.priority)


class FastRouter(Router):
    """Reference router with packed-occupancy fast paths."""

    def __init__(self, router_id, radix, config, routing):
        super().__init__(router_id, radix, config, routing)
        #: Bitmask of occupied VCs per input port (bit v set <=> the VC
        #: buffer at [p][v] is non-empty). Exact at phase boundaries:
        #: only receive() pushes and _send_flit() pops in this backend.
        self._occ_mask = [0] * radix
        #: Pre-resolved VC index tuples per traffic class (the reference
        #: rebuilds a range object per _free_out_vc call).
        self._class_vcs = [
            tuple(config.vc_class_range(c)) for c in range(config.num_classes)
        ]
        self._age_mode = self.starvation.mode is StarvationMode.AGE
        self._threshold_mode = self.starvation.mode is StarvationMode.THRESHOLD
        self._starv_disabled = self.starvation.mode is StarvationMode.DISABLED
        self._chain_enabled = self.scheme.enabled
        self._num_vcs = self.config.num_vcs
        self._pc_priorities = config.pc_priorities
        #: Immutable all-None connection row: the start-of-cycle
        #: snapshot whenever no connection is held (the common case).
        self._none_row = (None,) * radix
        #: Reusable PC request builder for the fused scan path (the
        #: candidates list is replaced wholesale each cycle; nothing
        #: retains the builder across cycles).
        self._pc_builder = PCRequestBuilder(self.scheme)
        #: Per-port (input flit queue, credit-return queue, VC list)
        #: triples, resolved lazily on the first receive() — the
        #: channels are wired by Network after construction and never
        #: replaced afterwards (checkpoint restore loads into them).
        self._rx = None
        #: Lazily-resolved (queue, delay) pairs for the output flit and
        #: upstream credit channels, mirroring _rx on the send side.
        self._tx = None
        #: Look-ahead route memo for plain XY DOR: with no faults (this
        #: backend refuses them) and no detour state, next_hop is a pure
        #: function of (downstream router, destination terminal). Other
        #: routing functions (torus datelines, fault detours) call
        #: through uncached.
        self._route_cache = {} if type(routing) is DORMesh else None
        upgrade_allocator(self.switch_alloc)
        upgrade_allocator(self.pc_alloc)
        if self.vc_alloc is not None:
            upgrade_allocator(self.vc_alloc)
        #: Whether the single-request allocate() can be inlined in the
        #: fused step (only exact single-iteration separable input-first
        #: allocators; wavefront etc. may evolve state per call).
        self._sa_inline = (
            type(self.switch_alloc) is FastSeparableInputFirstAllocator
            and self.switch_alloc.iterations == 1
        )
        self._pc_inline = (
            type(self.pc_alloc) is FastSeparableInputFirstAllocator
            and self.pc_alloc.iterations == 1
        )

    # ------------------------------------------------------------------
    # checkpointing: layout inherited; rebuild the derived masks
    # ------------------------------------------------------------------

    def load_state(self, state, ctx):
        super().load_state(state, ctx)
        # The restore replaced the per-port credit lists the receive
        # cache captured; rebuild both channel caches lazily.
        self._rx = None
        self._tx = None
        occ = self._occ_mask
        for p in range(self.radix):
            mask = 0
            for v, vcobj in enumerate(self.in_vcs[p]):
                if vcobj.queue:
                    mask |= 1 << v
            occ[p] = mask

    # ------------------------------------------------------------------
    # the fused cycle: the reference phase sequence without the
    # per-phase dispatch, property lookups, or single-request allocator
    # calls (faults are statically absent in this backend)
    # ------------------------------------------------------------------

    def step(self, cycle):
        held_any = False
        for held in self.conn_out:
            if held is not None:
                held_any = True
                break
        if not held_any and self._fill[0] == 0:
            if self._chain_enabled:
                self.chain_stats.cycles += 1
            return
        if self.profiler is not None:
            # The profiled twin keeps the reference's per-phase timers
            # (it dispatches back into this class's phase methods, so
            # attribution still reflects the fast implementations).
            self._step_profiled(cycle)
            return
        releasing = {}
        if held_any:
            released_inputs = set()
            conn_in_start = self.conn_in.copy()
            conn_out_start = self.conn_out.copy()
            if self._starv_disabled:
                inhibited = _NO_INHIBITS
            else:
                inhibited = set()
                self._forced_releases(cycle, released_inputs, inhibited)
            departed_vcs = self._stream_connections(
                cycle, releasing, released_inputs, inhibited
            )
        else:
            # Nothing held at cycle start: the start-of-cycle connection
            # snapshot is all-None (shared immutable row), forced
            # releases and streaming have no connections to act on, and
            # nothing can be released or inhibited (shared empties are
            # read-only downstream).
            conn_in_start = conn_out_start = self._none_row
            released_inputs = _NO_INHIBITS
            inhibited = _NO_INHIBITS
            departed_vcs = set()
        # --- fused SA collection + VC-front scan ----------------------
        # Same requests/contrib/tails as _collect_sa_requests (identical
        # iteration order), plus a scan of (p, v, vcobj, flit, active,
        # o_front, connected) for every occupied VC in (port asc, VC
        # asc) order — the exact traversal the ANY_INPUT PC pass
        # repeats, handed over so it doesn't re-derive the fronts.
        # Unlike the SA-only collector, VCs of connected inputs are
        # scanned too (the PC pass considers them once released).
        sa_requests = {}
        sa_contrib = {}
        forming_tails = {}
        scan = []
        append_scan = scan.append
        # Every front that survives the o-determination below is either
        # a head or has an active packet — exactly the end-of-cycle
        # wait-counter condition — and commits only mutate VCs they add
        # to departed_vcs, so collecting waiters here replaces the
        # second occupancy walk at the end of the cycle.
        waiters = []
        append_wait = waiters.append
        num_vcs = self._num_vcs
        starv = self.starvation
        age_mode = self._age_mode
        in_vcs = self.in_vcs
        credits = self.credits
        occ = self._occ_mask
        out_vc_busy = self.out_vc_busy
        class_vcs = self._class_vcs
        split_plain = self.split_va and not self.speculative_va
        speculative = self.speculative_va
        chain_enabled = self._chain_enabled
        radix = self.radix
        for p in range(radix):
            mask = occ[p]
            if not mask:
                continue
            connected = conn_in_start[p] is not None
            vcs = in_vcs[p]
            pbase = p * num_vcs
            while mask:
                v = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                vcobj = vcs[v]
                flit = vcobj.queue[0]
                active = vcobj.active_packet
                if active is not None:
                    o = vcobj.active_out_port
                elif flit.is_head:
                    o = flit.out_port
                elif connected:
                    # Body flit behind a connected stream: sits out of
                    # SA, and the PC pass would skip it too — drop it
                    # from the scan entirely.
                    continue
                else:  # pragma: no cover - body flit without state
                    raise AssertionError(
                        "body flit at VC front without state"
                    )
                if chain_enabled:
                    append_scan((p, v, vcobj, flit, active, o, connected))
                append_wait((pbase + v, vcobj, flit))
                if connected:
                    continue  # connected inputs sit out of SA
                if active is not None:
                    if conn_out_start[o] is not None:
                        continue
                    if credits[o][vcobj.active_out_vc] == 0:
                        continue
                else:
                    if split_plain:
                        continue
                    if conn_out_start[o] is not None:
                        continue
                    # Inlined _free_out_vc existence check.
                    busy = out_vc_busy[o]
                    creds = credits[o]
                    for w in class_vcs[flit.vc_class]:
                        if not busy[w] and creds[w] > 0:
                            break
                    else:
                        continue
                if age_mode:
                    prio = starv.packet_priority(
                        flit.packet.priority, vcobj.wait_cycles
                    )
                else:
                    prio = flit.packet.priority
                if speculative and active is not None:
                    prio += _NONSPECULATIVE_BOOST
                pair = (p, o)
                contrib = sa_contrib.get(pair)
                if contrib is None:
                    sa_requests[pair] = prio
                    sa_contrib[pair] = [(v, prio)]
                else:
                    if prio > sa_requests[pair]:
                        sa_requests[pair] = prio
                    contrib.append((v, prio))
                if flit.is_tail:
                    tails = forming_tails.get(o)
                    if tails is None:
                        forming_tails[o] = [(p, v)]
                    else:
                        tails.append((p, v))
        builder = None
        pc_grants = {}
        conn_in = self.conn_in
        conn_out = self.conn_out
        conn_age = self.conn_age
        if chain_enabled and (releasing or forming_tails):
            if self.scheme is ChainingScheme.ANY_INPUT:
                # ANY_INPUT PC candidate collection over the shared
                # front scan: semantically identical to
                # _collect_pc_candidates (the scan is in the same
                # port-asc/VC-asc order that pass iterates), with the
                # scheme_admits checks resolved statically — a
                # releasing holder admits everyone, a forming
                # connection admits everyone except its own (p, v) —
                # and the OR-reduced request matrix
                # (PCRequestBuilder.request_matrix) built in the same
                # pass. The profiled path keeps the generic collector.
                builder = self._pc_builder
                candidates = builder.candidates = []
                matrix = {}
                stride = PCRequestBuilder.CLASS_STRIDE
                definite_base = PC_PRIORITY_DEFINITE * stride
                speculative_base = PC_PRIORITY_SPECULATIVE * stride
                prio_cap = stride - 1
                chainable_outputs = set(releasing) | set(forming_tails)
                threshold_mode = self._threshold_mode
                add = candidates.append
                for entry in scan:
                    o_front = entry[5]
                    if o_front is None:
                        continue
                    if o_front in chainable_outputs:
                        p, v, vcobj, flit, active, _, connected = entry
                        if connected and not (
                            p in released_inputs
                            and ("in", p) not in inhibited
                        ):
                            continue
                        q = vcobj.queue
                        front_bids_sa = (p, o_front) in sa_requests
                        behind = None
                        if front_bids_sa and flit.is_tail and len(q) > 1:
                            nxt = q[1]
                            if nxt.is_head:
                                behind = nxt
                        # --- front-flit candidate (o_front) -----------
                        while True:  # single-pass block, break = skip
                            o = o_front
                            if front_bids_sa and o not in forming_tails:
                                break
                            requires = ()
                            if connected and conn_in_start[p] != o:
                                requires = (("own_release",),)
                            holder = releasing.get(o)
                            if holder is not None:
                                age = conn_age[o]
                            elif o in forming_tails:
                                requires = requires + (("sa_tail", o),)
                                age = 0
                            else:
                                break
                            if threshold_mode and not starv.chainable(
                                age, flit.packet.size - flit.index
                            ):
                                break
                            if active is not None:
                                if credits[o][vcobj.active_out_vc] == 0:
                                    break
                            else:
                                busy = out_vc_busy[o]
                                creds = credits[o]
                                for w in class_vcs[flit.vc_class]:
                                    if not busy[w] and creds[w] > 0:
                                        break
                                else:
                                    break
                            if holder is None:
                                tails = forming_tails[o]
                                if len(tails) == 1 and tails[0][0] == p \
                                        and tails[0][1] == v:
                                    break
                            prio = flit.packet.priority
                            add(PCCandidate(
                                input_port=p,
                                vc=v,
                                output_port=o,
                                priority=prio,
                                flit=flit,
                                speculative=bool(requires),
                                requires=requires,
                            ))
                            base = (
                                speculative_base if requires
                                else definite_base
                            )
                            if prio > prio_cap:
                                prio = prio_cap
                            elif prio < 0:
                                prio = 0
                            prio += base
                            pair = (p, o)
                            existing = matrix.get(pair)
                            if existing is None or prio > existing:
                                matrix[pair] = prio
                            break
                    else:
                        flit = entry[3]
                        if not flit.is_tail:
                            continue
                        vcobj = entry[2]
                        q = vcobj.queue
                        if len(q) < 2:
                            continue
                        nxt = q[1]
                        if not nxt.is_head:
                            continue
                        if nxt.out_port not in chainable_outputs:
                            continue
                        p = entry[0]
                        connected = entry[6]
                        if connected and not (
                            p in released_inputs
                            and ("in", p) not in inhibited
                        ):
                            continue
                        if (p, o_front) not in sa_requests:
                            continue
                        v = entry[1]
                        behind = nxt
                    # --- behind-the-tail candidate --------------------
                    if behind is None:
                        continue
                    o = behind.out_port
                    requires = (("front_departs",),)
                    if connected and conn_in_start[p] != o:
                        requires = (("own_release",), ("front_departs",))
                    holder = releasing.get(o)
                    if holder is not None:
                        age = conn_age[o]
                    elif o in forming_tails:
                        requires = requires + (("sa_tail", o),)
                        age = 0
                    else:
                        continue
                    if threshold_mode and not starv.chainable(
                        age, behind.packet.size - behind.index
                    ):
                        continue
                    busy = out_vc_busy[o]
                    creds = credits[o]
                    for w in class_vcs[behind.vc_class]:
                        if not busy[w] and creds[w] > 0:
                            break
                    else:
                        continue
                    prio = behind.packet.priority
                    add(PCCandidate(
                        input_port=p,
                        vc=v,
                        output_port=o,
                        priority=prio,
                        flit=behind,
                        speculative=True,
                        requires=requires,
                    ))
                    if prio > prio_cap:
                        prio = prio_cap
                    elif prio < 0:
                        prio = 0
                    prio += speculative_base
                    pair = (p, o)
                    existing = matrix.get(pair)
                    if existing is None or prio > existing:
                        matrix[pair] = prio
            else:
                builder = self._collect_pc_candidates(
                    conn_in_start, releasing, forming_tails, released_inputs,
                    inhibited, sa_requests,
                )
                matrix = (
                    builder.request_matrix() if builder.candidates else {}
                )
            if matrix:
                if not self._pc_priorities:
                    matrix = {
                        pair: prio % PCRequestBuilder.CLASS_STRIDE
                        for pair, prio in matrix.items()
                    }
                if len(matrix) == 1 and self._pc_inline:
                    ((i, o),) = matrix
                    alloc = self.pc_alloc
                    alloc._output_arbiters[o].pointer = \
                        (i + 1) % alloc.num_inputs
                    alloc._input_arbiters[i].pointer = \
                        (o + 1) % alloc.num_outputs
                    pc_grants = {i: o}
                else:
                    pc_grants = self.pc_alloc.allocate(matrix)
                counters = self.alloc_counters
                counters["pc_requests"] += len(matrix)
                counters["pc_grants"] += len(pc_grants)
        if sa_requests:
            if len(sa_requests) == 1 and self._sa_inline:
                ((i, o),) = sa_requests
                alloc = self.switch_alloc
                alloc._output_arbiters[o].pointer = (i + 1) % alloc.num_inputs
                alloc._input_arbiters[i].pointer = (o + 1) % alloc.num_outputs
                sa_grants = {i: o}
            else:
                sa_grants = self.switch_alloc.allocate(sa_requests)
            counters = self.alloc_counters
            counters["sa_requests"] += len(sa_requests)
            counters["sa_grants"] += len(sa_grants)
        else:
            sa_grants = {}
        sa_winner_vc = {}
        sa_tail_outputs = {}
        if sa_grants:
            # Inlined _commit_sa (the method remains for the profiled
            # path; keep the two in sync).
            tr = self.trace
            tr_active = tr.active
            arbiters = self._sa_vc_arbiters
            tx = self._tx
            if tx is None:
                tx = self._tx = (
                    [
                        (c._queue, c.delay) if c is not None else None
                        for c in self.out_flit_channels
                    ],
                    [
                        (c._queue, c.delay) if c is not None else None
                        for c in self.credit_up_channels
                    ],
                )
            fill = self._fill
            downstream_router = self.downstream_router
            cache = self._route_cache
            port_flits = self.port_flits
            router_id = self.router_id
            for p, o in sa_grants.items():
                entries = sa_contrib[(p, o)]
                if len(entries) == 1:
                    v = entries[0][0]
                else:
                    best = entries[0][1]
                    for _, prio in entries:
                        if prio > best:
                            best = prio
                    pointer = arbiters[p].pointer
                    best_dist = num_vcs
                    for vv, prio in entries:
                        if prio == best:
                            dist = (vv - pointer) % num_vcs
                            if dist < best_dist:
                                best_dist = dist
                                v = vv
                arbiters[p].pointer = (v + 1) % num_vcs
                vcobj = in_vcs[p][v]
                q = vcobj.queue
                flit = q[0]

                if vcobj.active_packet is None:
                    # Inlined _free_out_vc: lowest free VC of the class.
                    ocredits = credits[o]
                    busy = out_vc_busy[o]
                    for w in class_vcs[flit.vc_class]:
                        if not busy[w] and ocredits[w] > 0:
                            break
                    else:
                        # Only reachable for speculative-VA head grants.
                        self.wasted_speculations += 1
                        continue
                    vcobj.start_packet(flit.packet, o, w)
                    busy[w] = True
                    if tr_active:
                        tr.emit(
                            "vc_alloc", cycle, router=router_id, port=o,
                            vc=w, pid=flit.packet.pid,
                        )
                else:
                    w = vcobj.active_out_vc

                if tr_active:
                    tr.emit(
                        "sa_grant", cycle, router=router_id, port=o,
                        pid=flit.packet.pid, in_port=p, vc=v, out_vc=w,
                    )
                # Inlined _send_flit (pop, credit, route memo, sends).
                q.popleft()
                vcobj.wait_cycles = 0
                fill[0] -= 1
                if not q:
                    occ[p] &= ~(1 << v)
                credits[o][w] -= 1
                flit.vc = w
                is_tail = flit.is_tail
                if is_tail:
                    vcobj.active_packet = None
                    vcobj.active_out_port = None
                    vcobj.active_out_vc = None
                    out_vc_busy[o][w] = False
                if flit.is_head:
                    downstream = downstream_router[o]
                    if downstream is not None:
                        if cache is not None:
                            key = (downstream, flit.packet.dest)
                            hop = cache.get(key)
                            if hop is None:
                                hop = cache[key] = self.routing.next_hop(
                                    downstream, flit.packet
                                )
                            flit.out_port, flit.vc_class = hop
                        else:
                            flit.out_port, flit.vc_class = \
                                self.routing.next_hop(
                                    downstream, flit.packet
                                )
                oq, odelay = tx[0][o]
                oq.append((cycle + odelay, flit))
                port_flits[o] += 1
                up = tx[1][p]
                if up is not None:
                    uq, udelay = up
                    uq.append((cycle + udelay, v))
                if tr_active:
                    tr.emit(
                        "flit_routed", cycle, router=router_id, port=o,
                        pid=flit.packet.pid, idx=flit.index, in_port=p,
                        in_vc=v, out_vc=w,
                    )
                    if is_tail:
                        tr.emit(
                            "vc_free", cycle, router=router_id, port=o,
                            vc=w, pid=flit.packet.pid,
                        )
                departed_vcs.add(p * num_vcs + v)
                sa_winner_vc[p] = v
                if is_tail:
                    # Connection forms and releases in the same cycle; a
                    # chained packet may take it over (PC commit checks).
                    sa_tail_outputs[o] = (p, v)
                else:
                    conn_in[p] = o
                    conn_out[o] = (p, v)
                    conn_age[o] = 0
                    if tr_active:
                        tr.emit(
                            "conn_held", cycle, router=router_id, port=o,
                            in_port=p, vc=v, pid=flit.packet.pid,
                        )
        if pc_grants:
            self._commit_pc(
                cycle, pc_grants, builder, sa_grants, sa_winner_vc,
                sa_tail_outputs, releasing, conn_out_start,
            )
        if self.split_va:
            self._split_vc_allocation(cycle)
        # --- inlined _end_of_cycle (ages + wait/blocked counters) -----
        # waiters holds every bump-eligible VC front from the SA scan
        # (commits only touch VCs they add to departed_vcs, so the scan
        # snapshot is still accurate); departed_vcs holds
        # p * num_vcs + v ints, cheaper than (p, v) tuples.
        for o in range(radix):
            if conn_out[o] is not None:
                conn_age[o] += 1
        if departed_vcs:
            for enc, vcobj, flit in waiters:
                if enc in departed_vcs:
                    continue
                vcobj.wait_cycles += 1
                flit.packet.blocked_cycles += 1
        else:
            for _, vcobj, flit in waiters:
                vcobj.wait_cycles += 1
                flit.packet.blocked_cycles += 1
        if self._chain_enabled:
            self.chain_stats.cycles += 1

    # ------------------------------------------------------------------
    # arrivals: inlined channel drains, no list allocation per port
    # ------------------------------------------------------------------

    def receive(self, cycle):
        rx = self._rx
        if rx is None:
            # Wired ports only (unwired ports never deliver anything);
            # flit and credit sides split so each loop touches exactly
            # the state it needs.
            rx = self._rx = (
                [
                    (p, ch._queue, self.in_vcs[p])
                    for p, ch in enumerate(self.in_flit_channels)
                    if ch is not None
                ],
                [
                    (ch._queue, self.credits[p])
                    for p, ch in enumerate(self.credit_return_channels)
                    if ch is not None
                ],
            )
        tr = self.trace
        tr_active = tr.active
        occ = self._occ_mask
        fill = self._fill
        for p, fq, vcs in rx[0]:
            if fq:
                while fq and fq[0][0] <= cycle:
                    due, flit = fq.popleft()
                    if due < cycle:
                        raise AssertionError(
                            "channel item missed its delivery cycle"
                        )
                    # Inlined VirtualChannel.push() (overflow assertion
                    # and the shared fill cell included).
                    vcobj = vcs[flit.vc]
                    if len(vcobj.queue) >= vcobj.capacity:
                        raise OverflowError(
                            "VC buffer overflow (credit protocol violated)"
                        )
                    vcobj.queue.append(flit)
                    fill[0] += 1
                    occ[p] |= 1 << flit.vc
                    if tr_active and flit.is_head:
                        tr.emit(
                            "head_arrived", cycle, router=self.router_id,
                            in_port=p, vc=flit.vc, pid=flit.packet.pid,
                        )
        for cq, port_credits in rx[1]:
            if cq:
                while cq and cq[0][0] <= cycle:
                    due, vc = cq.popleft()
                    if due < cycle:
                        raise AssertionError(
                            "channel item missed its delivery cycle"
                        )
                    port_credits[vc] += 1

    # ------------------------------------------------------------------
    # flit launch: reference body plus occupancy-mask maintenance
    # ------------------------------------------------------------------

    def _send_flit(self, cycle, flit, p, v, o, w):
        tx = self._tx
        if tx is None:
            tx = self._tx = (
                [
                    (c._queue, c.delay) if c is not None else None
                    for c in self.out_flit_channels
                ],
                [
                    (c._queue, c.delay) if c is not None else None
                    for c in self.credit_up_channels
                ],
            )
        vcobj = self.in_vcs[p][v]
        # Inlined VirtualChannel.pop() (the shared fill cell included).
        q = vcobj.queue
        q.popleft()
        vcobj.wait_cycles = 0
        self._fill[0] -= 1
        if not q:
            self._occ_mask[p] &= ~(1 << v)
        self.credits[o][w] -= 1
        flit.vc = w
        if flit.is_tail:
            vcobj.active_packet = None
            vcobj.active_out_port = None
            vcobj.active_out_vc = None
            self.out_vc_busy[o][w] = False
        if flit.is_head:
            downstream = self.downstream_router[o]
            if downstream is not None:
                cache = self._route_cache
                if cache is not None:
                    key = (downstream, flit.packet.dest)
                    hop = cache.get(key)
                    if hop is None:
                        hop = cache[key] = self.routing.next_hop(
                            downstream, flit.packet
                        )
                    flit.out_port, flit.vc_class = hop
                else:
                    flit.out_port, flit.vc_class = self.routing.next_hop(
                        downstream, flit.packet
                    )
        # Inlined PipelinedChannel.send() for the flit and the credit.
        oq, odelay = tx[0][o]
        oq.append((cycle + odelay, flit))
        self.port_flits[o] += 1
        up = tx[1][p]
        if up is not None:
            uq, udelay = up
            uq.append((cycle + udelay, v))
        tr = self.trace
        if tr.active:
            tr.emit(
                "flit_routed", cycle, router=self.router_id, port=o,
                pid=flit.packet.pid, idx=flit.index, in_port=p, in_vc=v,
                out_vc=w,
            )
            if flit.is_tail:
                tr.emit(
                    "vc_free", cycle, router=self.router_id, port=o, vc=w,
                    pid=flit.packet.pid,
                )

    def _free_out_vc(self, output, vc_class):
        credits = self.credits[output]
        busy = self.out_vc_busy[output]
        for w in self._class_vcs[vc_class]:
            if not busy[w] and credits[w] > 0:
                return w
        return None

    # ------------------------------------------------------------------
    # phase 2: stream held connections (hoisted per-step constants)
    # ------------------------------------------------------------------

    def _stream_connections(self, cycle, releasing, released_inputs, inhibited):
        # departed_vcs holds p * num_vcs + v ints (the fast _commit_sa
        # and end-of-cycle pass use the same encoding).
        departed_vcs = set()
        num_vcs = self._num_vcs
        conn_out = self.conn_out
        conn_in = self.conn_in
        in_vcs = self.in_vcs
        credits = self.credits
        conn_age = self.conn_age
        scheme_enabled = self.scheme.enabled
        threshold_mode = self._threshold_mode
        starv = self.starvation
        pseudo = self.config.pseudo_circuit_release
        tx = self._tx
        if tx is None:
            tx = self._tx = (
                [
                    (c._queue, c.delay) if c is not None else None
                    for c in self.out_flit_channels
                ],
                [
                    (c._queue, c.delay) if c is not None else None
                    for c in self.credit_up_channels
                ],
            )
        fill = self._fill
        occ = self._occ_mask
        out_vc_busy = self.out_vc_busy
        downstream_router = self.downstream_router
        cache = self._route_cache
        port_flits = self.port_flits
        router_id = self.router_id
        tr = self.trace
        tr_active = tr.active
        for o in range(self.radix):
            held = conn_out[o]
            if held is None:
                continue
            p, v = held
            vcobj = in_vcs[p][v]
            q = vcobj.queue
            flit = q[0] if q else None
            packet = vcobj.active_packet
            if flit is None or packet is None or flit.packet is not packet:
                # Inlined _release(..., "empty").
                conn_out[o] = None
                conn_in[p] = None
                released_inputs.add(p)
                if tr_active:
                    tr.emit(
                        "conn_released", cycle, router=router_id, port=o,
                        in_port=p, reason="empty",
                    )
                continue
            w = vcobj.active_out_vc
            if credits[o][w] == 0:
                # Inlined _release(..., "no_credit").
                conn_out[o] = None
                conn_in[p] = None
                released_inputs.add(p)
                if tr_active:
                    tr.emit(
                        "conn_released", cycle, router=router_id, port=o,
                        in_port=p, reason="no_credit",
                    )
                continue
            # Inlined _send_flit (pop, credit, route memo, channel sends).
            q.popleft()
            vcobj.wait_cycles = 0
            fill[0] -= 1
            if not q:
                occ[p] &= ~(1 << v)
            credits[o][w] -= 1
            flit.vc = w
            is_tail = flit.is_tail
            if is_tail:
                vcobj.active_packet = None
                vcobj.active_out_port = None
                vcobj.active_out_vc = None
                out_vc_busy[o][w] = False
            if flit.is_head:
                downstream = downstream_router[o]
                if downstream is not None:
                    if cache is not None:
                        key = (downstream, flit.packet.dest)
                        hop = cache.get(key)
                        if hop is None:
                            hop = cache[key] = self.routing.next_hop(
                                downstream, flit.packet
                            )
                        flit.out_port, flit.vc_class = hop
                    else:
                        flit.out_port, flit.vc_class = self.routing.next_hop(
                            downstream, flit.packet
                        )
            oq, odelay = tx[0][o]
            oq.append((cycle + odelay, flit))
            port_flits[o] += 1
            up = tx[1][p]
            if up is not None:
                uq, udelay = up
                uq.append((cycle + udelay, v))
            if tr_active:
                tr.emit(
                    "flit_routed", cycle, router=router_id, port=o,
                    pid=flit.packet.pid, idx=flit.index, in_port=p, in_vc=v,
                    out_vc=w,
                )
                if is_tail:
                    tr.emit(
                        "vc_free", cycle, router=router_id, port=o, vc=w,
                        pid=flit.packet.pid,
                    )
            departed_vcs.add(p * num_vcs + v)
            if is_tail:
                if (
                    scheme_enabled
                    and (not threshold_mode or starv.chainable(conn_age[o]))
                    and ("out", o) not in inhibited
                ):
                    if not (pseudo and self._competing_waiter(o)):
                        releasing[o] = (p, v)
                # Inlined _release(..., "tail").
                conn_out[o] = None
                conn_in[p] = None
                released_inputs.add(p)
                if tr_active:
                    tr.emit(
                        "conn_released", cycle, router=router_id, port=o,
                        in_port=p, reason="tail",
                    )
        return departed_vcs

    # ------------------------------------------------------------------
    # phase 3: SA request collection over occupied VCs only
    # ------------------------------------------------------------------

    def _collect_sa_requests(self, conn_in_start, conn_out_start):
        sa_requests = {}
        sa_contrib = {}
        forming_tails = {}
        starv = self.starvation
        age_mode = self._age_mode
        in_vcs = self.in_vcs
        credits = self.credits
        occ = self._occ_mask
        out_vc_busy = self.out_vc_busy
        class_vcs = self._class_vcs
        split_plain = self.split_va and not self.speculative_va
        speculative = self.speculative_va
        for p in range(self.radix):
            if conn_in_start[p] is not None:
                continue  # inputs connected at cycle start sit out of SA
            mask = occ[p]
            if not mask:
                continue
            vcs = in_vcs[p]
            while mask:
                v = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                vcobj = vcs[v]
                flit = vcobj.queue[0]
                active = vcobj.active_packet
                if active is not None:
                    o = vcobj.active_out_port
                    if conn_out_start[o] is not None:
                        continue
                    if credits[o][vcobj.active_out_vc] == 0:
                        continue
                elif flit.is_head:
                    if split_plain:
                        continue
                    o = flit.out_port
                    if conn_out_start[o] is not None:
                        continue
                    # Inlined _free_out_vc existence check.
                    busy = out_vc_busy[o]
                    creds = credits[o]
                    for w in class_vcs[flit.vc_class]:
                        if not busy[w] and creds[w] > 0:
                            break
                    else:
                        continue
                else:  # pragma: no cover - body flit without state
                    raise AssertionError("body flit at VC front without state")
                if age_mode:
                    prio = starv.packet_priority(
                        flit.packet.priority, vcobj.wait_cycles
                    )
                else:
                    prio = flit.packet.priority
                if speculative and active is not None:
                    prio += _NONSPECULATIVE_BOOST
                pair = (p, o)
                contrib = sa_contrib.get(pair)
                if contrib is None:
                    sa_requests[pair] = prio
                    sa_contrib[pair] = [(v, prio)]
                else:
                    if prio > sa_requests[pair]:
                        sa_requests[pair] = prio
                    contrib.append((v, prio))
                if flit.is_tail:
                    tails = forming_tails.get(o)
                    if tails is None:
                        forming_tails[o] = [(p, v)]
                    else:
                        tails.append((p, v))
        return sa_requests, sa_contrib, forming_tails

    # ------------------------------------------------------------------
    # phase 4: PC candidate collection with a cheap pre-filter
    # ------------------------------------------------------------------

    def _collect_pc_candidates(
        self, conn_in_start, releasing, forming_tails, released_inputs,
        inhibited, sa_requests,
    ):
        """Inlined equivalent of the reference collect + _candidates_from_vc.

        The structure mirrors the reference exactly — candidate order
        (VCs ascending, the front flit's target before the
        behind-the-tail target) decides priority-tie resolution in
        ``PCRequestBuilder.candidates_for``, so it must not change.
        The win is the pre-filter: most occupied VCs target a
        non-chainable output and exit after a couple of dict probes,
        without list/tuple construction or a delegated call.
        """
        builder = PCRequestBuilder(self.scheme)
        chainable_outputs = set(releasing) | set(forming_tails)
        if not chainable_outputs:
            return builder
        scheme = self.scheme
        any_input = scheme is ChainingScheme.ANY_INPUT
        if any_input:
            inputs = range(self.radix)
        else:
            # Same construction (and therefore the same set iteration
            # order) as the reference: equivalence depends on it.
            inputs = {holder[0] for holder in releasing.values()}
            inputs.update(
                hp for holders in forming_tails.values() for hp, _ in holders
            )
        occ = self._occ_mask
        in_vcs = self.in_vcs
        starv = self.starvation
        threshold_mode = self._threshold_mode
        conn_age = self.conn_age
        credits = self.credits
        out_vc_busy = self.out_vc_busy
        class_vcs = self._class_vcs
        add = builder.candidates.append
        for p in inputs:
            input_start_output = conn_in_start[p]
            input_connected = input_start_output is not None
            if input_connected and not (
                p in released_inputs and ("in", p) not in inhibited
            ):
                # Holding a connection beyond this cycle: no VC of this
                # input can chain.
                continue
            mask = occ[p]
            vcs = in_vcs[p]
            while mask:
                v = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                vcobj = vcs[v]
                q = vcobj.queue
                flit = q[0]
                active = vcobj.active_packet
                if active is not None:
                    o_front = vcobj.active_out_port
                elif flit.is_head:
                    o_front = flit.out_port
                else:  # body flit at front without VC state
                    continue
                front_bids_sa = (p, o_front) in sa_requests
                # Flits behind an SA-bidding front flit (Section 2.4):
                # only the next packet's head directly behind a
                # departing tail can chain.
                behind = None
                if front_bids_sa and flit.is_tail and len(q) > 1:
                    nxt = q[1]
                    if nxt.is_head:
                        behind = nxt
                front_chainable = o_front in chainable_outputs
                if not front_chainable and (
                    behind is None
                    or behind.out_port not in chainable_outputs
                ):
                    continue

                if front_chainable:
                    targets = ((flit, o_front, False),)
                    if behind is not None:
                        targets = ((flit, o_front, False),
                                   (behind, behind.out_port, True))
                else:
                    targets = ((behind, behind.out_port, True),)
                for cand_flit, o, is_behind in targets:
                    requires = (("front_departs",),) if is_behind else ()
                    if input_connected and input_start_output != o:
                        # Chaining depends on the release of the
                        # input's old connection: speculative class.
                        requires = (("own_release",),) + requires
                    if not is_behind and front_bids_sa:
                        # The front flit bids SA for this output; its
                        # only PC use is chaining onto a connection
                        # formed by a *different* tail this cycle.
                        if o not in forming_tails:
                            continue
                    holder = releasing.get(o)
                    if holder is not None:
                        age = conn_age[o]
                    elif o in forming_tails:
                        requires = requires + (("sa_tail", o),)
                        age = 0  # the connection forms this cycle
                    else:
                        continue
                    if threshold_mode and not starv.chainable(
                        age, cand_flit.packet.size - cand_flit.index
                    ):
                        continue
                    # Output-VC availability (Section 2.2 (b)+(c)).
                    if active is not None and cand_flit is flit:
                        if credits[o_front][vcobj.active_out_vc] == 0:
                            continue
                    else:
                        # Inlined _free_out_vc existence check.
                        busy = out_vc_busy[o]
                        creds = credits[o]
                        for w in class_vcs[cand_flit.vc_class]:
                            if not busy[w] and creds[w] > 0:
                                break
                        else:
                            continue
                    if holder is not None:
                        if not (any_input or scheme_admits(
                            scheme, p, v, holder[0], holder[1]
                        )):
                            continue
                    else:
                        tails = forming_tails[o]
                        if cand_flit is flit:
                            admitted = any(
                                (any_input or scheme_admits(scheme, p, v,
                                                            hp, hv))
                                and (hp, hv) != (p, v)
                                for hp, hv in tails
                            )
                        elif any_input:
                            admitted = True
                        else:
                            admitted = any(
                                scheme_admits(scheme, p, v, hp, hv)
                                for hp, hv in tails
                            )
                        if not admitted:
                            continue
                    add(PCCandidate(
                        input_port=p,
                        vc=v,
                        output_port=o,
                        priority=cand_flit.packet.priority,
                        flit=cand_flit,
                        speculative=bool(requires),
                        requires=requires,
                    ))
        return builder

    # ------------------------------------------------------------------
    # phase 5: SA commit with inlined round-robin VC arbitration
    # ------------------------------------------------------------------

    def _commit_sa(self, cycle, sa_grants, sa_contrib, departed_vcs):
        sa_winner_vc = {}
        sa_tail_outputs = {}
        if not sa_grants:
            return sa_winner_vc, sa_tail_outputs
        tr = self.trace
        tr_active = tr.active
        in_vcs = self.in_vcs
        arbiters = self._sa_vc_arbiters
        num_vcs = self.config.num_vcs
        conn_in = self.conn_in
        conn_out = self.conn_out
        conn_age = self.conn_age
        credits = self.credits
        out_vc_busy = self.out_vc_busy
        class_vcs = self._class_vcs
        tx = self._tx
        if tx is None:
            tx = self._tx = (
                [
                    (c._queue, c.delay) if c is not None else None
                    for c in self.out_flit_channels
                ],
                [
                    (c._queue, c.delay) if c is not None else None
                    for c in self.credit_up_channels
                ],
            )
        fill = self._fill
        occ = self._occ_mask
        downstream_router = self.downstream_router
        cache = self._route_cache
        port_flits = self.port_flits
        router_id = self.router_id
        for p, o in sa_grants.items():
            entries = sa_contrib[(p, o)]
            if len(entries) == 1:
                v = entries[0][0]
            else:
                best = max(prio for _, prio in entries)
                vcs = [v for v, prio in entries if prio == best]
                if len(vcs) == 1:
                    v = vcs[0]
                else:
                    pointer = arbiters[p].pointer
                    v = min(vcs, key=lambda x: (x - pointer) % num_vcs)
            arbiters[p].pointer = (v + 1) % num_vcs
            vcobj = in_vcs[p][v]
            q = vcobj.queue
            flit = q[0]

            if vcobj.active_packet is None:
                # Inlined _free_out_vc: lowest free VC of the class.
                ocredits = credits[o]
                busy = out_vc_busy[o]
                for w in class_vcs[flit.vc_class]:
                    if not busy[w] and ocredits[w] > 0:
                        break
                else:
                    # Only reachable for speculative-VA head grants: the
                    # output VC pool changed since eligibility; the SA
                    # grant is wasted (the output idles this cycle).
                    self.wasted_speculations += 1
                    continue
                vcobj.start_packet(flit.packet, o, w)
                busy[w] = True
                if tr_active:
                    tr.emit(
                        "vc_alloc", cycle, router=router_id, port=o,
                        vc=w, pid=flit.packet.pid,
                    )
            else:
                w = vcobj.active_out_vc

            if tr_active:
                tr.emit(
                    "sa_grant", cycle, router=router_id, port=o,
                    pid=flit.packet.pid, in_port=p, vc=v, out_vc=w,
                )
            # Inlined _send_flit (pop, credit, route memo, channel sends).
            q.popleft()
            vcobj.wait_cycles = 0
            fill[0] -= 1
            if not q:
                occ[p] &= ~(1 << v)
            credits[o][w] -= 1
            flit.vc = w
            is_tail = flit.is_tail
            if is_tail:
                vcobj.active_packet = None
                vcobj.active_out_port = None
                vcobj.active_out_vc = None
                out_vc_busy[o][w] = False
            if flit.is_head:
                downstream = downstream_router[o]
                if downstream is not None:
                    if cache is not None:
                        key = (downstream, flit.packet.dest)
                        hop = cache.get(key)
                        if hop is None:
                            hop = cache[key] = self.routing.next_hop(
                                downstream, flit.packet
                            )
                        flit.out_port, flit.vc_class = hop
                    else:
                        flit.out_port, flit.vc_class = self.routing.next_hop(
                            downstream, flit.packet
                        )
            oq, odelay = tx[0][o]
            oq.append((cycle + odelay, flit))
            port_flits[o] += 1
            up = tx[1][p]
            if up is not None:
                uq, udelay = up
                uq.append((cycle + udelay, v))
            if tr_active:
                tr.emit(
                    "flit_routed", cycle, router=router_id, port=o,
                    pid=flit.packet.pid, idx=flit.index, in_port=p, in_vc=v,
                    out_vc=w,
                )
                if is_tail:
                    tr.emit(
                        "vc_free", cycle, router=router_id, port=o, vc=w,
                        pid=flit.packet.pid,
                    )
            departed_vcs.add(p * num_vcs + v)
            sa_winner_vc[p] = v
            if is_tail:
                # Connection forms and releases in the same cycle; a
                # chained packet may take it over (validated in PC commit).
                sa_tail_outputs[o] = (p, v)
            else:
                conn_in[p] = o
                conn_out[o] = (p, v)
                conn_age[o] = 0
                if tr_active:
                    tr.emit(
                        "conn_held", cycle, router=router_id, port=o,
                        in_port=p, vc=v, pid=flit.packet.pid,
                    )
        return sa_winner_vc, sa_tail_outputs

    # ------------------------------------------------------------------
    # phase 6: PC commit with inlined validation / chain establishment
    # ------------------------------------------------------------------

    def _commit_pc(
        self, cycle, pc_grants, builder, sa_grants, sa_winner_vc,
        sa_tail_outputs, releasing, conn_out_start,
    ):
        # Reference _commit_pc with candidates_for, _pc_candidate_valid
        # and _establish_chain inlined (same candidate order: stable
        # sort on (speculative, -priority), filter in insertion order).
        candidates = builder.candidates
        in_vcs = self.in_vcs
        credits = self.credits
        out_vc_busy = self.out_vc_busy
        class_vcs = self._class_vcs
        conn_in = self.conn_in
        conn_out = self.conn_out
        conn_age = self.conn_age
        chain_stats = self.chain_stats
        scheme = self.scheme
        tr = self.trace
        tr_active = tr.active
        router_id = self.router_id
        for p, o in pc_grants.items():
            matches = [
                c for c in candidates
                if c.input_port == p and c.output_port == o
            ]
            if len(matches) > 1:
                matches.sort(key=_pc_candidate_order)
            chosen = None
            w = None
            for cand in matches:
                v = cand.vc
                vcobj = in_vcs[p][v]
                q = vcobj.queue
                if not q or q[0] is not cand.flit:
                    continue  # buffer moved unexpectedly
                # Conflict detection: SA granted the same input; only
                # the candidate directly behind the departing tail that
                # won SA in the same VC is compatible.
                if p in sa_grants and not (
                    sa_winner_vc.get(p) == v
                    and any(
                        pv == (p, v) for pv in sa_tail_outputs.values()
                    )
                ):
                    continue
                ok = True
                for req in cand.requires:
                    kind = req[0]
                    if kind == "own_release":
                        continue  # release happened during streaming
                    if kind == "front_departs":
                        if sa_winner_vc.get(p) != v:
                            ok = False
                            break
                        continue
                    if kind == "sa_tail":
                        winner = sa_tail_outputs.get(req[1])
                        if winner is None or not scheme_admits(
                            scheme, p, v, winner[0], winner[1]
                        ):
                            ok = False
                            break
                        continue
                    raise AssertionError(f"unknown PC requirement {req!r}")
                if not ok:
                    continue
                # Re-check an output VC is available *now* (tails freed
                # VCs and SA winners claimed VCs during this cycle).
                if vcobj.active_packet is not None:
                    if credits[vcobj.active_out_port][
                        vcobj.active_out_vc
                    ] == 0:
                        continue
                    w = None  # keeps its already-assigned VC
                else:
                    busy = out_vc_busy[o]
                    creds = credits[o]
                    for w in class_vcs[cand.flit.vc_class]:
                        if not busy[w] and creds[w] > 0:
                            break
                    else:
                        continue
                chosen = cand
                break
            if chosen is None:
                if p in sa_grants:
                    chain_stats.conflicts += 1
                else:
                    chain_stats.speculation_failures += 1
                continue
            # Inlined _establish_chain.
            v = chosen.vc
            vcobj = in_vcs[p][v]
            if vcobj.active_packet is None:
                vcobj.start_packet(chosen.flit.packet, o, w)
                out_vc_busy[o][w] = True
                if tr_active:
                    tr.emit(
                        "vc_alloc", cycle, router=router_id, port=o,
                        vc=w, pid=chosen.flit.packet.pid,
                    )
            conn_in[p] = o
            conn_out[o] = (p, v)
            holder = releasing.get(o)
            if holder is None:
                # Chained onto a connection formed (and released) by an
                # SA tail grant this cycle: a fresh connection.
                holder = sa_tail_outputs[o]
                conn_age[o] = 0
            # else: the connection persists across the chain; its age
            # keeps accumulating so starvation control still triggers.
            same_input = holder[0] == p
            same_vc = holder == (p, v)
            chain_stats.record_chain(same_input=same_input, same_vc=same_vc)
            if tr_active:
                tr.emit(
                    "pc_chain", cycle, router=router_id, port=o,
                    pid=chosen.flit.packet.pid, in_port=p, vc=v,
                    same_input=same_input, same_vc=same_vc,
                    speculative=chosen.speculative,
                )

    # ------------------------------------------------------------------
    # phase 7: end of cycle over held outputs / occupied VCs only
    # ------------------------------------------------------------------

    def _end_of_cycle(self, departed_vcs):
        # departed_vcs holds p * num_vcs + v ints (fast encoding).
        num_vcs = self._num_vcs
        conn_out = self.conn_out
        conn_age = self.conn_age
        for o in range(self.radix):
            if conn_out[o] is not None:
                conn_age[o] += 1
        occ = self._occ_mask
        in_vcs = self.in_vcs
        for p in range(self.radix):
            mask = occ[p]
            if not mask:
                continue
            vcs = in_vcs[p]
            base = p * num_vcs
            while mask:
                v = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                if base + v in departed_vcs:
                    continue
                vcobj = vcs[v]
                flit = vcobj.queue[0]
                if flit.is_head or vcobj.active_packet is not None:
                    vcobj.wait_cycles += 1
                    flit.packet.blocked_cycles += 1

    # ------------------------------------------------------------------

    def total_buffered_flits(self):
        # The shared fill cell is exact in this backend (receive and
        # _send_flit are the only queue mutators).
        return self._fill[0]
