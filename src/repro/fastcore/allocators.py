"""Fast-path separable allocation, bit-identical to the reference.

The reference :class:`~repro.allocators.separable.SeparableInputFirstAllocator`
pays per-call ``defaultdict`` construction, list comprehensions, and a
generic iteration loop even for the dominant single-iteration (iSLIP-1)
case. This subclass inlines that case:

- round-robin selection uses the closed form
  ``min(top, key=lambda idx: (idx - pointer) % size)``, which is exactly
  the reference arbiter's scan-from-pointer semantics;
- a single-request input/output skips arbitration entirely (the
  reference arbiter returns the lone request regardless of its pointer);
- pointer updates write the ``pointer`` attribute directly with the
  iSLIP rule ``(granted + 1) % size``.

Grant dicts are built in the same insertion order as the reference
(inputs in request-matrix order through the input stage, outputs in
first-survivor order through the output stage), which matters: the
router iterates grant dicts when committing, so ordering differences
would reorder trace events. Multi-iteration allocators (iSLIP-2 etc.)
delegate to the reference implementation unchanged. State layout is
inherited, so checkpoints round-trip between the two classes.
"""

from repro.allocators.separable import SeparableInputFirstAllocator


class FastSeparableInputFirstAllocator(SeparableInputFirstAllocator):
    """Single-iteration fast path over the reference iSLIP allocator."""

    def allocate(self, requests):
        if self.iterations != 1:
            return super().allocate(requests)
        # The router only ever submits in-range ports, so the reference
        # _validate() scan is skipped here (it raises on malformed input
        # but never alters behavior for valid matrices).
        if len(requests) == 1:
            ((i, o),) = requests
            self._output_arbiters[o].pointer = (i + 1) % self.num_inputs
            self._input_arbiters[i].pointer = (o + 1) % self.num_outputs
            return {i: o}
        seen_in = set()
        seen_out = set()
        for i, o in requests:
            if i in seen_in or o in seen_out:
                break
            seen_in.add(i)
            seen_out.add(o)
        else:
            # Conflict-free matrix: every input has one choice and every
            # output one survivor, so input-first allocation grants all
            # requests. Grant insertion and pointer updates follow the
            # matrix order, exactly as the generic path's survivor loop
            # would (survivors are keyed in by_input insertion order).
            input_arbiters = self._input_arbiters
            output_arbiters = self._output_arbiters
            num_inputs = self.num_inputs
            num_outputs = self.num_outputs
            grants = {}
            for i, o in requests:
                grants[i] = o
                output_arbiters[o].pointer = (i + 1) % num_inputs
                input_arbiters[i].pointer = (o + 1) % num_outputs
            return grants
        by_input = {}
        for (i, o), prio in requests.items():
            outputs = by_input.get(i)
            if outputs is None:
                by_input[i] = {o: prio}
            else:
                existing = outputs.get(o)
                if existing is None or prio > existing:
                    outputs[o] = prio

        input_arbiters = self._input_arbiters
        num_outputs = self.num_outputs
        survivors = {}
        for i, outputs in by_input.items():
            if len(outputs) == 1:
                for choice, best in outputs.items():
                    break
            else:
                best = max(outputs.values())
                pointer = input_arbiters[i].pointer
                # Manual round-robin scan (no generator/lambda frames):
                # smallest (o - pointer) % num_outputs among the best.
                best_dist = num_outputs
                for o, p in outputs.items():
                    if p == best:
                        dist = (o - pointer) % num_outputs
                        if dist < best_dist:
                            best_dist = dist
                            choice = o
            entry = survivors.get(choice)
            if entry is None:
                survivors[choice] = {i: best}
            else:
                entry[i] = best

        output_arbiters = self._output_arbiters
        num_inputs = self.num_inputs
        grants = {}
        for o, inputs in survivors.items():
            if len(inputs) == 1:
                for winner in inputs:
                    break
            else:
                best = max(inputs.values())
                pointer = output_arbiters[o].pointer
                best_dist = num_inputs
                for i, p in inputs.items():
                    if p == best:
                        dist = (i - pointer) % num_inputs
                        if dist < best_dist:
                            best_dist = dist
                            winner = i
            grants[winner] = o
            # iSLIP first-iteration pointer update for both arbiters.
            output_arbiters[o].pointer = (winner + 1) % num_inputs
            input_arbiters[winner].pointer = (o + 1) % num_outputs
        return grants


def upgrade_allocator(allocator):
    """Swap a reference allocator instance onto its fast-path class.

    Only exact ``SeparableInputFirstAllocator`` instances are upgraded
    (in place, preserving arbiter state and any construction-seeded
    RNGs); every other allocator kind — wavefront, augmenting-path,
    output-first — runs its reference implementation, which keeps the
    equivalence argument local to the one class reimplemented above.
    """
    if type(allocator) is SeparableInputFirstAllocator:
        allocator.__class__ = FastSeparableInputFirstAllocator
    return allocator
