"""The opt-in fast simulation core (``NetworkConfig.backend="fast"``).

A drop-in backend behind the reference ``Network``/runner interface,
bit-identical to the reference core — same ``SimResult``, metrics
export, trace-event stream, and checkpoint layout
(tests/test_fastcore_equivalence.py is the gate) — but substantially
faster. See DESIGN.md ("The fast core") for the state layout and the
equivalence contract, and :mod:`repro.fastcore.soa` for where NumPy is
(and deliberately is not) used; the core itself has no hard NumPy
dependency.

Unsupported combinations (fault injection, the reliable transport) fall
back to the reference core with a
:class:`~repro.network.network.BackendFallbackWarning` — never
silently. Use :func:`repro.network.network.build_network` to construct
the backend a config asks for.
"""

from repro.fastcore.allocators import FastSeparableInputFirstAllocator
from repro.fastcore.network import FastNetwork
from repro.fastcore.router import FastRouter
from repro.fastcore.soa import state_arrays

__all__ = [
    "FastNetwork",
    "FastRouter",
    "FastSeparableInputFirstAllocator",
    "state_arrays",
]
