"""Structure-of-arrays export of router state.

The fast core keeps its *hot* per-router state in packed Python ints
(see :mod:`repro.fastcore.router`): at NoC sizes (radix ~5, 4 VCs),
scalar element access into NumPy arrays costs more than int/bitmask
operations, so the per-cycle loops stay on packed ints and NumPy is
used where arrays genuinely win — whole-network analysis snapshots.

:func:`state_arrays` flattens every router's credits, VC occupancy,
connection tables, and chain ages into dense ``[router, port, ...]``
arrays (ragged radices are padded with ``-1``). With NumPy installed
the result is a dict of ``int64`` ndarrays ready for slicing /
aggregation (the live dashboard and hot-spot attribution tools consume
these); without it, the same data comes back as plain nested lists —
the fast core itself never requires NumPy.
"""

try:
    import numpy
except ImportError:  # pragma: no cover - exercised where numpy is absent
    numpy = None

#: Fill value for ports beyond a router's radix (ragged topologies).
PAD = -1


def state_arrays(network):
    """Dense SoA snapshot: credits, occupancy, connections, ages.

    Returns a dict with keys ``credits`` and ``occupancy`` (shape
    ``[R, Pmax, V]``), ``conn_in``, ``conn_age``, ``port_flits`` (shape
    ``[R, Pmax]``), and ``conn_out`` (shape ``[R, Pmax, 2]`` holding
    ``(input, vc)`` or ``(-1, -1)``). Entries beyond a router's radix
    are ``-1``. Values are NumPy ``int64`` arrays when NumPy is
    available, nested lists otherwise.
    """
    routers = network.routers
    num_routers = len(routers)
    max_radix = max(r.radix for r in routers)
    num_vcs = network.config.num_vcs

    credits = _full((num_routers, max_radix, num_vcs))
    occupancy = _full((num_routers, max_radix, num_vcs))
    conn_in = _full((num_routers, max_radix))
    conn_age = _full((num_routers, max_radix))
    port_flits = _full((num_routers, max_radix))
    conn_out = _full((num_routers, max_radix, 2))

    for r, router in enumerate(routers):
        for p in range(router.radix):
            rc = router.credits[p]
            vcs = router.in_vcs[p]
            for v in range(num_vcs):
                _set3(credits, r, p, v, rc[v])
                _set3(occupancy, r, p, v, len(vcs[v].queue))
            ci = router.conn_in[p]
            _set2(conn_in, r, p, ci if ci is not None else PAD)
            _set2(conn_age, r, p, router.conn_age[p])
            _set2(port_flits, r, p, router.port_flits[p])
            held = router.conn_out[p]
            if held is None:
                _set3(conn_out, r, p, 0, PAD)
                _set3(conn_out, r, p, 1, PAD)
            else:
                _set3(conn_out, r, p, 0, held[0])
                _set3(conn_out, r, p, 1, held[1])
    return {
        "credits": credits,
        "occupancy": occupancy,
        "conn_in": conn_in,
        "conn_age": conn_age,
        "port_flits": port_flits,
        "conn_out": conn_out,
    }


def state_arrays_from_state(router_states, num_vcs):
    """Rebuild the SoA export from routers' canonical ``state_dict()``s.

    ``router_states`` is the list of per-router ``state_dict(ctx)``
    outputs (the exact structures checkpoints store and
    :mod:`repro.obs.digest` hashes). Producing the same arrays
    :func:`state_arrays` reads off the live objects closes the coverage
    gap between the two representations: if the fast core's array view
    ever drifted from canonical state, the two exports would disagree.
    """
    num_routers = len(router_states)
    max_radix = max(len(state["conn_in"]) for state in router_states)

    credits = _full((num_routers, max_radix, num_vcs))
    occupancy = _full((num_routers, max_radix, num_vcs))
    conn_in = _full((num_routers, max_radix))
    conn_age = _full((num_routers, max_radix))
    port_flits = _full((num_routers, max_radix))
    conn_out = _full((num_routers, max_radix, 2))

    for r, state in enumerate(router_states):
        radix = len(state["conn_in"])
        for p in range(radix):
            rc = state["credits"][p]
            vcs = state["in_vcs"][p]
            for v in range(num_vcs):
                _set3(credits, r, p, v, rc[v])
                _set3(occupancy, r, p, v, len(vcs[v]["queue"]))
            ci = state["conn_in"][p]
            _set2(conn_in, r, p, ci if ci is not None else PAD)
            _set2(conn_age, r, p, state["conn_age"][p])
            _set2(port_flits, r, p, state["port_flits"][p])
            held = state["conn_out"][p]
            if held is None:
                _set3(conn_out, r, p, 0, PAD)
                _set3(conn_out, r, p, 1, PAD)
            else:
                _set3(conn_out, r, p, 0, held[0])
                _set3(conn_out, r, p, 1, held[1])
    return {
        "credits": credits,
        "occupancy": occupancy,
        "conn_in": conn_in,
        "conn_age": conn_age,
        "port_flits": port_flits,
        "conn_out": conn_out,
    }


def verify_state_arrays(network):
    """Assert the live SoA export matches the state_dict()-derived one.

    Raises AssertionError naming the first mismatching array; returns
    the (verified) live export. ``repro diverge`` runs this at a
    divergence point to tell SoA-maintenance bugs from allocation bugs.
    """
    from repro.checkpoint import SnapshotContext

    live = state_arrays(network)
    derived = state_arrays_from_state(
        [r.state_dict(SnapshotContext()) for r in network.routers],
        network.config.num_vcs,
    )
    for key in live:
        a, b = live[key], derived[key]
        if numpy is not None:
            equal = bool(numpy.array_equal(a, b))
        else:
            equal = a == b
        assert equal, (
            f"SoA export drifted from canonical state_dict() state: "
            f"array {key!r} differs"
        )
    return live


def _full(shape):
    if numpy is not None:
        return numpy.full(shape, PAD, dtype=numpy.int64)
    if len(shape) == 1:
        return [PAD] * shape[0]
    return [_full(shape[1:]) for _ in range(shape[0])]


def _set2(arr, i, j, value):
    if numpy is not None:
        arr[i, j] = value
    else:
        arr[i][j] = value


def _set3(arr, i, j, k, value):
    if numpy is not None:
        arr[i, j, k] = value
    else:
        arr[i][j][k] = value
