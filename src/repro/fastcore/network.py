"""The fast core's network: FastRouters plus a lean cycle loop.

FastNetwork inherits all wiring, checkpointing, and introspection from
the reference :class:`~repro.network.network.Network`; it overrides the
per-cycle loop to skip terminal objects that provably have nothing to
do this cycle:

- a sink only acts when its ejection channel has a flit due *now*;
- a source only pulls credits when its credit channel has one due now,
  and only steps when it has a packet queued or in flight.

Both gates reproduce the reference behavior exactly — the skipped calls
would have returned without touching any state or emitting any event.
Fault injection and the reliable transport are refused up front (the
runner falls back to the reference core for those runs), which is what
lets FastRouter drop the per-flit fault hooks.
"""

from repro.fastcore.router import FastRouter
from repro.fastcore.terminal import FastSink, FastSource
from repro.network.network import Network


class FastNetwork(Network):
    """Structure-of-arrays backend behind the reference interface."""

    ROUTER_CLS = FastRouter
    SOURCE_CLS = FastSource
    SINK_CLS = FastSink

    def attach_faults(self, controller):
        raise RuntimeError(
            "the fast core does not support fault injection; build the "
            "network with backend='reference' (the runner does this "
            "automatically, with a BackendFallbackWarning)"
        )

    def attach_transport(self, transport):
        raise RuntimeError(
            "the fast core does not support the reliable transport; "
            "build the network with backend='reference' (the runner "
            "does this automatically, with a BackendFallbackWarning)"
        )

    def step(self):
        """Advance one cycle (reference order, idle terminals skipped)."""
        now = self.cycle
        for router in self.step_routers:
            router.receive(now)
        for sink in self.sinks:
            q = sink.flit_channel._queue
            if q and q[0][0] <= now:
                sink.step(now)
        for source in self.step_sources:
            q = source.credit_channel._queue
            if q and q[0][0] <= now:
                source.receive_credits(now)
            if source._flits or source.queue:
                source.step(now)
        for router in self.step_routers:
            router.step(now)
        if self.sampler is not None:
            self.sampler.maybe_sample(now)
        if self.invariants is not None:
            self.invariants.maybe_check(now)
        if self.watchdog is not None:
            self.watchdog.maybe_check(now)
        self.cycle += 1
        if self.profiler is not None:
            self.profiler.end_cycle()

    def in_flight_flits(self):
        """Reference semantics via the routers' O(1) fill counters."""
        total = 0
        for router in self.routers:
            total += router._fill[0]
            for chan in router.out_flit_channels:
                if chan is not None:
                    total += len(chan._queue)
        return total

    def state_arrays(self):
        """Structure-of-arrays snapshot of the hot router state.

        See :func:`repro.fastcore.soa.state_arrays`; NumPy arrays when
        NumPy is installed, plain nested lists otherwise.
        """
        from repro.fastcore.soa import state_arrays

        return state_arrays(self)
