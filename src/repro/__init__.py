"""Packet Chaining: Efficient Single-Cycle Allocation for On-Chip Networks.

A from-scratch Python reproduction of Michelogiannakis, Jiang, Dally &
Becker (MICRO 2011): a cycle-accurate NoC simulator with virtual-channel
flow control, incremental allocation, a combined switch/VC allocator,
four switch-allocator families (iSLIP-k, wavefront, augmenting paths)
and the paper's packet-chaining mechanism, plus a cache-coherent CMP
model for the application study.

Quickstart::

    from repro import mesh_config, run_simulation, ChainingScheme

    cfg = mesh_config(chaining=ChainingScheme.SAME_INPUT)
    result = run_simulation(cfg, pattern="uniform", rate=0.4, packet_length=1)
    print(result.avg_throughput, result.packet_latency.mean)
"""

from repro.checkpoint import (
    CheckpointError,
    SimulationKilled,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.chaining import ChainingScheme, ChainStats
from repro.core.starvation import StarvationControl, StarvationMode
from repro.core.cost_model import AllocatorCostModel, CostReport
from repro.network.config import NetworkConfig, fbfly_config, mesh_config
from repro.network.network import Network
from repro.serve import (
    ExperimentService,
    JobSpec,
    job_records,
    load_result,
    spec_for,
    submit_spec,
    wait_for,
)
from repro.sim.runner import resume_simulation, run_simulation
from repro.parallel import ShardRunError, ShardRunResult, shard_run
from repro.sim.sweep import find_saturation, rate_sweep
from repro.stats.summary import SimResult

__version__ = "1.0.0"

__all__ = [
    "ChainingScheme",
    "ChainStats",
    "StarvationControl",
    "StarvationMode",
    "AllocatorCostModel",
    "CostReport",
    "NetworkConfig",
    "mesh_config",
    "fbfly_config",
    "Network",
    "run_simulation",
    "resume_simulation",
    "rate_sweep",
    "find_saturation",
    "SimResult",
    "CheckpointError",
    "SimulationKilled",
    "load_checkpoint",
    "save_checkpoint",
    "shard_run",
    "ShardRunError",
    "ShardRunResult",
    "ExperimentService",
    "JobSpec",
    "job_records",
    "load_result",
    "spec_for",
    "submit_spec",
    "wait_for",
]
