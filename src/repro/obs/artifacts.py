"""Run-artifact flight recorder and regression diffing.

``repro run --artifacts DIR`` (and ``repro sweep``) write a
self-describing directory so a run's performance claims survive the
machine, the branch, and the person who made them:

.. code-block:: text

    DIR/
      manifest.json   # full config, seed, traffic, phases, versions
      summary.json    # SimResult.to_dict()
      metrics.json    # MetricsRegistry JSON export
      metrics.prom    # same registry, Prometheus text format
      samples.jsonl   # optional: NetworkSampler snapshots
      spans.json      # optional: span latency decomposition
      rate_*/         # sweep artifacts: one run artifact per rate

``repro diff A B --threshold PCT`` compares two artifact directories on
the headline metrics (latency mean/p99 up = bad, throughput avg/min
down = bad) and exits non-zero when any delta crosses the threshold in
the bad direction — the CLI doubles as a CI perf gate. Sweep artifact
pairs diff rate-by-rate over their common rates.
"""

import contextlib
import json
import os
import platform
import tempfile
import time
from dataclasses import dataclass
from typing import List, Optional

MANIFEST = "manifest.json"
SUMMARY = "summary.json"
METRICS_JSON = "metrics.json"
METRICS_PROM = "metrics.prom"
SAMPLES = "samples.jsonl"
SPANS = "spans.json"

#: (metric name, extractor path in summary.json, higher_is_better)
_SUMMARY_METRICS = (
    ("packet_latency_mean", ("packet_latency", "mean"), False),
    ("packet_latency_p99", ("packet_latency", "p99"), False),
    ("avg_throughput", ("avg_throughput",), True),
    ("min_throughput", ("min_throughput",), True),
)


@contextlib.contextmanager
def atomic_write(path, mode="w"):
    """Write ``path`` via a same-directory temp file plus ``os.replace``.

    A crash mid-write leaves either the previous file contents or
    nothing — never a truncated artifact. Used for every artifact and
    checkpoint file. ``mode`` is ``"w"`` or ``"wb"``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def _dump(path, payload):
    with atomic_write(path) as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _load(path):
    with open(path) as fh:
        return json.load(fh)


def build_manifest(config, run_info=None, kind="run"):
    """The self-description block: enough to re-run the experiment."""
    from repro import __version__

    return {
        "kind": kind,
        "schema": 1,
        "config": config.to_dict(),
        "seed": config.seed,
        "run": dict(run_info or {}),
        "versions": {
            "repro": __version__,
            "python": platform.python_version(),
        },
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def write_run_artifacts(
    directory, config, result, registry=None, run_info=None,
    sampler=None, span_set=None,
):
    """Write one run's artifact directory; returns the file list."""
    os.makedirs(directory, exist_ok=True)
    written = [MANIFEST, SUMMARY]
    _dump(os.path.join(directory, SUMMARY), result.to_dict())
    if registry is not None:
        _dump(os.path.join(directory, METRICS_JSON), registry.to_dict())
        with atomic_write(os.path.join(directory, METRICS_PROM)) as fh:
            fh.write(registry.to_prometheus())
        written += [METRICS_JSON, METRICS_PROM]
    if sampler is not None:
        sampler.save_jsonl(os.path.join(directory, SAMPLES))
        written.append(SAMPLES)
    if span_set is not None:
        _dump(os.path.join(directory, SPANS), span_set.decomposition())
        written.append(SPANS)
    manifest = build_manifest(config, run_info=run_info, kind="run")
    manifest["files"] = sorted(written)
    _dump(os.path.join(directory, MANIFEST), manifest)
    return manifest["files"]


def rate_subdir(rate):
    """Canonical sweep subdirectory name for one injection rate."""
    return f"rate_{rate:.4f}"


def write_sweep_manifest(directory, config, rates, run_info=None):
    """Top-level manifest for a sweep artifact tree."""
    os.makedirs(directory, exist_ok=True)
    manifest = build_manifest(config, run_info=run_info, kind="sweep")
    manifest["rates"] = list(rates)
    manifest["runs"] = [rate_subdir(rate) for rate in rates]
    _dump(os.path.join(directory, MANIFEST), manifest)
    return manifest


# ---------------------------------------------------------------------------
# diffing


@dataclass
class DiffRow:
    """One metric compared across two artifact directories."""

    metric: str
    base: float
    new: float
    delta_pct: float  # signed percent change, new vs base
    higher_is_better: bool
    regressed: bool

    def to_dict(self):
        return {
            "metric": self.metric,
            "base": self.base,
            "new": self.new,
            "delta_pct": self.delta_pct,
            "regressed": self.regressed,
        }


@dataclass
class ArtifactDiff:
    """All compared metrics for a pair of artifact directories."""

    base_dir: str
    new_dir: str
    threshold_pct: float
    rows: List[DiffRow]
    #: Sweep diffs: one nested ArtifactDiff per common rate subdir.
    children: Optional[dict] = None

    @property
    def regressions(self):
        out = [row for row in self.rows if row.regressed]
        for child in (self.children or {}).values():
            out.extend(child.regressions)
        return out

    def to_dict(self):
        data = {
            "base": self.base_dir,
            "new": self.new_dir,
            "threshold_pct": self.threshold_pct,
            "rows": [row.to_dict() for row in self.rows],
            "regressions": len(self.regressions),
        }
        if self.children:
            data["runs"] = {
                name: child.to_dict()
                for name, child in sorted(self.children.items())
            }
        return data


def _dig(data, path):
    for key in path:
        if not isinstance(data, dict) or key not in data:
            return None
        data = data[key]
    return data if isinstance(data, (int, float)) else None


def _artifact_metrics(directory):
    """Extract the comparable metrics from one artifact directory.

    Prefers summary.json; falls back to metrics.json (gauges and the
    latency histogram) for minimal baselines that check in metrics only.
    """
    values = {}
    summary_path = os.path.join(directory, SUMMARY)
    if os.path.exists(summary_path):
        summary = _load(summary_path)
        for name, path, _ in _SUMMARY_METRICS:
            value = _dig(summary, path)
            if value is not None:
                values[name] = value
    metrics_path = os.path.join(directory, METRICS_JSON)
    if os.path.exists(metrics_path):
        metrics = _load(metrics_path)
        gauges = metrics.get("gauges", {})
        values.setdefault("avg_throughput", gauges.get("throughput_avg"))
        values.setdefault("min_throughput", gauges.get("throughput_min"))
        hist = metrics.get("histograms", {}).get("packet_latency_cycles")
        if hist and hist.get("count"):
            values.setdefault(
                "packet_latency_mean", hist["sum"] / hist["count"]
            )
    return {k: v for k, v in values.items() if v is not None}


def _compare_run(base_dir, new_dir, threshold_pct):
    base = _artifact_metrics(base_dir)
    new = _artifact_metrics(new_dir)
    common = [
        (name, higher)
        for name, _, higher in _SUMMARY_METRICS
        if name in base and name in new
    ]
    if not common:
        raise ValueError(
            f"nothing to compare: no shared metrics between {base_dir!r} "
            f"and {new_dir!r} (need summary.json or metrics.json)"
        )
    rows = []
    for name, higher in common:
        b, n = base[name], new[name]
        if b == n:
            delta = 0.0
        elif b == 0:
            delta = float("inf") if n > 0 else float("-inf")
        else:
            delta = 100.0 * (n - b) / abs(b)
        if higher:
            regressed = delta < -threshold_pct
        else:
            regressed = delta > threshold_pct
        rows.append(DiffRow(name, b, n, delta, higher, regressed))
    return ArtifactDiff(base_dir, new_dir, threshold_pct, rows)


def _manifest_kind(directory):
    path = os.path.join(directory, MANIFEST)
    if os.path.exists(path):
        return _load(path).get("kind", "run")
    return "run"


def compare_artifacts(base_dir, new_dir, threshold_pct=5.0):
    """Diff two artifact directories; works for run and sweep layouts."""
    if _manifest_kind(base_dir) == "sweep" and _manifest_kind(new_dir) == "sweep":
        base_runs = {
            d for d in os.listdir(base_dir)
            if d.startswith("rate_")
            and os.path.isdir(os.path.join(base_dir, d))
        }
        new_runs = {
            d for d in os.listdir(new_dir)
            if d.startswith("rate_")
            and os.path.isdir(os.path.join(new_dir, d))
        }
        common = sorted(base_runs & new_runs)
        if not common:
            raise ValueError(
                f"sweep artifacts share no rate subdirectories: "
                f"{base_dir!r} vs {new_dir!r}"
            )
        children = {
            name: _compare_run(
                os.path.join(base_dir, name),
                os.path.join(new_dir, name),
                threshold_pct,
            )
            for name in common
        }
        return ArtifactDiff(
            base_dir, new_dir, threshold_pct, rows=[], children=children
        )
    return _compare_run(base_dir, new_dir, threshold_pct)


def _fmt_delta(delta):
    if delta == float("inf"):
        return "+inf"
    if delta == float("-inf"):
        return "-inf"
    return f"{delta:+.2f}%"


def format_diff(diff):
    """Human-readable diff table with a final verdict line."""
    lines = [f"comparing {diff.base_dir} (base) vs {diff.new_dir} (new), "
             f"threshold {diff.threshold_pct:g}%"]

    def rows_for(d, indent=""):
        lines.append(
            f"{indent}  {'metric':<20} {'base':>12} {'new':>12}"
            f" {'delta':>9}  {'':<4}"
        )
        for row in d.rows:
            flag = "REGR" if row.regressed else "ok"
            lines.append(
                f"{indent}  {row.metric:<20} {row.base:>12.4f}"
                f" {row.new:>12.4f} {_fmt_delta(row.delta_pct):>9}  {flag}"
            )

    if diff.children:
        for name, child in sorted(diff.children.items()):
            lines.append(f"{name}:")
            rows_for(child, indent="  ")
    else:
        rows_for(diff)
    regressions = diff.regressions
    if regressions:
        lines.append(
            f"REGRESSION: {len(regressions)} metric(s) past the "
            f"{diff.threshold_pct:g}% threshold"
        )
    else:
        lines.append("no regressions")
    return "\n".join(lines) + "\n"
