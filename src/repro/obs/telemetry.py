"""Host-performance run telemetry: heartbeats, progress, ETA.

A :class:`RunTelemetry` rides along with one simulation (attached via
``run_simulation(telemetry=...)``) and periodically reports how the run
is doing *on the host*: simulated cycle reached, instantaneous and
average wall-clock cycles/sec, fraction of the phase schedule
completed, an ETA, resident-set memory, and — when a
:class:`~repro.obs.profiler.PhaseProfiler` is also attached — the
per-phase wall-time split so far.

Two independent outputs, both optional:

- ``path`` — an append-only JSONL heartbeat file. Every record is
  flushed and fsynced, so another process (``repro watch``) can tail
  live state even if this process is later SIGKILLed; a torn final
  line is tolerated by :func:`read_heartbeats`.
- ``console`` — a text stream (normally ``sys.stderr``) that gets a
  single carriage-return-rewritten progress line per heartbeat, so
  ``repro run --progress --json`` keeps machine-readable stdout clean.

Sweeps write one heartbeat file per point into a shared telemetry
directory prepared by :func:`init_telemetry_dir`; ``repro watch DIR``
(:mod:`repro.obs.watch`) renders the directory as a live dashboard.

Overhead: the hot path pays one attribute load and an integer compare
per cycle between heartbeats (``on_cycle`` returns immediately until
the next sampling cycle), matching the trace bus's disabled-by-default
budget; ``benchmarks/test_obs_overhead.py`` holds it under 5%.
"""

import json
import os
import socket
import time

#: Suffix for per-run heartbeat files inside a telemetry directory.
HEARTBEAT_SUFFIX = ".hb.jsonl"

#: Name of the per-sweep manifest written by :func:`init_telemetry_dir`.
TELEMETRY_MANIFEST = "sweep.json"


def rss_kb():
    """Resident set size of this process in kB (0 if undeterminable)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kB; macOS reports bytes.
        return usage // 1024 if usage > 1 << 30 else usage
    except Exception:  # pragma: no cover - platform without getrusage
        return 0


def _format_eta(seconds):
    """Compact ``h:mm:ss`` rendering (``"-"`` when unknown)."""
    if seconds is None or seconds < 0:
        return "-"
    seconds = int(round(seconds))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


class RunTelemetry:
    """Heartbeat emitter for one simulation run.

    ``every`` is the sampling period in cycles. ``total_cycles`` is the
    planned phase schedule (warmup + measure + drain); the drain may end
    early on quiescence, so progress/ETA treat it as an upper bound.
    ``label``/``rate`` identify the run inside a sweep's telemetry
    directory. The runner calls :meth:`begin`, :meth:`on_cycle` once per
    simulated cycle, and :meth:`finish`.
    """

    def __init__(self, path=None, every=1000, console=None, label="",
                 rate=None, total_cycles=None, clock=time.monotonic,
                 walltime=time.time):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = path
        self.every = every
        self.console = console
        self.label = label
        self.rate = rate
        self.total_cycles = total_cycles
        self.records_written = 0
        self._clock = clock
        self._walltime = walltime
        self._fh = None
        self._profiler = None
        self._start_time = None
        self._start_cycle = 0
        self._last_time = None
        self._last_cycle = 0
        self._next_cycle = every
        self._finished = False
        self._console_dirty = False

    # --- lifecycle (called by the runner) -----------------------------

    def begin(self, total_cycles=None, profiler=None, start_cycle=0):
        """Open the heartbeat file and emit the ``start`` record."""
        if total_cycles is not None:
            self.total_cycles = total_cycles
        self._profiler = profiler
        now = self._clock()
        self._start_time = self._last_time = now
        self._start_cycle = self._last_cycle = start_cycle
        self._next_cycle = start_cycle + self.every
        if self.path is not None and self._fh is None:
            self._fh = open(self.path, "a")
        self._emit(
            {
                "ev": "start",
                "t": self._walltime(),
                "cycle": start_cycle,
                "total_cycles": self.total_cycles,
                "label": self.label,
                "rate": self.rate,
                "pid": os.getpid(),
                "host": socket.gethostname(),
            }
        )

    def on_cycle(self, cycle, phase):
        """Hot-path hook: emit a heartbeat every ``every`` cycles."""
        if cycle < self._next_cycle:
            return
        self._next_cycle = cycle + self.every
        self._heartbeat(cycle, phase)

    def finish(self, status="done", cycle=None, result=None):
        """Emit the terminal record and close the heartbeat file.

        ``status`` is ``"done"`` for a clean finish, or a short reason
        (``"killed"``, ``"failed"``) otherwise. Safe to call twice.
        """
        if self._finished:
            return
        self._finished = True
        now = self._clock()
        elapsed = (now - self._start_time) if self._start_time else 0.0
        if cycle is None:
            cycle = self._last_cycle
        cycles = cycle - self._start_cycle
        record = {
            "ev": "finish",
            "t": self._walltime(),
            "status": status,
            "cycle": cycle,
            "total_cycles": self.total_cycles,
            "wall_seconds": elapsed,
            "cycles_per_sec": cycles / elapsed if elapsed > 0 else 0.0,
            "rss_kb": rss_kb(),
            "label": self.label,
            "rate": self.rate,
        }
        if result is not None:
            record["result"] = {
                "avg_throughput": result.avg_throughput,
                "packet_latency_mean": result.packet_latency.mean,
                "cycles_run": result.cycles_run,
            }
        self._emit(record)
        if self.console is not None and self._console_dirty:
            # End the carriage-return progress line cleanly.
            self.console.write("\n")
            self.console.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # --- internals ----------------------------------------------------

    def _heartbeat(self, cycle, phase):
        now = self._clock()
        span = now - self._last_time
        inst = (cycle - self._last_cycle) / span if span > 0 else 0.0
        elapsed = now - self._start_time
        avg = (cycle - self._start_cycle) / elapsed if elapsed > 0 else 0.0
        progress = eta = None
        if self.total_cycles:
            progress = min(1.0, cycle / self.total_cycles)
            if avg > 0:
                eta = max(0, self.total_cycles - cycle) / avg
        record = {
            "ev": "heartbeat",
            "t": self._walltime(),
            "cycle": cycle,
            "total_cycles": self.total_cycles,
            "phase": phase,
            "cycles_per_sec": inst,
            "avg_cycles_per_sec": avg,
            "progress": progress,
            "eta_sec": eta,
            "rss_kb": rss_kb(),
            "label": self.label,
            "rate": self.rate,
            "pid": os.getpid(),
        }
        if self._profiler is not None:
            record["phase_seconds"] = self._profiler.phase_totals()
        self._emit(record)
        if self.console is not None:
            self._console_line(record)
        self._last_time, self._last_cycle = now, cycle

    def _console_line(self, record):
        total = f"/{self.total_cycles}" if self.total_cycles else ""
        pct = (
            f" ({100 * record['progress']:.0f}%)"
            if record["progress"] is not None
            else ""
        )
        self.console.write(
            f"\rcycle {record['cycle']}{total}{pct}"
            f"  {record['cycles_per_sec']:.0f} cycles/sec"
            f"  eta {_format_eta(record['eta_sec'])}  "
        )
        self.console.flush()
        self._console_dirty = True

    def _emit(self, record):
        self.records_written += 1
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, separators=(",", ":")))
        self._fh.write("\n")
        # Flush + fsync per record: a heartbeat that was reported is
        # durable, so `repro watch` never sees a silently-stale file
        # from a live process (only from a dead one).
        self._fh.flush()
        os.fsync(self._fh.fileno())


# ---------------------------------------------------------------------------
# telemetry directories (sweeps)


def point_heartbeat_path(directory, index):
    """Heartbeat file for sweep point ``index`` inside ``directory``."""
    return os.path.join(directory, f"point{index:04d}{HEARTBEAT_SUFFIX}")


def init_telemetry_dir(directory, points, walltime=time.time):
    """Prepare a sweep telemetry directory and write its manifest.

    ``points`` is a list of ``{"label", "rate"}``-style dicts in sweep
    order; the manifest lets ``repro watch`` show points that have not
    produced a heartbeat yet (queued behind the worker pool). Stale
    heartbeat files from a previous sweep in the same directory are
    removed so the dashboard never mixes two sweeps.
    """
    os.makedirs(directory, exist_ok=True)
    for name in os.listdir(directory):
        if name.endswith(HEARTBEAT_SUFFIX):
            os.unlink(os.path.join(directory, name))
    manifest = {
        "created": walltime(),
        "pid": os.getpid(),
        "points": [
            {
                "index": i,
                "file": os.path.basename(point_heartbeat_path(directory, i)),
                "label": p.get("label", ""),
                "rate": p.get("rate"),
            }
            for i, p in enumerate(points)
        ],
    }
    path = os.path.join(directory, TELEMETRY_MANIFEST)
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")
    return manifest


def heartbeat_age(path, now=None):
    """Seconds since ``path`` was last appended to (None if absent).

    The age of a heartbeat file's mtime is the liveness signal lease
    supervision runs on: every record is flushed+fsynced on write, so a
    fresh mtime means the writer was alive that recently, and a stale
    mtime means it is wedged or dead — even SIGKILL cannot forge a
    newer timestamp. Uses the filesystem clock (``time.time`` domain).
    """
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return None
    return max(0.0, (time.time() if now is None else now) - mtime)


def read_heartbeats(path):
    """Parse one heartbeat file; a torn final line is discarded.

    Returns the list of record dicts. Missing file -> empty list, so
    watchers can poll paths that workers have not created yet.
    """
    records = []
    try:
        fh = open(path)
    except OSError:
        return records
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: the writer died mid-append
            if isinstance(record, dict):
                records.append(record)
    return records
