"""Live ASCII dashboard over a sweep telemetry directory.

``repro watch DIR`` polls the heartbeat files that
:func:`~repro.sim.parallel.parallel_sweep` /
:func:`~repro.sim.sweep.rate_sweep` workers write (obs.telemetry) and
renders the sweep's host-side state: a progress bar, cycle position,
instantaneous cycles/sec and ETA per point, plus aggregate throughput,
the overall ETA, and stragglers (running points significantly behind
the mean progress). Because heartbeats are fsynced per record, the
dashboard is accurate for running sweeps, crashed sweeps (points go
``stalled?`` once their heartbeats stop), and finished ones alike.

The scanner is pure (directory -> :class:`WatchState`), so the renderer
and the CLI loop are independently testable.
"""

import json
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.telemetry import (
    HEARTBEAT_SUFFIX,
    TELEMETRY_MANIFEST,
    read_heartbeats,
)

#: A running point whose last heartbeat is older than this many seconds
#: is flagged as possibly stalled (its worker may have died mid-run).
STALE_AFTER = 30.0

#: A running point this far (absolute progress fraction) behind the
#: mean progress of running points is reported as a straggler.
STRAGGLER_GAP = 0.25


@dataclass
class PointState:
    """Telemetry-derived state of one sweep point."""

    index: int
    label: str = ""
    rate: Optional[float] = None
    #: pending | running | done | killed | failed | stalled?
    status: str = "pending"
    cycle: int = 0
    total_cycles: Optional[int] = None
    cycles_per_sec: float = 0.0
    eta_sec: Optional[float] = None
    rss_kb: int = 0
    wall_seconds: Optional[float] = None
    last_update: Optional[float] = None
    pid: Optional[int] = None

    @property
    def progress(self):
        if self.status == "done":
            return 1.0
        if not self.total_cycles:
            return None
        return min(1.0, self.cycle / self.total_cycles)

    @property
    def finished(self):
        return self.status in ("done", "killed", "failed")


@dataclass
class WatchState:
    """Everything one dashboard frame needs."""

    directory: str
    points: List[PointState] = field(default_factory=list)

    @property
    def counts(self):
        tally = {}
        for point in self.points:
            tally[point.status] = tally.get(point.status, 0) + 1
        return tally

    @property
    def all_finished(self):
        return bool(self.points) and all(p.finished for p in self.points)

    @property
    def aggregate_cycles_per_sec(self):
        """Summed instantaneous cycles/sec over running points."""
        return sum(
            p.cycles_per_sec for p in self.points if p.status == "running"
        )

    @property
    def eta_sec(self):
        """Worst per-point ETA: the sweep finishes with its slowest point."""
        etas = [
            p.eta_sec
            for p in self.points
            if p.status == "running" and p.eta_sec is not None
        ]
        return max(etas) if etas else None

    def stragglers(self, gap=STRAGGLER_GAP):
        """Running points at least ``gap`` behind the running mean."""
        running = [
            p for p in self.points
            if p.status == "running" and p.progress is not None
        ]
        if len(running) < 2:
            return []
        mean = sum(p.progress for p in running) / len(running)
        return [p for p in running if mean - p.progress >= gap]


def _point_from_records(index, label, rate, records, now, stale_after):
    point = PointState(index, label or "", rate)
    if not records:
        return point
    last = records[-1]
    point.label = last.get("label") or point.label
    if last.get("rate") is not None:
        point.rate = last["rate"]
    point.total_cycles = last.get("total_cycles") or point.total_cycles
    point.cycle = last.get("cycle") or 0
    point.last_update = last.get("t")
    point.pid = last.get("pid")
    if last.get("ev") == "finish":
        point.status = last.get("status", "done")
        point.cycles_per_sec = last.get("cycles_per_sec", 0.0)
        point.wall_seconds = last.get("wall_seconds")
        point.rss_kb = last.get("rss_kb", 0)
        return point
    point.status = "running"
    if last.get("ev") == "heartbeat":
        point.cycles_per_sec = last.get("cycles_per_sec", 0.0)
        point.eta_sec = last.get("eta_sec")
        point.rss_kb = last.get("rss_kb", 0)
    if (
        point.last_update is not None
        and now - point.last_update > stale_after
    ):
        point.status = "stalled?"
    return point


def scan_telemetry_dir(directory, now=None, stale_after=STALE_AFTER):
    """Build a :class:`WatchState` from one telemetry directory.

    Points come from the sweep manifest when present (so queued points
    that have no heartbeat file yet still show as ``pending``), plus
    any extra ``*.hb.jsonl`` files found on disk.
    """
    if now is None:
        now = time.time()
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no telemetry directory: {directory}")
    entries = []  # (index, file, label, rate)
    seen = set()
    manifest_path = os.path.join(directory, TELEMETRY_MANIFEST)
    if os.path.exists(manifest_path):
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
            for p in manifest.get("points", ()):
                entries.append(
                    (p.get("index", len(entries)), p.get("file", ""),
                     p.get("label", ""), p.get("rate"))
                )
                seen.add(p.get("file", ""))
        except (json.JSONDecodeError, OSError):
            pass  # fall back to the heartbeat files alone
    for name in sorted(os.listdir(directory)):
        if name.endswith(HEARTBEAT_SUFFIX) and name not in seen:
            entries.append((len(entries), name, "", None))
    state = WatchState(directory)
    for index, filename, label, rate in entries:
        records = (
            read_heartbeats(os.path.join(directory, filename))
            if filename
            else []
        )
        state.points.append(
            _point_from_records(index, label, rate, records, now, stale_after)
        )
    return state


# ---------------------------------------------------------------------------
# rendering


def _bar(progress, width=20):
    if progress is None:
        return "?" * width
    filled = int(round(progress * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_eta(seconds):
    if seconds is None:
        return "-"
    seconds = int(round(max(0, seconds)))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


def _point_name(point):
    parts = []
    if point.label:
        parts.append(point.label)
    if point.rate is not None:
        parts.append(f"r={point.rate:g}")
    return " ".join(parts) or f"point{point.index}"


def format_watch(state, bar_width=20):
    """One dashboard frame as text."""
    counts = state.counts
    order = ("done", "running", "pending", "stalled?", "killed", "failed")
    summary = ", ".join(
        f"{counts[k]} {k}" for k in order if counts.get(k)
    ) or "no points"
    lines = [
        f"watch {state.directory}: {len(state.points)} points ({summary})"
    ]
    name_w = max(
        [len(_point_name(p)) for p in state.points] + [5]
    )
    for point in state.points:
        pct = (
            f"{100 * point.progress:3.0f}%"
            if point.progress is not None
            else "  ??"
        )
        if point.status == "running":
            speed = f"{point.cycles_per_sec:9.0f} c/s"
            tail = f"eta {_fmt_eta(point.eta_sec)}"
        elif point.status == "done":
            speed = f"{point.cycles_per_sec:9.0f} c/s"
            tail = (
                f"took {_fmt_eta(point.wall_seconds)}"
                if point.wall_seconds is not None
                else ""
            )
        else:
            speed = f"{'-':>9}    "
            tail = ""
        lines.append(
            f"  {_point_name(point):<{name_w}} [{_bar(point.progress, bar_width)}]"
            f" {pct}  cycle {point.cycle:>8}  {speed}  {point.status:<8} {tail}".rstrip()
        )
    running = counts.get("running", 0)
    if running:
        lines.append(
            f"aggregate: {state.aggregate_cycles_per_sec:.0f} cycles/sec"
            f" across {running} running; sweep eta {_fmt_eta(state.eta_sec)}"
        )
    stragglers = state.stragglers()
    if stragglers:
        names = ", ".join(_point_name(p) for p in stragglers)
        lines.append(f"stragglers: {names}")
    if state.all_finished:
        lines.append("sweep finished")
    return "\n".join(lines) + "\n"


def watch(directory, out, follow=True, interval=2.0, clock=time.time,
          sleep=time.sleep, max_frames=None, stale_after=STALE_AFTER):
    """Render the dashboard; with ``follow`` poll until the sweep ends.

    Returns 0 when every point finished cleanly, 1 when any point
    failed/was killed/looks stalled, 2 when the directory is missing.
    In follow mode a TTY gets in-place redraws (ANSI home+clear);
    non-TTY output just prints a frame per poll.
    """
    is_tty = getattr(out, "isatty", lambda: False)()
    frames = 0
    while True:
        try:
            state = scan_telemetry_dir(
                directory, now=clock(), stale_after=stale_after
            )
        except FileNotFoundError as exc:
            out.write(f"repro watch: {exc}\n")
            return 2
        frame = format_watch(state)
        if is_tty and follow and frames:
            out.write("\x1b[H\x1b[2J")
        out.write(frame)
        out.flush()
        frames += 1
        done = state.all_finished
        if not follow or done or (max_frames and frames >= max_frames):
            counts = state.counts
            bad = (
                counts.get("failed", 0) + counts.get("killed", 0)
                + counts.get("stalled?", 0)
            )
            return 1 if bad else 0
        sleep(interval)
