"""Per-cycle hierarchical state digests over ``state_dict()`` state.

Every component that already knows how to checkpoint itself (routers —
whose state nests their VCs, channels, allocators and arbiters —
terminal sources/sinks, the StatsCollector, the traffic injector, and
the network RNG) gains a cheap rolling digest: a SHA-256 over the
*canonical JSON* of its ``state_dict()`` output, using exactly the
encoding checkpoints use (:func:`repro.checkpoint.canonical_json`), so
the digest of a component is stable across processes, dict insertion
orders, and backends.

The hierarchy is Merkle-style:

- **field** — one entry inside a component's ``state_dict()``;
- **component digest** — SHA-256 of the canonical JSON of
  ``{"state": state_dict, "packets": interned packet table}`` (each
  component gets a private
  :class:`~repro.checkpoint.SnapshotContext`, so drift in a packet
  field surfaces in the digest of the component holding that packet);
- **network root** — SHA-256 of the canonical JSON of the
  ``{path: component digest}`` map;
- **run fingerprint** — rolling SHA-256 over the ``cycle:root`` lines
  of every digest record taken during a run.

A mismatch at any level descends: unequal fingerprints → first record
with unequal roots → component paths whose digests differ →
:func:`state_diff` on the two components' states names the exact
fields. :mod:`repro.obs.lockstep` drives that descent between two live
networks; ``repro diverge`` is the CLI on top.

:class:`DigestRecorder` streams records as JSONL alongside the
existing telemetry/trace streams (``.gz`` paths compress) and is wired
into the runner via ``run_simulation(digest=...)`` /
``digest_every=``.

Periodic records hash *simulation* state only (routers, terminals,
RNGs, injector): the StatsCollector is a derived observer whose every
divergence is caused by a simulation-state divergence at the same
cycle, and its state grows linearly with the run — hashing it each
stride would make the digest tax grow with run length. The final
record (``"final": true``) covers observers too, so the whole-run
fingerprint still seals the complete end state.
"""

import hashlib
import json
from collections import deque

from repro.checkpoint import SnapshotContext, canonical_json, canonical_sha256
from repro.core.serialization import rng_state_to_json
from repro.obs.trace import open_text_read, open_text_write

#: Bump on any incompatible change to the digest-stream layout.
DIGEST_SCHEMA = 1

#: Sentinel in :func:`state_diff` entries for "key absent on this side".
MISSING = "<missing>"


def component_state(component, needs_ctx=True, packet_cache=None):
    """A component's canonical state blob: state_dict + interned packets.

    Each component gets a *fresh* :class:`SnapshotContext`, so its blob
    is self-contained: a packet referenced from two components appears
    in (and is hashed into) both, and a drifting packet field is
    attributed to every component that can see it. ``packet_cache``
    shares the serialized packet dicts between components digested at
    the same instant (a per-record cost saving; the per-component
    tables still list exactly the packets each component sees).
    """
    ctx = SnapshotContext(packet_cache=packet_cache)
    state = component.state_dict(ctx) if needs_ctx else component.state_dict()
    return {"state": state, "packets": ctx.packets}


def component_digest(component, needs_ctx=True):
    """Hex SHA-256 of a component's canonical state blob."""
    return canonical_sha256(component_state(component, needs_ctx))


#: Component paths that are derived observers rather than simulation
#: state; periodic digest records skip them (see the module docstring).
OBSERVER_PATHS = ("stats",)


def network_states(network, injector=None, observers=True):
    """Full canonical state blobs for every component, keyed by path.

    Paths are stable identifiers (``router[3]``, ``source[0]``,
    ``sink[5]``, ``stats``, ``injector``, ``rng``) used by digest
    records, divergence reports, and ``repro diverge`` output. The
    expensive sibling of :func:`network_digests` — used only when a
    divergence needs field-level drilling. ``observers=False`` skips
    the derived-observer paths (:data:`OBSERVER_PATHS`).
    """
    cache = {}
    out = {}
    for i, router in enumerate(network.routers):
        out[f"router[{i}]"] = component_state(router, packet_cache=cache)
    for i, source in enumerate(network.sources):
        out[f"source[{i}]"] = component_state(source, packet_cache=cache)
    for i, sink in enumerate(network.sinks):
        out[f"sink[{i}]"] = component_state(sink, packet_cache=cache)
    out["rng"] = {"state": rng_state_to_json(network.rng), "packets": {}}
    if observers:
        out["stats"] = component_state(network.stats, needs_ctx=False)
    if injector is not None:
        out["injector"] = component_state(injector, needs_ctx=False)
    return out


def network_digests(network, injector=None, observers=True):
    """Leaf digests for every component, keyed by the same paths."""
    return {
        path: canonical_sha256(blob)
        for path, blob in network_states(network, injector,
                                         observers=observers).items()
    }


def merkle_root(digests):
    """Network-root digest over a ``{path: component digest}`` map."""
    return canonical_sha256(digests)


def digest_network(network, injector=None, observers=True):
    """One hierarchical digest: component leaves plus the network root."""
    components = network_digests(network, injector, observers=observers)
    return {"root": merkle_root(components), "components": components}


# ---------------------------------------------------------------------------
# field-level state diff


def _diff_walk(a, b, path, out):
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            sub = f"{path}.{key}" if path else str(key)
            _diff_walk(a.get(key, MISSING), b.get(key, MISSING), sub, out)
        return
    if isinstance(a, list) and isinstance(b, list):
        for i in range(max(len(a), len(b))):
            av = a[i] if i < len(a) else MISSING
            bv = b[i] if i < len(b) else MISSING
            _diff_walk(av, bv, f"{path}[{i}]", out)
        return
    if a != b:
        out.append({"key": path, "a": a, "b": b})


def state_diff(a, b, limit=None):
    """Field-level diff of two state structures (dicts/lists/scalars).

    Returns ``[{"key": "credits[1][2]", "a": ..., "b": ...}, ...]`` in
    deterministic key order; ``limit`` caps the list (reports stay
    bounded even if two states disagree everywhere). Values absent on
    one side appear as :data:`MISSING`.
    """
    out = []
    _diff_walk(a, b, "", out)
    return out if limit is None else out[:limit]


# ---------------------------------------------------------------------------
# recorder / stream


class DigestRecorder:
    """Periodic digest taker + JSONL stream + rolling run fingerprint.

    Attach via ``run_simulation(digest=DigestRecorder(...))`` or the
    ``digest_path=``/``digest_every=`` conveniences; the runner calls
    :meth:`on_cycle` after every simulated cycle and :meth:`finish`
    once the run completes (which takes a final digest even off the
    stride, so the fingerprint always covers the end state).
    """

    def __init__(self, every=64, path=None, keep=None):
        if every < 1:
            raise ValueError(f"digest interval must be >= 1, got {every}")
        self.every = int(every)
        self.path = path
        self._fh = open_text_write(path) if path is not None else None
        #: Digest records taken, newest last (bounded if ``keep`` set).
        self.records = deque(maxlen=keep)
        self._rolling = hashlib.sha256()
        self.digests_taken = 0
        self.last_cycle = None
        self._closed = False

    def write_header(self, config=None, run_spec=None):
        """Stream a header record (config identity for later replay)."""
        header = {"kind": "header", "schema": DIGEST_SCHEMA,
                  "every": self.every, "observers": "final-only"}
        if config is not None:
            config_dict = config.to_dict()
            config_dict.pop("backend", None)  # digests are backend-blind
            header["config"] = config_dict
        if run_spec is not None:
            header["run_spec"] = run_spec
        self._write(header)
        return header

    def on_cycle(self, network, injector, cycle):
        """Cheap per-cycle hook: digests only on the ``every`` stride."""
        if cycle % self.every == 0:
            self.record(network, injector, cycle)

    def record(self, network, injector, cycle, final=False):
        """Take one digest now; returns the record (or None if dup).

        Periodic records hash simulation state only; the ``final``
        record also covers observers (stats). A final record on a
        stride cycle is taken anyway — it carries the observer
        coverage the periodic record at the same cycle skipped.
        """
        if cycle == self.last_cycle and not final:
            return None  # on_cycle landing on an already-taken cycle
        snapshot = digest_network(network, injector, observers=final)
        record = {
            "kind": "digest",
            "cycle": cycle,
            "root": snapshot["root"],
            "components": snapshot["components"],
        }
        if final:
            record["final"] = True
        self.records.append(record)
        self._rolling.update(f"{cycle}:{snapshot['root']}\n".encode("ascii"))
        self._write(record)
        self.last_cycle = cycle
        self.digests_taken += 1
        return record

    @property
    def fingerprint(self):
        """Whole-run fingerprint: rolling hash over all records so far."""
        return self._rolling.hexdigest()

    def finish(self, network, injector):
        """Final digest (off-stride included) + fingerprint trailer."""
        self.record(network, injector, network.cycle, final=True)
        self._write({
            "kind": "fingerprint",
            "fingerprint": self.fingerprint,
            "digests": self.digests_taken,
        })
        self.close()

    def _write(self, obj):
        if self._fh is not None:
            self._fh.write(canonical_json(obj))
            self._fh.write("\n")

    def close(self):
        if self._fh is not None and not self._closed:
            self._fh.close()
        self._closed = True


class DigestStream:
    """A recorded digest stream read back from JSONL.

    ``header``/``fingerprint`` may be None for truncated streams (a
    killed run never writes its trailer); ``records`` maps cycle →
    digest record for lockstep comparison against a live run.
    """

    def __init__(self, header, records, fingerprint):
        self.header = header
        self.records = records
        self.fingerprint = fingerprint

    @property
    def every(self):
        return (self.header or {}).get("every")

    def cycles(self):
        return sorted(self.records)


def read_digest_stream(path):
    """Load a :class:`DigestRecorder` JSONL file into a DigestStream."""
    header = None
    fingerprint = None
    records = {}
    with open_text_read(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("kind")
            if kind == "header":
                header = obj
            elif kind == "digest":
                records[obj["cycle"]] = obj
            elif kind == "fingerprint":
                fingerprint = obj["fingerprint"]
    return DigestStream(header, records, fingerprint)
