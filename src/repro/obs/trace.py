"""Structured event tracing for the simulation core.

A :class:`TraceBus` carries typed, per-cycle router events (flit
injected/routed/ejected, SA grants, PC chains, VC allocation,
connection lifecycle, starvation releases) from the simulator's hot
paths to attached sinks. The design goal is *zero overhead when
disabled*: every emission site guards on ``bus.active``, a plain
attribute that is ``False`` whenever tracing is off **or** no sink is
attached, so the disabled cost is one attribute load and one branch.

Events are flat dicts so they serialize directly to JSONL::

    {"ev": "sa_grant", "cycle": 412, "router": 9, "port": 2,
     "pid": 1731, "in_port": 4, "vc": 1, "out_vc": 0}

Common keys: ``ev`` (event type), ``cycle``, and — where meaningful —
``router``, ``port`` (the *output* port of the event), ``pid`` (packet
id). Remaining keys are event-specific.
"""

import gzip
import json
import sys

#: The typed events the simulation core emits.
EVENT_TYPES = frozenset(
    {
        "packet_created",  # injector generated a packet (traffic/injection)
        "flit_injected",  # source put a flit on its injection channel
        "head_arrived",  # head flit entered a router's input VC
        "flit_routed",  # router sent a flit out a port (switch traversal)
        "sa_grant",  # switch allocator grant committed
        "pc_chain",  # packet chaining took over a connection
        "flit_ejected",  # sink consumed a flit
        "vc_alloc",  # output VC claimed by a packet
        "vc_free",  # output VC released by a departing tail
        "conn_held",  # switch connection register set
        "conn_released",  # switch connection register cleared (with reason)
        "starvation_tick",  # starvation control force-released a connection
        "drain_aborted",  # drain budget expired with flits still in flight
        # Fault injection and resilience (repro.faults):
        "link_failed",  # a link's data path went down
        "link_repaired",  # a transient link fault expired
        "router_failed",  # a router died (links down, buffers lost)
        "flit_dropped",  # a flit was lost to a fault (credit returned)
        "flit_corrupted",  # a flit was corrupted in flight
        "packet_killed",  # a packet was abandoned after a flit loss
        "conn_torn_down",  # a held connection was dismantled by a fault
        "detour",  # routing diverted around a dead link
        "retransmit",  # the reliable transport re-injected a packet
        "delivery_failed",  # the retry budget ran out for a packet
        "invariant_violation",  # a runtime invariant failed (report mode)
        "watchdog_hang",  # the watchdog declared deadlock/livelock
    }
)


class TraceFilter:
    """Per-event filtering by router, port, packet id, or event type.

    Each criterion is a set (or ``None`` for "accept all"); an event
    passes if every non-``None`` criterion matches. Events without the
    filtered key (e.g. ``packet_created`` has no router) are dropped by
    a ``routers``/``ports`` filter and kept otherwise.
    """

    __slots__ = ("routers", "ports", "packets", "events")

    def __init__(self, routers=None, ports=None, packets=None, events=None):
        self.routers = set(routers) if routers is not None else None
        self.ports = set(ports) if ports is not None else None
        self.packets = set(packets) if packets is not None else None
        if events is not None:
            events = {str(e) for e in events}
            unknown = events - EVENT_TYPES
            if unknown:
                raise ValueError(f"unknown trace event types: {sorted(unknown)}")
        self.events = events

    def admits(self, event):
        if self.events is not None and event["ev"] not in self.events:
            return False
        if self.routers is not None and event.get("router") not in self.routers:
            return False
        if self.ports is not None and event.get("port") not in self.ports:
            return False
        if self.packets is not None and event.get("pid") not in self.packets:
            return False
        return True

    @classmethod
    def parse(cls, expr):
        """Parse a CLI filter expression.

        Comma-separated ``key=value`` pairs; ``|`` separates
        alternatives within a value. Keys: ``router``, ``port``,
        ``packet``, ``event``. Example::

            router=3|12,event=sa_grant|pc_chain
        """
        if not expr:
            return cls()
        kwargs = {}
        for pair in expr.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ValueError(f"bad trace filter clause {pair!r} (need key=value)")
            key, _, value = pair.partition("=")
            key = key.strip()
            values = [v.strip() for v in value.split("|") if v.strip()]
            if key in ("router", "port", "packet"):
                kwargs[key + "s"] = [int(v) for v in values]
            elif key == "event":
                kwargs["events"] = values
            else:
                raise ValueError(
                    f"unknown trace filter key {key!r} "
                    "(expected router, port, packet, or event)"
                )
        return cls(**kwargs)


class MemorySink:
    """Collects events in a list (tests, `repro report` on live runs)."""

    def __init__(self):
        self.events = []

    def write(self, event):
        self.events.append(event)

    def close(self):
        pass


class RingSink:
    """Keeps only the most recent ``capacity`` events (bounded memory).

    The watchdog attaches one of these so its diagnostic bundle can
    include the trace tail leading up to a hang without retaining the
    whole run.
    """

    def __init__(self, capacity=256):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        from collections import deque

        self.events = deque(maxlen=capacity)

    def write(self, event):
        self.events.append(event)

    def close(self):
        pass


def open_text_write(path):
    """Open ``path`` for text writing; ``.gz`` paths are gzip-compressed."""
    if str(path).endswith(".gz"):
        return gzip.open(path, "wt")
    return open(path, "w")


def open_text_read(path):
    """Open ``path`` for text reading: ``-`` is stdin, ``.gz`` is gzip."""
    if str(path) == "-":
        return sys.stdin
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt")
    return open(path)


class JsonlSink:
    """Appends one JSON object per line to a file (gzipped if ``.gz``).

    Usable as a context manager: ``with JsonlSink(path) as sink: ...``
    closes the file on exit.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open_text_write(path)

    def write(self, event):
        self._fh.write(json.dumps(event, separators=(",", ":")))
        self._fh.write("\n")

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class TraceBus:
    """Fan-out point between the simulation core and trace sinks.

    ``active`` is the hot-path guard: emission sites do

    .. code-block:: python

        tr = self.trace
        if tr.active:
            tr.emit("sa_grant", cycle, router=..., port=..., pid=...)

    and pay only the attribute load + branch when tracing is off. It is
    recomputed whenever sinks attach/detach or the bus is
    enabled/disabled, never read lazily.
    """

    __slots__ = ("sinks", "filter", "enabled", "active", "counts")

    def __init__(self, filter=None, enabled=True):
        self.sinks = []
        self.filter = filter
        self.enabled = enabled
        self.active = False
        self.counts = {}

    def _refresh(self):
        self.active = bool(self.enabled and self.sinks)

    def attach(self, sink):
        self.sinks.append(sink)
        self._refresh()
        return sink

    def detach(self, sink):
        self.sinks.remove(sink)
        self._refresh()

    def enable(self):
        self.enabled = True
        self._refresh()

    def disable(self):
        self.enabled = False
        self._refresh()

    def emit(self, ev, cycle, **fields):
        """Build, filter, count, and fan out one event."""
        event = {"ev": ev, "cycle": cycle}
        event.update(fields)
        if self.filter is not None and not self.filter.admits(event):
            return
        self.counts[ev] = self.counts.get(ev, 0) + 1
        for sink in self.sinks:
            sink.write(event)

    def close(self):
        for sink in self.sinks:
            sink.close()
        self.sinks = []
        self._refresh()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


#: Shared inert bus: ``active`` is always False (no sinks are ever
#: attached), so components can unconditionally hold a trace reference.
NULL_TRACE = TraceBus(enabled=False)


def read_jsonl(path):
    """Load a JSONL trace back into a list of event dicts.

    ``path`` may be a plain file, a ``.gz`` gzip-compressed file, or
    ``-`` for stdin (so traces pipe straight into ``repro report``).
    """
    events = []
    fh = open_text_read(path)
    try:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    finally:
        if fh is not sys.stdin:
            fh.close()
    return events
