"""Trace summarization behind the ``repro report`` subcommand.

Reconstructs router behavior from a JSONL event trace:

- **chain-length distribution** — how many packets streamed
  consecutively over each switch connection before it was finally
  released (1 = no chaining happened on that connection);
- **per-output-port contention** — flits sent and SA grants per
  (router, output port), surfacing hot ports;
- **top-blocked packets** — the packets that spent the most cycles
  blocked at the front of a VC, from tail-ejection events;
- raw event counts per type.

Chain runs are stitched from the connection lifecycle: a release whose
connection is chained onto *in the same cycle* continues the run (the
router releases the register when the tail departs and packet chaining
re-establishes it within the cycle), any other release finalizes it.
"""

from collections import Counter as TallyCounter


class TraceSummary:
    """Aggregates computed by :func:`summarize_trace`."""

    def __init__(self):
        self.event_counts = TallyCounter()
        self.chain_lengths = TallyCounter()  # run length -> occurrences
        self.port_flits = TallyCounter()  # (router, port) -> flits routed
        self.port_sa_grants = TallyCounter()  # (router, port) -> SA grants
        self.ejected_tails = []  # (blocked, latency, pid) per packet
        self.first_cycle = None
        self.last_cycle = None

    @property
    def total_chains(self):
        """Chained takeovers (should equal ChainStats.total_chains)."""
        return self.event_counts.get("pc_chain", 0)

    def top_blocked(self, n=10):
        """The n packets with the most blocked cycles, worst first."""
        return sorted(self.ejected_tails, reverse=True)[:n]

    def top_ports(self, n=10):
        return self.port_flits.most_common(n)


class _ChainRun:
    """Open chain run on one (router, output): length + pending release."""

    __slots__ = ("length", "pending_release_cycle")

    def __init__(self, length):
        self.length = length
        self.pending_release_cycle = None


def summarize_trace(events):
    """Summarize an iterable of event dicts (see obs.trace.read_jsonl)."""
    summary = TraceSummary()
    runs = {}  # (router, port) -> _ChainRun

    def finalize(key):
        run = runs.pop(key, None)
        if run is not None:
            summary.chain_lengths[run.length] += 1

    for event in events:
        ev = event["ev"]
        cycle = event.get("cycle")
        summary.event_counts[ev] += 1
        if cycle is not None:
            if summary.first_cycle is None:
                summary.first_cycle = cycle
            summary.last_cycle = cycle

        if ev == "flit_routed":
            summary.port_flits[(event["router"], event["port"])] += 1
        elif ev == "sa_grant":
            summary.port_sa_grants[(event["router"], event["port"])] += 1
        elif ev == "conn_held":
            key = (event["router"], event["port"])
            finalize(key)  # a lost release event; close the stale run
            runs[key] = _ChainRun(1)
        elif ev == "conn_released":
            key = (event["router"], event["port"])
            run = runs.get(key)
            if run is not None:
                # Defer: a same-cycle pc_chain continues this run.
                run.pending_release_cycle = cycle
        elif ev == "pc_chain":
            key = (event["router"], event["port"])
            run = runs.get(key)
            if run is None:
                # Chained onto a connection formed (and consumed) by an
                # SA tail grant this cycle: tail's packet + this one.
                runs[key] = _ChainRun(2)
            elif (
                run.pending_release_cycle is None
                or run.pending_release_cycle == cycle
            ):
                run.length += 1
                run.pending_release_cycle = None
            else:
                # The old run's release aged out un-chained; this chain
                # rides a connection an SA tail grant formed this cycle.
                finalize(key)
                runs[key] = _ChainRun(2)
        elif ev == "flit_ejected" and event.get("tail"):
            summary.ejected_tails.append(
                (event.get("blocked", 0), event.get("latency"), event["pid"])
            )

    for key in list(runs):
        finalize(key)
    return summary


def format_report(summary, top=10):
    """Human-readable report text for one TraceSummary."""
    lines = []
    span = ""
    if summary.first_cycle is not None:
        span = f" over cycles [{summary.first_cycle}, {summary.last_cycle}]"
    total_events = sum(summary.event_counts.values())
    lines.append(f"trace: {total_events} events{span}")
    lines.append("")
    lines.append("event counts")
    for ev, count in sorted(summary.event_counts.items()):
        lines.append(f"  {ev:<16} {count}")

    lines.append("")
    lines.append("chain-length distribution (packets per connection hold)")
    if summary.chain_lengths:
        peak = max(summary.chain_lengths.values())
        for length in sorted(summary.chain_lengths):
            count = summary.chain_lengths[length]
            bar = "#" * max(1, round(40 * count / peak))
            lines.append(f"  {length:>4} {count:>8}  {bar}")
        chained = sum(
            (length - 1) * count
            for length, count in summary.chain_lengths.items()
        )
        lines.append(f"  chained takeovers reconstructed: {chained}")
    else:
        lines.append("  (no connection events in trace)")

    lines.append("")
    lines.append(f"per-output-port contention (top {top} by flits routed)")
    if summary.port_flits:
        lines.append(f"  {'router':>6} {'port':>4} {'flits':>8} {'sa_grants':>9}")
        for (router, port), flits in summary.top_ports(top):
            grants = summary.port_sa_grants.get((router, port), 0)
            lines.append(f"  {router:>6} {port:>4} {flits:>8} {grants:>9}")
    else:
        lines.append("  (no flit_routed events in trace)")

    lines.append("")
    lines.append(f"top {top} blocked packets")
    blocked = summary.top_blocked(top)
    if blocked:
        lines.append(f"  {'pid':>8} {'blocked':>8} {'latency':>8}")
        for blocked_cycles, latency, pid in blocked:
            lat = f"{latency}" if latency is not None else "-"
            lines.append(f"  {pid:>8} {blocked_cycles:>8} {lat:>8}")
    else:
        lines.append("  (no tail ejection events in trace)")
    return "\n".join(lines) + "\n"


def format_metrics_report(metrics, top=10):
    """Human summary of a metrics JSON export (``run --metrics``).

    Leads with per-allocator grant efficiency — grants issued over
    requests presented, the paper's allocation-quality quantity — then
    the largest counters and the gauges.
    """
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    lines = ["metrics export"]
    rows = []
    for role, label in (("sa", "switch alloc"), ("pc", "chain alloc"),
                        ("vc", "VC alloc")):
        requests = counters.get(f"{role}_alloc_requests")
        if not requests:
            continue
        grants = counters.get(f"{role}_alloc_grants", 0)
        eff = gauges.get(f"{role}_grant_efficiency",
                         grants / requests if requests else 0.0)
        rows.append(f"  {label:<14} {eff:6.3f}"
                    f"  ({grants}/{requests} grants/requests)")
    if rows:
        lines.append("")
        lines.append("grant efficiency")
        lines.extend(rows)
    if counters:
        lines.append("")
        lines.append(f"top {top} counters")
        for name, value in sorted(
            counters.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]:
            lines.append(f"  {name:<28} {value}")
    if gauges:
        lines.append("")
        lines.append("gauges")
        for name in sorted(gauges)[:top]:
            lines.append(f"  {name:<28} {gauges[name]}")
    return "\n".join(lines) + "\n"
