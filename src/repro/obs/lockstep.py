"""Lockstep differential co-simulation and divergence bisection.

Two deterministic runs of "the same" experiment — reference vs.
``backend="fast"``, or two configs, or a live run vs. a recorded digest
stream — are stepped cycle by cycle and compared through the
hierarchical digests of :mod:`repro.obs.digest`. The first mismatching
cycle is then drilled network → router/component → field, producing a
machine-readable divergence report:

- ``cycle`` — first cycle whose digests disagree (exact, not a window);
- ``components`` — the leaf component paths whose digests differ;
- ``diffs`` — per component, the differing ``state_dict()`` keys with
  both sides' values;
- ``trace_a``/``trace_b`` — the last K trace events of each side.

Search is coarse-to-fine: a first pass compares roots every ``every``
cycles; on mismatch, both sides are rebuilt (the simulator is
deterministic), fast-forwarded digest-free to the last matching cycle,
and re-stepped comparing every cycle — so long runs pay the digest
cost only on the stride, yet the reported cycle is exact.

Both networks share one process, and packet ids come from a module
global — so each side steps under its own packet-id window
(:class:`LockstepSide` saves/restores the counter around every cycle),
keeping each side's pid stream identical to a standalone run's.
"""

import random

from repro.network.flit import peek_next_packet_id, set_next_packet_id
from repro.network.network import build_network
from repro.obs.digest import (
    DIGEST_SCHEMA,
    digest_network,
    network_states,
    state_diff,
)
from repro.obs.trace import RingSink, TraceBus
from repro.sim.runner import SimulationRun
from repro.traffic.injection import BernoulliInjector, FixedLength
from repro.traffic.patterns import build_pattern

#: Schema of the divergence report emitted by ``repro diverge``.
REPORT_SCHEMA = 1

#: Cap on reported field diffs per component (reports stay bounded).
MAX_DIFFS_PER_COMPONENT = 32


class LockstepSide:
    """One half of a differential run: network + injector + pid window.

    Construction mirrors ``run_simulation`` (same traffic RNG seeding,
    same injector wiring) so a side's state at cycle c is bit-identical
    to a standalone run of the same config/spec at cycle c. A
    :class:`~repro.obs.trace.RingSink` keeps the last ``trace_events``
    events for divergence reports.
    """

    def __init__(self, label, config, pattern="uniform", rate=0.2,
                 packet_length=1, lengths=None, warmup=500, measure=1500,
                 drain=1000, trace_events=64):
        self.label = label
        self.config = config
        bus = TraceBus()
        self.ring = bus.attach(RingSink(capacity=trace_events))
        net = build_network(config, trace=bus)
        traffic_rng = random.Random(config.seed + 0x5EED)
        pat = build_pattern(pattern, net.num_terminals, traffic_rng)
        dist = lengths if lengths is not None else FixedLength(packet_length)
        injector = BernoulliInjector(
            net.num_terminals, pat, rate, dist, traffic_rng
        )
        self.run = SimulationRun(net, injector, warmup, measure, drain)
        self.run.prepare()
        #: This side's private packet-id counter (fresh-process stream).
        self.next_pid = 0
        self.done = False

    @property
    def network(self):
        return self.run.network

    @property
    def injector(self):
        return self.run.injector

    def step(self):
        """Advance one cycle under this side's packet-id window."""
        if self.done:
            return False
        set_next_packet_id(self.next_pid)
        alive = self.run.step_cycle()
        self.next_pid = peek_next_packet_id()
        if not alive:
            self.done = True
        return alive

    def digest(self):
        return digest_network(self.network, self.injector)

    def states(self):
        return network_states(self.network, self.injector)

    def trace_tail(self):
        return list(self.ring.events)


def side_factory(label, config, **run_spec):
    """A zero-arg builder of fresh :class:`LockstepSide` instances.

    :func:`find_divergence` rebuilds sides for the refinement pass, so
    callers hand it factories rather than live sides.
    """
    return lambda: LockstepSide(label, config, **run_spec)


class Divergence:
    """Raw lockstep outcome: the window bracketing the first mismatch.

    ``cycle`` is the first compared cycle whose digests differ;
    ``last_match`` the last compared cycle whose digests agreed (None
    if even the initial states differ). At stride 1 the window is
    exact; :func:`find_divergence` refines coarse windows to stride 1.
    """

    def __init__(self, cycle, last_match):
        self.cycle = cycle
        self.last_match = last_match


def run_lockstep(a, b, every=1):
    """Step two sides together; returns a :class:`Divergence` or None.

    Digest roots are compared before the first step (construction-time
    divergence, e.g. two different configs), every ``every`` cycles,
    and at the final cycle of the run. A side finishing while the other
    still runs is itself a divergence (the phase schedule is part of
    simulated behavior).
    """
    if a.digest()["root"] != b.digest()["root"]:
        return Divergence(a.network.cycle, None)
    last_match = a.network.cycle
    while True:
        alive_a = a.step()
        alive_b = b.step()
        cycle = max(a.network.cycle, b.network.cycle)
        if alive_a != alive_b:
            return Divergence(cycle, last_match)
        if not alive_a:
            if a.digest()["root"] != b.digest()["root"]:
                return Divergence(cycle, last_match)
            return None
        if cycle % every == 0:
            if a.digest()["root"] != b.digest()["root"]:
                return Divergence(cycle, last_match)
            last_match = cycle


def _fast_forward(side, cycle):
    """Step a fresh side (digest-free) up to a known-matching cycle."""
    while side.network.cycle < cycle and side.step():
        pass


def find_divergence(make_a, make_b, every=64, trace_events=64,
                    max_diffs=MAX_DIFFS_PER_COMPONENT):
    """Coarse-to-fine divergence search between two deterministic runs.

    ``make_a``/``make_b`` build fresh :class:`LockstepSide` instances
    (see :func:`side_factory`). Returns None when the runs are
    digest-identical end to end, else a report dict (see
    :func:`build_report`) pinpointing the exact first divergent cycle.
    """
    a, b = make_a(), make_b()
    window = run_lockstep(a, b, every=every)
    if window is None:
        return None
    if every > 1 and window.last_match is not None:
        # The simulator is deterministic: rebuild both sides, replay
        # digest-free to the last matching cycle, then compare every
        # cycle — the mismatch is inside (last_match, window.cycle].
        a, b = make_a(), make_b()
        _fast_forward(a, window.last_match)
        _fast_forward(b, window.last_match)
        refined = run_lockstep(a, b, every=1)
        if refined is not None:
            window = refined
    return build_report(a, b, window, max_diffs=max_diffs)


def build_report(a, b, window, max_diffs=MAX_DIFFS_PER_COMPONENT):
    """Drill a divergence down to components and fields; returns a dict."""
    da, db = a.digest(), b.digest()
    paths = sorted(
        path
        for path in set(da["components"]) | set(db["components"])
        if da["components"].get(path) != db["components"].get(path)
    )
    states_a, states_b = a.states(), b.states()
    diffs = {}
    for path in paths:
        diffs[path] = state_diff(
            states_a.get(path, {}).get("state"),
            states_b.get(path, {}).get("state"),
            limit=max_diffs,
        )
        packets = state_diff(
            states_a.get(path, {}).get("packets"),
            states_b.get(path, {}).get("packets"),
            limit=max_diffs - len(diffs[path]),
        )
        for entry in packets:
            entry["key"] = f"packets.{entry['key']}"
        diffs[path].extend(packets)
    report = {
        "schema": REPORT_SCHEMA,
        "digest_schema": DIGEST_SCHEMA,
        "verdict": "diverged",
        "cycle": window.cycle,
        "last_match_cycle": window.last_match,
        "side_a": _side_info(a),
        "side_b": _side_info(b),
        "root_a": da["root"],
        "root_b": db["root"],
        "components": paths,
        "diffs": diffs,
        "trace_a": a.trace_tail(),
        "trace_b": b.trace_tail(),
        "soa_consistent": {
            "a": _soa_consistent(a.network),
            "b": _soa_consistent(b.network),
        },
    }
    return report


def _side_info(side):
    return {
        "label": side.label,
        "backend": getattr(side.config, "backend", None),
        "config": side.config.to_dict(),
        "cycle": side.network.cycle,
    }


def _soa_consistent(network):
    """SoA-vs-state_dict parity at the divergence point (fast side only).

    None when the network has no SoA export; otherwise True/False —
    False means the fast core's array state drifted from its own
    canonical ``state_dict()``, which localizes the bug to the SoA
    maintenance rather than the allocation logic.
    """
    if not hasattr(network, "state_arrays"):
        return None
    from repro.fastcore.soa import verify_state_arrays

    try:
        verify_state_arrays(network)
    except AssertionError:
        return False
    return True


# ---------------------------------------------------------------------------
# live run vs. recorded digest stream


def run_vs_stream(side, stream, max_cycles=None):
    """Step a live side against a recorded digest stream.

    Compares the live network's digests at every cycle the stream
    recorded. Returns None when every recorded cycle matches, else a
    report dict; field-level diffs are unavailable against a stream
    (only hashes were recorded), so the report names the divergent
    cycle and component paths with both digests.
    """
    recorded = stream.records
    while True:
        alive = side.step()
        cycle = side.network.cycle
        record = recorded.get(cycle)
        if record is not None:
            # Match the recorded coverage: periodic records hashed
            # simulation state only; the final record included
            # observers.
            live = digest_network(side.network, side.injector,
                                  observers=record.get("final", False))
            if live["root"] != record["root"]:
                paths = sorted(
                    path
                    for path in set(live["components"]) | set(record["components"])
                    if live["components"].get(path)
                    != record["components"].get(path)
                )
                return {
                    "schema": REPORT_SCHEMA,
                    "digest_schema": DIGEST_SCHEMA,
                    "verdict": "diverged",
                    "mode": "vs-stream",
                    "cycle": cycle,
                    "side_a": _side_info(side),
                    "root_a": live["root"],
                    "root_b": record["root"],
                    "components": paths,
                    "digests": {
                        path: {
                            "a": live["components"].get(path),
                            "b": record["components"].get(path),
                        }
                        for path in paths
                    },
                    "trace_a": side.trace_tail(),
                }
        if not alive or (max_cycles is not None and cycle >= max_cycles):
            break
    uncovered = [c for c in stream.cycles() if c > side.network.cycle]
    if uncovered:
        # The recorded run simulated cycles the live run never reached:
        # the runs disagree on the phase schedule itself.
        return {
            "schema": REPORT_SCHEMA,
            "digest_schema": DIGEST_SCHEMA,
            "verdict": "diverged",
            "mode": "vs-stream",
            "cycle": side.network.cycle,
            "side_a": _side_info(side),
            "components": [],
            "uncovered_cycles": uncovered,
            "trace_a": side.trace_tail(),
        }
    return None
