"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Components publish into a :class:`MetricsRegistry` (gem5-stats style:
the producer owns the numbers, the registry owns naming and export).
Two export formats:

- ``to_dict()`` / ``save_json()`` — nested JSON for tooling and the
  CLI's ``--json`` output;
- ``to_prometheus()`` — the flat Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le="..."}`` histogram
  series), so a run's metrics can be diffed or scraped with standard
  tools.

Histogram bucket edges are fixed at construction; values land in the
first bucket whose upper edge is >= the value, with an implicit +Inf
overflow bucket.
"""

import bisect
import json

#: Default latency bucket upper edges (cycles).
LATENCY_EDGES = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)
#: Default chain-length bucket upper edges (packets per connection).
CHAIN_LENGTH_EDGES = (1, 2, 3, 4, 6, 8, 12, 16, 32)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_value(self):
        return self.value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value):
        self.value = value

    def to_value(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum/count, Prometheus-compatible."""

    __slots__ = ("name", "help", "edges", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name, edges, help=""):
        edges = tuple(sorted(edges))
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.name = name
        self.help = help
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value, n=1):
        self.counts[bisect.bisect_left(self.edges, value)] += n
        self.sum += value * n
        self.count += n

    def to_value(self):
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def cumulative(self):
        """[(upper_edge_label, cumulative_count)] including +Inf."""
        out, running = [], 0
        for edge, n in zip(self.edges, self.counts):
            running += n
            out.append((str(edge), running))
        out.append(("+Inf", running + self.counts[-1]))
        return out


class MetricsRegistry:
    """Named metric instruments with get-or-create semantics."""

    def __init__(self, prefix="repro"):
        self.prefix = prefix
        self._metrics = {}

    def _get(self, cls, name, *args, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name, help=""):
        return self._get(Counter, name, help=help)

    def gauge(self, name, help=""):
        return self._get(Gauge, name, help=help)

    def histogram(self, name, edges, help=""):
        return self._get(Histogram, name, edges, help=help)

    def __iter__(self):
        return iter(self._metrics.values())

    def __contains__(self, name):
        return name in self._metrics

    def get(self, name):
        return self._metrics.get(name)

    # --- export -----------------------------------------------------------

    def to_dict(self):
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self._metrics.values():
            out[metric.kind + "s"][metric.name] = metric.to_value()
        return out

    def to_prometheus(self):
        """Flat text exposition format, one family per metric."""
        lines = []
        for metric in sorted(self._metrics.values(), key=lambda m: m.name):
            full = f"{self.prefix}_{metric.name}"
            if metric.help:
                lines.append(f"# HELP {full} {metric.help}")
            lines.append(f"# TYPE {full} {metric.kind}")
            if metric.kind == "histogram":
                for le, cumulative in metric.cumulative():
                    lines.append(f'{full}_bucket{{le="{le}"}} {cumulative}')
                lines.append(f"{full}_sum {_fmt(metric.sum)}")
                lines.append(f"{full}_count {metric.count}")
            else:
                lines.append(f"{full} {_fmt(metric.value)}")
        return "\n".join(lines) + "\n"

    def save_json(self, path):
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def save_prometheus(self, path):
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())


def _fmt(value):
    """Render ints without a trailing .0, floats with full precision."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
