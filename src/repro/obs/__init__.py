"""Observability for the simulation core: tracing, metrics, profiling,
spans, sampling, and run artifacts.

Instruments, all zero-overhead when unused:

- :mod:`repro.obs.trace` — a typed event bus (``TraceBus``) the router,
  terminals, and injectors emit structured per-cycle events into, with
  JSONL (plain or gzip) and in-memory sinks and per-event filtering;
- :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms with JSON and Prometheus-text export;
- :mod:`repro.obs.profiler` — per-epoch wall-clock timing of the router
  pipeline phases, reporting cycles/sec;
- :mod:`repro.obs.spans` — per-packet lifecycle reconstruction from a
  trace: the latency decomposition (queueing vs allocation vs
  serialization) behind the paper's headline claim, with Chrome
  trace-event / Perfetto export (``repro spans``);
- :mod:`repro.obs.sampler` — periodic whole-network state snapshots
  (buffer occupancy, credits, held connections, link utilization) in a
  bounded ring buffer, with JSONL export and ASCII heatmaps;
- :mod:`repro.obs.artifacts` — the run-artifact flight recorder
  (``--artifacts DIR``) and regression differ (``repro diff``);
- :mod:`repro.obs.telemetry` — host-performance heartbeats
  (cycles/sec, ETA, RSS) written to fsynced JSONL files per run or per
  sweep point (``--progress``/``--telemetry``);
- :mod:`repro.obs.watch` — the live ASCII dashboard over a sweep's
  telemetry directory (``repro watch``);
- :mod:`repro.obs.digest` — per-cycle hierarchical SHA-256 state
  digests over ``state_dict()`` state, streamed as JSONL with a
  whole-run fingerprint (``--digest``/``--digest-every``);
- :mod:`repro.obs.lockstep` — differential co-simulation of two
  networks with coarse-to-fine divergence bisection (``repro
  diverge``).

:mod:`repro.obs.report` summarizes a trace file (chain-length
distribution, port contention, top-blocked packets) for ``repro
report``.
"""

from repro.obs.artifacts import (
    ArtifactDiff,
    DiffRow,
    compare_artifacts,
    format_diff,
    write_run_artifacts,
    write_sweep_manifest,
)
from repro.obs.metrics import (
    CHAIN_LENGTH_EDGES,
    LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import (
    PHASES,
    PhaseProfiler,
    collapsed_from_dict,
    compute_hotspots,
    format_profile_report,
    hotspots_from_dict,
    is_profile_dict,
)
from repro.obs.report import (
    TraceSummary,
    format_metrics_report,
    format_report,
    summarize_trace,
)
from repro.obs.sampler import SAMPLE_FIELDS, NetworkSampler
from repro.obs.telemetry import (
    HEARTBEAT_SUFFIX,
    RunTelemetry,
    init_telemetry_dir,
    point_heartbeat_path,
    read_heartbeats,
)
from repro.obs.watch import (
    PointState,
    WatchState,
    format_watch,
    scan_telemetry_dir,
    watch,
)
from repro.obs.spans import (
    SPAN_COMPONENTS,
    PacketSpan,
    SpanSet,
    build_spans,
    format_spans_report,
)
from repro.obs.trace import (
    EVENT_TYPES,
    NULL_TRACE,
    JsonlSink,
    MemorySink,
    RingSink,
    TraceBus,
    TraceFilter,
    open_text_read,
    open_text_write,
    read_jsonl,
)

__all__ = [
    "TraceBus",
    "TraceFilter",
    "JsonlSink",
    "MemorySink",
    "RingSink",
    "NULL_TRACE",
    "EVENT_TYPES",
    "read_jsonl",
    "open_text_read",
    "open_text_write",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_EDGES",
    "CHAIN_LENGTH_EDGES",
    "PhaseProfiler",
    "PHASES",
    "compute_hotspots",
    "hotspots_from_dict",
    "collapsed_from_dict",
    "is_profile_dict",
    "format_profile_report",
    "RunTelemetry",
    "read_heartbeats",
    "init_telemetry_dir",
    "point_heartbeat_path",
    "HEARTBEAT_SUFFIX",
    "WatchState",
    "PointState",
    "scan_telemetry_dir",
    "format_watch",
    "watch",
    "TraceSummary",
    "summarize_trace",
    "format_report",
    "format_metrics_report",
    "SpanSet",
    "PacketSpan",
    "SPAN_COMPONENTS",
    "build_spans",
    "format_spans_report",
    "NetworkSampler",
    "SAMPLE_FIELDS",
    "write_run_artifacts",
    "write_sweep_manifest",
    "compare_artifacts",
    "format_diff",
    "ArtifactDiff",
    "DiffRow",
    "DIGEST_SCHEMA",
    "DigestRecorder",
    "DigestStream",
    "component_digest",
    "digest_network",
    "merkle_root",
    "network_digests",
    "network_states",
    "read_digest_stream",
    "state_diff",
    "REPORT_SCHEMA",
    "Divergence",
    "LockstepSide",
    "build_report",
    "find_divergence",
    "run_lockstep",
    "run_vs_stream",
    "side_factory",
]

# digest/lockstep sit *above* the simulation core (they import the
# checkpoint and runner layers, which themselves import repro.obs.trace),
# so they load lazily to keep this package import-cycle-free.
_LAZY_EXPORTS = {
    name: "repro.obs.digest"
    for name in (
        "DIGEST_SCHEMA", "DigestRecorder", "DigestStream",
        "component_digest", "digest_network", "merkle_root",
        "network_digests", "network_states", "read_digest_stream",
        "state_diff",
    )
}
_LAZY_EXPORTS.update({
    name: "repro.obs.lockstep"
    for name in (
        "REPORT_SCHEMA", "Divergence", "LockstepSide", "build_report",
        "find_divergence", "run_lockstep", "run_vs_stream", "side_factory",
    )
})


def __getattr__(name):
    if name in _LAZY_EXPORTS:
        import importlib

        value = getattr(importlib.import_module(_LAZY_EXPORTS[name]), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
