"""Observability for the simulation core: tracing, metrics, profiling.

Three independent instruments, all zero-overhead when unused:

- :mod:`repro.obs.trace` — a typed event bus (``TraceBus``) the router,
  terminals, and injectors emit structured per-cycle events into, with
  JSONL and in-memory sinks and per-event filtering;
- :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms with JSON and Prometheus-text export;
- :mod:`repro.obs.profiler` — per-epoch wall-clock timing of the router
  pipeline phases, reporting cycles/sec.

:mod:`repro.obs.report` summarizes a trace file (chain-length
distribution, port contention, top-blocked packets) for ``repro
report``.
"""

from repro.obs.metrics import (
    CHAIN_LENGTH_EDGES,
    LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import PHASES, PhaseProfiler
from repro.obs.report import TraceSummary, format_report, summarize_trace
from repro.obs.trace import (
    EVENT_TYPES,
    NULL_TRACE,
    JsonlSink,
    MemorySink,
    TraceBus,
    TraceFilter,
    read_jsonl,
)

__all__ = [
    "TraceBus",
    "TraceFilter",
    "JsonlSink",
    "MemorySink",
    "NULL_TRACE",
    "EVENT_TYPES",
    "read_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_EDGES",
    "CHAIN_LENGTH_EDGES",
    "PhaseProfiler",
    "PHASES",
    "TraceSummary",
    "summarize_trace",
    "format_report",
]
